//! End-to-end coverage for the `/proc/kernel/histograms` surface: the
//! span-timing registry must be readable through an ordinary
//! open+read syscall pair, carry the pathways the preceding dispatches
//! actually exercised, and stay root-only like the LSM metrics nodes.

use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::kernel::Kernel;
use sim_kernel::net::SimNet;
use sim_kernel::syscall::{OpenFlags, Syscall};
use sim_kernel::task::Pid;
use sim_kernel::trace::span;
use sim_kernel::vfs::Mode;

fn boot() -> (Kernel, Pid, Pid) {
    let k = Kernel::new(SimNet::new());
    let root = k.spawn_init();
    k.vfs.mkdir_p("/tmp").unwrap();
    let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
    k.vfs.inode_mut(t).mode = Mode(0o1777);
    k.install_standard_devices().unwrap();
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
    (k, root, user)
}

fn read_all(k: &mut Kernel, pid: Pid, path: &str) -> Result<String, Errno> {
    let fd = k
        .dispatch(
            pid,
            Syscall::Open {
                path: path.into(),
                flags: OpenFlags::read_only(),
            },
        )
        .fd()?;
    let data = k.dispatch(pid, Syscall::Read { fd, count: 65536 }).data()?;
    let _ = k.dispatch(pid, Syscall::Close { fd });
    Ok(String::from_utf8(data).expect("proc text is utf-8"))
}

/// Dispatched syscalls populate the histograms node with the pathways
/// they actually crossed, and the text exposes the full stat line per
/// pathway.
#[test]
fn histograms_node_reflects_dispatched_pathways() {
    let (mut k, root, user) = boot();
    span::reset();
    span::set_enabled(true);

    let fd = k
        .dispatch(
            user,
            Syscall::Open {
                path: "/tmp/spanfile".into(),
                flags: OpenFlags::create_trunc(Mode(0o644)),
            },
        )
        .fd()
        .unwrap();
    k.dispatch(
        user,
        Syscall::Write {
            fd,
            data: b"spans".to_vec(),
        },
    )
    .size()
    .unwrap();
    k.dispatch(user, Syscall::Close { fd }).unit().unwrap();

    let text = read_all(&mut k, root, "/proc/kernel/histograms").unwrap();
    span::set_enabled(false);
    span::reset();

    for pathway in ["hist_dispatch", "hist_sys_fs", "hist_vfs_resolve"] {
        assert!(text.contains(pathway), "missing {pathway} in:\n{text}");
    }
    for field in ["count=", "total_ns=", "self_ns=", "p50=", "p99="] {
        assert!(text.contains(field), "missing {field} in:\n{text}");
    }
}

/// The node is 0600 root-owned: an unprivileged open is refused before
/// any timing state can leak.
#[test]
fn histograms_node_is_root_only() {
    let (mut k, _root, user) = boot();
    assert_eq!(
        read_all(&mut k, user, "/proc/kernel/histograms").unwrap_err(),
        Errno::EACCES
    );
}
