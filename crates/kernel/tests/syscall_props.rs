//! Property tests over the syscall layer: totality under random
//! operation sequences and DAC consistency.

use proptest::prelude::*;
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::kernel::Kernel;
use sim_kernel::net::SimNet;
use sim_kernel::syscall::{OpenFlags, Whence};
use sim_kernel::task::Pid;
use sim_kernel::vfs::Mode;

fn boot() -> (Kernel, Pid, Pid) {
    let k = Kernel::new(SimNet::new());
    let root = k.spawn_init();
    k.vfs.mkdir_p("/tmp").unwrap();
    let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
    k.vfs.inode_mut(t).mode = Mode(0o1777);
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
    (k, root, user)
}

/// One random syscall-ish operation.
#[derive(Clone, Debug)]
enum Op {
    Open(u8, bool),
    Close(i32),
    Read(i32),
    Write(i32),
    Lseek(i32, usize),
    Unlink(u8),
    Mkdir(u8),
    Fork,
    Pipe,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, any::<bool>()).prop_map(|(n, w)| Op::Open(n, w)),
        (0i32..8).prop_map(Op::Close),
        (0i32..8).prop_map(Op::Read),
        (0i32..8).prop_map(Op::Write),
        (0i32..8, 0usize..64).prop_map(|(f, o)| Op::Lseek(f, o)),
        (0u8..5).prop_map(Op::Unlink),
        (0u8..5).prop_map(Op::Mkdir),
        Just(Op::Fork),
        Just(Op::Pipe),
    ]
}

proptest! {
    /// Any interleaving of file/process operations leaves the kernel in a
    /// self-consistent state — no panics, and the DAC invariant holds at
    /// the end: a freshly created root-only file is unreadable by the
    /// user.
    #[test]
    fn random_syscall_sequences_are_safe(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let (k, root, user) = boot();
        let mut forks: Vec<Pid> = Vec::new();
        for op in ops {
            match op {
                Op::Open(n, w) => {
                    let flags = if w {
                        OpenFlags::create_trunc(Mode(0o600))
                    } else {
                        OpenFlags::read_only()
                    };
                    let _ = k.sys_open(user, &format!("/tmp/f{}", n), flags);
                }
                Op::Close(fd) => { let _ = k.sys_close(user, fd); }
                Op::Read(fd) => {
                    let mut buf = Vec::new();
                    let _ = k.sys_read(user, fd, &mut buf, 16);
                }
                Op::Write(fd) => { let _ = k.sys_write(user, fd, b"xyz"); }
                Op::Lseek(fd, o) => { let _ = k.sys_lseek(user, fd, o as i64, Whence::Set); }
                Op::Unlink(n) => { let _ = k.sys_unlink(user, &format!("/tmp/f{}", n)); }
                Op::Mkdir(n) => { let _ = k.sys_mkdir(user, &format!("/tmp/d{}", n), Mode(0o755)); }
                Op::Fork => {
                    if forks.len() < 4 {
                        if let Ok(c) = k.sys_fork(user) { forks.push(c); }
                    }
                }
                Op::Pipe => { let _ = k.sys_pipe(user); }
            }
        }
        for c in forks {
            k.sys_exit(c, 0).unwrap();
            k.sys_wait(user, c).unwrap();
        }
        // Post-conditions.
        k.write_file(root, "/tmp/rootfile", b"secret", Mode(0o600)).unwrap();
        prop_assert!(k.read_file(user, "/tmp/rootfile").is_err());
        prop_assert!(k.read_file(root, "/tmp/rootfile").is_ok());
    }

    /// DAC truth table: the owner/group/other bits decide exactly.
    #[test]
    fn dac_truth_table(bits in 0u32..0o777, as_owner in any::<bool>()) {
        let (k, root, user) = boot();
        let owner = if as_owner { Uid(1000) } else { Uid::ROOT };
        k.vfs.install_file("/tmp/probe", b"x", Mode(bits), owner, Gid(4242)).unwrap();
        let _ = root;
        let can_read = k.read_file(user, "/tmp/probe").is_ok();
        let relevant = if as_owner { (bits >> 6) & 4 } else { bits & 4 };
        prop_assert_eq!(can_read, relevant != 0);
        let can_write = k.append_file(user, "/tmp/probe", b"y").is_ok();
        let relevant = if as_owner { (bits >> 6) & 2 } else { bits & 2 };
        prop_assert_eq!(can_write, relevant != 0);
    }

    /// chmod by the owner always round-trips the mode bits.
    #[test]
    fn chmod_roundtrip(bits in 0u32..0o7777) {
        let (k, _root, user) = boot();
        k.write_file(user, "/tmp/own", b"", Mode(0o600)).unwrap();
        k.sys_chmod(user, "/tmp/own", Mode(bits)).unwrap();
        prop_assert_eq!(k.sys_stat(user, "/tmp/own").unwrap().mode, Mode(bits));
    }

    /// fork/exit/wait always balances the task table.
    #[test]
    fn task_table_balances(n in 0usize..10) {
        let (k, _root, user) = boot();
        let before = k.task_count();
        let kids: Vec<Pid> = (0..n).filter_map(|_| k.sys_fork(user).ok()).collect();
        prop_assert_eq!(k.task_count(), before + kids.len());
        for c in kids {
            k.sys_exit(c, 0).unwrap();
            prop_assert_eq!(k.sys_wait(user, c).unwrap(), 0);
        }
        prop_assert_eq!(k.task_count(), before);
    }

    /// Ephemeral binds never collide and always land in the dynamic range.
    #[test]
    fn ephemeral_ports_unique(n in 1usize..30) {
        use sim_kernel::net::{Domain, Ipv4, SockType};
        let (k, _root, user) = boot();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..n {
            let fd = k.sys_socket(user, Domain::Inet, SockType::Dgram, 0).unwrap();
            k.sys_bind(user, fd, Ipv4::ANY, 0).unwrap();
            // Find the bound port through the task's socket.
            let sid = match k.task(user).unwrap().fd(fd).unwrap().object {
                sim_kernel::task::FdObject::Socket(s) => s,
                _ => unreachable!(),
            };
            let port = k.net.read().get(sid).unwrap().bound.unwrap().1;
            prop_assert!(port >= 32768);
            prop_assert!(seen.insert(port), "duplicate ephemeral port");
        }
    }
    /// Dispatching a random operation sequence through the typed ABI is
    /// observably identical to calling the `sys_*` entry points directly:
    /// same per-call results, same final audit stream.
    #[test]
    fn dispatch_equivalent_to_direct_on_random_sequences(
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        use sim_kernel::syscall::Syscall;
        let (kd, _rootd, user) = boot();
        let (kv, _rootv, userv) = boot();
        prop_assert_eq!(user, userv);
        for op in ops {
            let (d, v) = match op {
                Op::Open(n, w) => {
                    let flags = if w {
                        OpenFlags::create_trunc(Mode(0o600))
                    } else {
                        OpenFlags::read_only()
                    };
                    let path = format!("/tmp/f{}", n);
                    (
                        format!("{:?}", kd.sys_open(user, &path, flags)),
                        format!("{:?}", kv.dispatch(user, Syscall::Open { path, flags }).fd()),
                    )
                }
                Op::Close(fd) => (
                    format!("{:?}", kd.sys_close(user, fd)),
                    format!("{:?}", kv.dispatch(user, Syscall::Close { fd }).unit()),
                ),
                Op::Read(fd) => {
                    let mut buf = Vec::new();
                    let dn = kd.sys_read(user, fd, &mut buf, 16);
                    (
                        format!("{:?}", dn.map(|_| buf)),
                        format!("{:?}", kv.dispatch(user, Syscall::Read { fd, count: 16 }).data()),
                    )
                }
                Op::Write(fd) => (
                    format!("{:?}", kd.sys_write(user, fd, b"xyz")),
                    format!(
                        "{:?}",
                        kv.dispatch(user, Syscall::Write { fd, data: b"xyz".to_vec() }).size()
                    ),
                ),
                Op::Lseek(fd, o) => (
                    format!("{:?}", kd.sys_lseek(user, fd, o as i64, Whence::Set)),
                    format!(
                        "{:?}",
                        kv.dispatch(
                            user,
                            Syscall::Lseek { fd, offset: o as i64, whence: Whence::Set },
                        )
                        .size()
                    ),
                ),
                Op::Unlink(n) => {
                    let path = format!("/tmp/f{}", n);
                    (
                        format!("{:?}", kd.sys_unlink(user, &path)),
                        format!("{:?}", kv.dispatch(user, Syscall::Unlink { path }).unit()),
                    )
                }
                Op::Mkdir(n) => {
                    let path = format!("/tmp/d{}", n);
                    (
                        format!("{:?}", kd.sys_mkdir(user, &path, Mode(0o755))),
                        format!(
                            "{:?}",
                            kv.dispatch(user, Syscall::Mkdir { path, mode: Mode(0o755) }).unit()
                        ),
                    )
                }
                Op::Fork => (
                    format!("{:?}", kd.sys_fork(user)),
                    format!("{:?}", kv.dispatch(user, Syscall::Fork).pid()),
                ),
                Op::Pipe => (
                    format!("{:?}", kd.sys_pipe(user)),
                    format!("{:?}", kv.dispatch(user, Syscall::Pipe).fd_pair()),
                ),
            };
            prop_assert_eq!(d, v);
        }
        let direct: Vec<String> = kd.audit.events().iter().map(|e| e.render()).collect();
        let via: Vec<String> = kv.audit.events().iter().map(|e| e.render()).collect();
        prop_assert_eq!(direct, via);
    }

    /// Any random operation sequence under an aggressive errno storm is
    /// total (no panics) and leaves DAC intact: injected faults may fail
    /// calls, but never grant anything.
    #[test]
    fn errno_storm_never_panics_or_corrupts_dac(
        ops in prop::collection::vec(op_strategy(), 0..40),
        seed in any::<u64>(),
    ) {
        use sim_kernel::syscall::{FaultConfig, FaultInjector, Syscall};
        let (k, root, user) = boot();
        k.push_interceptor(Box::new(FaultInjector::new(FaultConfig::storm(seed, 3))));
        for op in ops {
            match op {
                Op::Open(n, w) => {
                    let flags = if w {
                        OpenFlags::create_trunc(Mode(0o600))
                    } else {
                        OpenFlags::read_only()
                    };
                    let _ = k.dispatch(user, Syscall::Open { path: format!("/tmp/f{}", n), flags });
                }
                Op::Close(fd) => { let _ = k.dispatch(user, Syscall::Close { fd }); }
                Op::Read(fd) => { let _ = k.dispatch(user, Syscall::Read { fd, count: 16 }); }
                Op::Write(fd) => {
                    let _ = k.dispatch(user, Syscall::Write { fd, data: b"xyz".to_vec() });
                }
                Op::Lseek(fd, o) => {
                    let _ = k.dispatch(
                        user,
                        Syscall::Lseek { fd, offset: o as i64, whence: Whence::Set },
                    );
                }
                Op::Unlink(n) => {
                    let _ = k.dispatch(user, Syscall::Unlink { path: format!("/tmp/f{}", n) });
                }
                Op::Mkdir(n) => {
                    let _ = k.dispatch(
                        user,
                        Syscall::Mkdir { path: format!("/tmp/d{}", n), mode: Mode(0o755) },
                    );
                }
                Op::Fork => {
                    if let Ok(c) = k.dispatch(user, Syscall::Fork).pid() {
                        let _ = k.dispatch(c, Syscall::Exit { status: 0 });
                        let _ = k.dispatch(user, Syscall::Wait { child: c });
                    }
                }
                Op::Pipe => { let _ = k.dispatch(user, Syscall::Pipe); }
            }
        }
        // DAC survives the storm: root's private file stays private.
        k.clear_interceptors();
        k.write_file(root, "/tmp/rootfile", b"secret", Mode(0o600)).unwrap();
        prop_assert!(k.read_file(user, "/tmp/rootfile").is_err());
        prop_assert!(k.read_file(root, "/tmp/rootfile").is_ok());
    }
}

// ---------------------------------------------------------------------
// Classic unlink-while-open semantics (deterministic, not property).
// ---------------------------------------------------------------------

#[test]
fn open_unlinked_file_survives_until_close() {
    let (k, _root, user) = boot();
    k.write_file(user, "/tmp/ghost", b"still here", Mode(0o600))
        .unwrap();
    let fd = k
        .sys_open(user, "/tmp/ghost", OpenFlags::read_only())
        .unwrap();
    k.sys_unlink(user, "/tmp/ghost").unwrap();
    // The name is gone...
    assert!(k.sys_stat(user, "/tmp/ghost").is_err());
    // ...but the open description still reads the data.
    let mut buf = Vec::new();
    k.sys_read(user, fd, &mut buf, 64).unwrap();
    assert_eq!(buf, b"still here");
    k.sys_close(user, fd).unwrap();
}

#[test]
fn reclaimed_slot_reuse_does_not_leak_content() {
    let (k, _root, user) = boot();
    k.write_file(user, "/tmp/secret", b"TOPSECRET", Mode(0o600))
        .unwrap();
    k.sys_unlink(user, "/tmp/secret").unwrap();
    // The next allocation may reuse the slot; a fresh empty file must not
    // expose the old bytes.
    k.write_file(user, "/tmp/fresh", b"", Mode(0o644)).unwrap();
    assert_eq!(k.read_file(user, "/tmp/fresh").unwrap(), b"");
}

#[test]
fn fork_shares_open_description_refcount() {
    let (k, _root, user) = boot();
    k.write_file(user, "/tmp/shared", b"x", Mode(0o600))
        .unwrap();
    let fd = k
        .sys_open(user, "/tmp/shared", OpenFlags::read_only())
        .unwrap();
    let child = k.sys_fork(user).unwrap();
    k.sys_unlink(user, "/tmp/shared").unwrap();
    // Parent closes; the child's duplicate keeps the inode alive.
    k.sys_close(user, fd).unwrap();
    let mut buf = Vec::new();
    k.sys_read(child, fd, &mut buf, 4).unwrap();
    assert_eq!(buf, b"x");
    k.sys_exit(child, 0).unwrap();
    k.sys_wait(user, child).unwrap();
}
