//! Property tests over the VFS namespace: arbitrary rename/link/unlink
//! sequences never create cycles, never orphan a live inode, and never
//! make `resolve` diverge.

use proptest::prelude::*;
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::vfs::{Ino, Mode, Vfs};
use std::collections::BTreeSet;

/// A namespace mutation drawn from a small pool of directory and file
/// names, so sequences collide often enough to exercise the interesting
/// paths (overwrites, ancestor moves, re-creates of reclaimed slots).
#[derive(Clone, Debug)]
enum NsOp {
    Mkdir(u8, u8),
    Create(u8, u8),
    Link(u8, u8, u8, u8),
    Unlink(u8, u8),
    Rmdir(u8, u8),
    Rename(u8, u8, u8, u8),
}

fn ns_op() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        (0u8..6, 0u8..4).prop_map(|(d, n)| NsOp::Mkdir(d, n)),
        (0u8..6, 0u8..4).prop_map(|(d, n)| NsOp::Create(d, n)),
        (0u8..6, 0u8..4, 0u8..6, 0u8..4).prop_map(|(a, b, c, d)| NsOp::Link(a, b, c, d)),
        (0u8..6, 0u8..4).prop_map(|(d, n)| NsOp::Unlink(d, n)),
        (0u8..6, 0u8..4).prop_map(|(d, n)| NsOp::Rmdir(d, n)),
        (0u8..6, 0u8..4, 0u8..6, 0u8..4).prop_map(|(a, b, c, d)| NsOp::Rename(a, b, c, d)),
    ]
}

/// The six working directories ops address, resolved fresh each step so
/// renamed/removed directories fall back to root rather than dangling.
fn dir_pool(v: &Vfs) -> Vec<Ino> {
    let mut pool = vec![v.root()];
    for path in ["/d0", "/d1", "/d2", "/d0/d1", "/d1/d2"] {
        if let Ok(r) = v.resolve(v.root(), path) {
            pool.push(r.ino);
        } else {
            pool.push(v.root());
        }
    }
    pool
}

fn seed_tree() -> Vfs {
    let v = Vfs::new();
    v.mkdir_p("/d0/d1").unwrap();
    v.mkdir_p("/d1/d2").unwrap();
    v.mkdir_p("/d2").unwrap();
    v
}

/// Every inode slot that still carries links must be reachable from the
/// root by walking directory entries, and `path_of` must terminate on it
/// (its cycle guard reports `<cycle>` instead of hanging).
fn assert_live_inodes_root_reachable(v: &Vfs) {
    let mut reachable: BTreeSet<Ino> = BTreeSet::new();
    reachable.insert(v.root());
    let mut queue = vec![v.root()];
    while let Some(cur) = queue.pop() {
        let entries: Vec<Ino> = {
            let node = v.inode(cur);
            match node.dir_entries() {
                Some(e) => e.values().copied().collect(),
                None => continue,
            }
        };
        for child in entries {
            if !reachable.insert(child) {
                // Hard links give files multiple parents; a directory
                // reached twice means a cycle or double-parent — corrupt.
                assert!(
                    v.inode(child).dir_entries().is_none(),
                    "directory {:?} reachable via two paths: namespace cycle",
                    child
                );
                continue;
            }
            queue.push(child);
        }
    }
    let reclaimed: BTreeSet<Ino> = v.reclaimed_slots().iter().copied().collect();
    for idx in 0..v.inode_count() {
        let ino = Ino(idx);
        if reclaimed.contains(&ino) {
            continue;
        }
        let inode = v.inode(ino);
        if inode.nlink == 0 {
            continue; // dead (e.g. removed dir slot awaiting reuse)
        }
        assert!(
            reachable.contains(&ino),
            "live inode {:?} (nlink {}) unreachable from root at {}",
            ino,
            inode.nlink,
            v.path_of(ino)
        );
        assert_ne!(v.path_of(ino), "<cycle>", "path_of found a cycle");
    }
}

proptest! {
    /// Arbitrary rename/link/unlink/mkdir/rmdir sequences keep the
    /// namespace a rooted tree: `resolve` terminates on every probe, no
    /// live inode is orphaned, and directory-cycle renames are rejected
    /// (so a cycle can never be observed afterwards).
    #[test]
    fn namespace_stays_rooted_under_random_mutations(
        ops in prop::collection::vec(ns_op(), 0..60),
    ) {
        let v = seed_tree();
        for op in ops {
            let pool = dir_pool(&v);
            let dir_at = |i: u8| pool[i as usize % pool.len()];
            let name = |n: u8| format!("n{}", n);
            let dname = |n: u8| format!("d{}", n);
            match op {
                NsOp::Mkdir(d, n) => {
                    let _ = v.mkdir(dir_at(d), &dname(n), Mode(0o755), Uid::ROOT, Gid::ROOT);
                }
                NsOp::Create(d, n) => {
                    let _ = v.create_file(
                        dir_at(d), &name(n), Mode(0o644), Uid::ROOT, Gid::ROOT, false,
                    );
                }
                NsOp::Link(sd, sn, td, tn) => {
                    if let Ok(r) = v.resolve(dir_at(sd), &name(sn)) {
                        let _ = v.link(dir_at(td), &name(tn), r.ino);
                    }
                }
                NsOp::Unlink(d, n) => {
                    let _ = v.unlink(dir_at(d), &name(n));
                }
                NsOp::Rmdir(d, n) => {
                    let _ = v.rmdir(dir_at(d), &dname(n));
                }
                NsOp::Rename(sd, sn, td, tn) => {
                    // Rename both file names and directory names so the
                    // ancestor check sees real directory moves.
                    let _ = v.rename(dir_at(sd), &name(sn), dir_at(td), &name(tn));
                    let _ = v.rename(dir_at(sd), &dname(sn), dir_at(td), &dname(tn));
                }
            }
            // resolve() must terminate on every step, from every pool dir.
            for probe in ["/d0/d1", "/d1/d2/n0", "d1/n1", "..", "../../d2"] {
                for &start in &pool {
                    let _ = v.resolve(start, probe);
                }
            }
        }
        assert_live_inodes_root_reachable(&v);
    }

    /// Directed adversarial sequence: repeatedly try to move an ancestor
    /// into its own descendant chain; every attempt must fail EINVAL and
    /// the tree must stay fully navigable.
    #[test]
    fn ancestor_moves_always_rejected(depth in 1usize..8) {
        let v = Vfs::new();
        let mut path = String::new();
        for i in 0..depth {
            path.push_str(&format!("/s{}", i));
        }
        v.mkdir_p(&path).unwrap();
        let top = v.resolve(v.root(), "/s0").unwrap().ino;
        let deepest = v.resolve(v.root(), &path).unwrap().ino;
        prop_assert_eq!(
            v.rename(v.root(), "s0", deepest, "loop").unwrap_err(),
            Errno::EINVAL
        );
        prop_assert_eq!(
            v.rename(v.root(), "s0", top, "self").unwrap_err(),
            Errno::EINVAL
        );
        prop_assert_eq!(v.resolve(v.root(), &path).unwrap().ino, deepest);
        assert_live_inodes_root_reachable(&v);
    }
}

/// Regression: before the ancestor check, this exact sequence detached
/// `/a` into an unreachable self-cycle and `path_of` reported `<cycle>`.
#[test]
fn rename_cycle_regression_shape() {
    let v = Vfs::new();
    v.mkdir_p("/a/b/c").unwrap();
    let c = v.resolve(v.root(), "/a/b/c").unwrap().ino;
    assert_eq!(
        v.rename(v.root(), "a", c, "a").unwrap_err(),
        Errno::EINVAL,
        "rename(\"/a\", \"/a/b/c/a\") must be rejected"
    );
    assert_eq!(v.path_of(c), "/a/b/c");
    assert_live_inodes_root_reachable(&v);
}

/// `dir_remove` is safe against the InodeData check even when handed a
/// non-directory parent.
#[test]
fn dir_remove_on_file_parent_is_enotdir() {
    let v = Vfs::new();
    v.install_file("/f", b"x", Mode(0o644), Uid::ROOT, Gid::ROOT)
        .unwrap();
    let f = v.resolve(v.root(), "/f").unwrap().ino;
    assert_eq!(v.dir_remove(f, "anything").unwrap_err(), Errno::ENOTDIR);
    assert_eq!(
        v.dir_remove(v.root(), "missing").unwrap_err(),
        Errno::ENOENT
    );
    let _ = f;
}
