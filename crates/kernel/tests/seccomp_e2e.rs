//! End-to-end coverage for the auto-seccomp subsystem (DESIGN.md §15):
//! the `/proc/seccomp/*` control plane driven through the real
//! open/read/write path, enforcement and the typed interceptor-slot
//! lifecycle through `Kernel::dispatch`, per-pid profile re-selection
//! across `execve`, the `Syscall::NAMES`/`Syscall::index` invariant the
//! flat action tables rely on, and a differential property test that
//! `enforce` behaves exactly as `complain` predicts (the
//! [`Trace::first_divergence`] oracle).

use proptest::prelude::*;
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::kernel::Kernel;
use sim_kernel::net::SimNet;
use sim_kernel::seccomp::{ProfileSpec, Seccomp, SeccompInterceptor, SeccompMode};
use sim_kernel::syscall::{OpenFlags, Syscall};
use sim_kernel::task::Pid;
use sim_kernel::trace::TraceRecorder;
use sim_kernel::vfs::Mode;

fn boot() -> (Kernel, Pid, Pid) {
    let k = Kernel::new(SimNet::new());
    let root = k.spawn_init();
    k.vfs.mkdir_p("/tmp").unwrap();
    let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
    k.vfs.inode_mut(t).mode = Mode(0o1777);
    k.install_standard_devices().unwrap();
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
    (k, root, user)
}

/// Arms the kernel's own seccomp control block with `specs` in `mode`
/// and puts its interceptor on the dispatch chain.
fn arm(
    k: &Kernel,
    specs: &[ProfileSpec],
    mode: SeccompMode,
) -> sim_kernel::kernel::InterceptorSlot {
    k.seccomp.load_profiles(specs).unwrap();
    k.seccomp.set_mode(mode);
    k.register_interceptor(Box::new(SeccompInterceptor::new(k.seccomp.clone())))
}

// ---------------------------------------------------------------------
// /proc/seccomp/* control plane through the real syscall path
// ---------------------------------------------------------------------

/// Root drives the whole lifecycle through file syscalls: load profiles,
/// switch mode, observe violations, clear the log — and reads always
/// reflect the control block's current state.
#[test]
fn proc_nodes_drive_the_full_lifecycle_as_root() {
    let (k, root, user) = boot();
    assert!(k
        .read_to_string(root, "/proc/seccomp/status")
        .unwrap()
        .contains("mode: off"));

    // Load two profiles through the node, then read them back: the
    // written grammar and the rendered node must agree.
    let text = "# test profiles\n\
                profile /bin/sh default=deny(EPERM) allow=stat,getuid\n\
                profile /sbin/strict default=kill allow=exit\n";
    let fd = k
        .sys_open(root, "/proc/seccomp/profiles", OpenFlags::write_only())
        .unwrap();
    k.sys_write(root, fd, text.as_bytes()).unwrap();
    k.sys_close(root, fd).unwrap();
    assert_eq!(k.seccomp.profile_count(), 2);
    let rendered = k.read_to_string(root, "/proc/seccomp/profiles").unwrap();
    assert_eq!(
        Seccomp::parse_profiles_text(&rendered).unwrap(),
        k.seccomp.profiles()
    );
    assert!(rendered.contains("default=kill"));

    // Mode switch through the status node, then one enforced denial.
    let fd = k
        .sys_open(root, "/proc/seccomp/status", OpenFlags::write_only())
        .unwrap();
    k.sys_write(root, fd, b"enforce").unwrap();
    k.sys_close(root, fd).unwrap();
    assert_eq!(k.seccomp.mode(), SeccompMode::Enforce);
    k.register_interceptor(Box::new(SeccompInterceptor::new(k.seccomp.clone())));
    assert_eq!(k.dispatch(user, Syscall::Pipe).fd_pair(), Err(Errno::EPERM));
    let log = k.read_to_string(root, "/proc/seccomp/violations").unwrap();
    assert!(log.contains("pipe") && log.contains("denied"), "{log}");
    let status = k.read_to_string(root, "/proc/seccomp/status").unwrap();
    assert!(status.contains("mode: enforce") && status.contains("profiles: 2"));

    // `clear` empties the log; garbage writes are EINVAL.
    let fd = k
        .sys_open(root, "/proc/seccomp/violations", OpenFlags::write_only())
        .unwrap();
    k.sys_write(root, fd, b"clear").unwrap();
    assert_eq!(k.sys_write(root, fd, b"bogus"), Err(Errno::EINVAL));
    k.sys_close(root, fd).unwrap();
    assert_eq!(k.seccomp.total_violations(), 0);
    let fd = k
        .sys_open(root, "/proc/seccomp/status", OpenFlags::write_only())
        .unwrap();
    assert_eq!(k.sys_write(root, fd, b"sideways"), Err(Errno::EINVAL));
    k.sys_close(root, fd).unwrap();
    // Bad profile text rejects the whole write and keeps the old table.
    let fd = k
        .sys_open(root, "/proc/seccomp/profiles", OpenFlags::write_only())
        .unwrap();
    assert_eq!(
        k.sys_write(root, fd, b"profile /bin/x allow=frobnicate"),
        Err(Errno::EINVAL)
    );
    k.sys_close(root, fd).unwrap();
    assert_eq!(k.seccomp.profile_count(), 2);
}

/// The nodes are 0600 root-owned: an unprivileged open — read or write —
/// dies at DAC with `EACCES` before any profile state can leak.
#[test]
fn proc_nodes_refuse_unprivileged_opens() {
    let (k, _root, user) = boot();
    for node in [
        "/proc/seccomp/profiles",
        "/proc/seccomp/status",
        "/proc/seccomp/violations",
    ] {
        assert_eq!(
            k.sys_open(user, node, OpenFlags::read_only()).unwrap_err(),
            Errno::EACCES,
            "{node} readable by non-root"
        );
        assert_eq!(
            k.sys_open(user, node, OpenFlags::write_only()).unwrap_err(),
            Errno::EACCES,
            "{node} writable by non-root"
        );
    }
}

/// An fd opened as root but used after a credential drop re-checks euid
/// at write time: the write fails `EPERM` and files an audit event, so a
/// leaked control-plane fd cannot rewrite allowlists.
#[test]
fn leaked_fd_after_cred_drop_gets_audited_eperm() {
    let (k, root, _user) = boot();
    let child = k.sys_fork(root).unwrap();
    let fd = k
        .sys_open(child, "/proc/seccomp/status", OpenFlags::write_only())
        .unwrap();
    k.sys_setuid(child, Uid(1000)).unwrap();
    assert_eq!(k.sys_write(child, fd, b"off"), Err(Errno::EPERM));
    let last = k.audit.last().expect("refused write files an event");
    assert!(
        last.contains("seccomp: non-root write"),
        "missing audit attribution: {}",
        last.render()
    );
    k.sys_close(child, fd).unwrap();
    k.sys_exit(child, 0).unwrap();
    k.sys_wait(root, child).unwrap();
}

// ---------------------------------------------------------------------
// Enforcement + slot lifecycle through dispatch
// ---------------------------------------------------------------------

/// The typed slot API gates enforcement live: disable lets calls
/// through, re-enable denies again, replacing the interceptor in place
/// swaps the policy without disturbing the chain, and removal ends it.
#[test]
fn slot_lifecycle_controls_enforcement_through_dispatch() {
    let (k, _root, user) = boot();
    let slot = arm(
        &k,
        &[ProfileSpec::allowing("/bin/sh", &["stat", "getuid"])],
        SeccompMode::Enforce,
    );
    let stat = || Syscall::Stat {
        path: "/tmp".into(),
    };
    assert!(k.dispatch(user, stat()).stat().is_ok());
    assert_eq!(k.dispatch(user, Syscall::Pipe).fd_pair(), Err(Errno::EPERM));
    // The denial is audited with the short-circuit rule carrying the
    // interceptor, the syscall name, and its class.
    let last = k.audit.last().unwrap().render();
    assert!(
        last.contains("seccomp:pipe:fs"),
        "deny rule should name interceptor, call, and class: {last}"
    );

    assert!(k.set_interceptor_enabled(slot, false));
    assert!(k.dispatch(user, Syscall::Pipe).fd_pair().is_ok());
    assert!(k.set_interceptor_enabled(slot, true));
    assert_eq!(k.dispatch(user, Syscall::Pipe).fd_pair(), Err(Errno::EPERM));

    // In-place replacement with an unrelated (empty ⇒ unconfining)
    // control block: the pid is immediately unconfined.
    assert!(k.replace_interceptor(slot, Box::new(SeccompInterceptor::new(Seccomp::new()))));
    assert!(k.dispatch(user, Syscall::Pipe).fd_pair().is_ok());
    assert!(k.replace_interceptor(slot, Box::new(SeccompInterceptor::new(k.seccomp.clone()))));
    assert_eq!(k.dispatch(user, Syscall::Pipe).fd_pair(), Err(Errno::EPERM));

    assert!(k.remove_interceptor(slot));
    assert!(k.dispatch(user, Syscall::Pipe).fd_pair().is_ok());
    assert!(!k.remove_interceptor(slot), "slot is gone");
}

/// `execve` re-selects the profile: the exec itself is judged under the
/// old image's allowlist, everything after under the new one.
#[test]
fn execve_reselects_the_profile_end_to_end() {
    let (k, _root, _user) = boot();
    k.vfs.mkdir_p("/bin").unwrap();
    k.vfs
        .install_file("/bin/a", b"", Mode(0o755), Uid::ROOT, Gid::ROOT)
        .unwrap();
    k.vfs
        .install_file("/bin/b", b"", Mode(0o755), Uid::ROOT, Gid::ROOT)
        .unwrap();
    let task = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/a");
    arm(
        &k,
        &[
            ProfileSpec::allowing("/bin/a", &["getuid", "execve"]),
            ProfileSpec::allowing("/bin/b", &["pipe"]),
        ],
        SeccompMode::Enforce,
    );
    assert!(k.dispatch(task, Syscall::Getuid).uid().is_ok());
    assert_eq!(k.dispatch(task, Syscall::Pipe).fd_pair(), Err(Errno::EPERM));
    assert_eq!(
        k.dispatch(
            task,
            Syscall::Execve {
                path: "/bin/b".into()
            }
        )
        .path(),
        Ok("/bin/b".to_string())
    );
    // Same pid, new image: /bin/b's allowlist applies from the next call.
    assert!(k.dispatch(task, Syscall::Pipe).fd_pair().is_ok());
    assert_eq!(k.dispatch(task, Syscall::Getuid).uid(), Err(Errno::EPERM));
    // An exec *not* in the current allowlist is itself denied.
    assert_eq!(
        k.dispatch(
            task,
            Syscall::Execve {
                path: "/bin/a".into()
            }
        )
        .path(),
        Err(Errno::EPERM)
    );
}

// ---------------------------------------------------------------------
// The NAMES/index contract the flat action tables index by
// ---------------------------------------------------------------------

/// `Syscall::NAMES[c.index()] == c.name()` and `name_index` is its
/// inverse — the invariant that makes a compiled profile's
/// `[Action; COUNT]` array and the exchange grammar agree.
#[test]
fn names_index_and_name_index_agree() {
    assert_eq!(Syscall::NAMES.len(), Syscall::COUNT);
    for (i, name) in Syscall::NAMES.iter().enumerate() {
        assert_eq!(Syscall::name_index(name), Some(i), "name {name}");
    }
    assert_eq!(Syscall::name_index("frobnicate"), None);
    // Spot-check one constructed variant per class.
    let samples: Vec<Syscall> = vec![
        Syscall::Stat { path: "/".into() },
        Syscall::Getuid,
        Syscall::Ioctl {
            fd: 0,
            cmd: sim_kernel::syscall::IoctlCmd::Eject,
        },
        Syscall::Umount { target: "/".into() },
        Syscall::Socketpair,
        Syscall::Fork,
    ];
    for c in samples {
        assert_eq!(Syscall::NAMES[c.index()], c.name(), "variant {:?}", c);
        assert_eq!(Syscall::name_index(c.name()), Some(c.index()));
    }
}

// ---------------------------------------------------------------------
// Differential property: enforce ≡ what complain predicts
// ---------------------------------------------------------------------

/// The read-only operation pool the property drives. Every op is free of
/// side effects visible to later ops, so a call that runs under
/// `complain` but is denied under `enforce` cannot make any *other*
/// entry diverge — the only legal differences are the substituted error
/// returns at the violation positions themselves.
const POOL: usize = 8;

fn pool_call(i: usize) -> Syscall {
    match i % POOL {
        0 => Syscall::Stat {
            path: "/tmp".into(),
        },
        1 => Syscall::Stat {
            path: "/nope".into(),
        },
        2 => Syscall::Lstat {
            path: "/tmp".into(),
        },
        3 => Syscall::Readdir { path: "/".into() },
        4 => Syscall::Getuid,
        5 => Syscall::Geteuid,
        6 => Syscall::Getgid,
        _ => Syscall::NetfilterList,
    }
}

proptest! {
    /// Run one random call sequence twice from identical boots — once in
    /// `complain`, once in `enforce`, same random allowlist — and build
    /// the predicted enforcement trace from the complain run by
    /// substituting `Err(EPERM)` at exactly the violation positions.
    /// Oracle: [`sim_kernel::trace::Trace::first_divergence`] between
    /// prediction and the real enforced trace is `None`, and both runs
    /// agree on the violation count.
    #[test]
    fn enforce_matches_the_complain_prediction(
        ops in prop::collection::vec(0usize..POOL, 1..60),
        allow_mask in 0u8..=255,
    ) {
        // Random allowlist over the pool's distinct syscall names.
        let pool_names: Vec<&'static str> =
            (0..POOL).map(|i| pool_call(i).name()).collect();
        let allow: Vec<&str> = pool_names
            .iter()
            .enumerate()
            .filter(|(i, _)| allow_mask >> i & 1 == 1)
            .map(|(_, n)| *n)
            .collect();
        let spec = ProfileSpec::allowing("/bin/sh", &allow);

        let run = |mode: SeccompMode| {
            let (k, _root, user) = boot();
            let rec = TraceRecorder::new();
            let trace = rec.trace();
            k.register_interceptor(Box::new(rec));
            arm(&k, std::slice::from_ref(&spec), mode);
            for &i in &ops {
                let _ = k.dispatch(user, pool_call(i));
            }
            let t = trace.lock().unwrap().clone();
            (t, k.seccomp.total_violations())
        };
        let (complain_trace, complain_violations) = run(SeccompMode::Complain);
        let (enforced_trace, enforced_violations) = run(SeccompMode::Enforce);

        // Prediction: every op whose name is outside the allowlist is a
        // violation; under enforce its entry returns the deny errno.
        let mut predicted = complain_trace.clone();
        let mut expected_violations = 0u64;
        for (entry, &i) in predicted.entries.iter_mut().zip(&ops) {
            if !allow.contains(&pool_call(i).name()) {
                entry.ret = format!("{:?}", sim_kernel::syscall::SysRet::Err(Errno::EPERM));
                expected_violations += 1;
            }
        }
        prop_assert_eq!(complain_violations, expected_violations);
        prop_assert_eq!(enforced_violations, expected_violations);
        prop_assert_eq!(
            predicted.first_divergence(&enforced_trace),
            None,
            "complain trace:\n{}\nenforced trace:\n{}",
            complain_trace.render(),
            enforced_trace.render()
        );
    }
}
