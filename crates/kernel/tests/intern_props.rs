//! Property tests over the name interner and its dcache integration:
//! intern/resolve round-trips, one-symbol-per-name under concurrent
//! interning, and stale-hit freedom of the interned-key dcache.

use proptest::prelude::*;
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::vfs::{Mode, Name, Vfs};
use std::collections::HashMap;

proptest! {
    /// Interning is idempotent and resolves back to the exact string:
    /// for any batch of names, `intern` twice yields the same symbol and
    /// `as_str` returns the original text; distinct strings in the batch
    /// get distinct symbols.
    #[test]
    fn intern_resolve_round_trip(
        names in prop::collection::vec("[a-z0-9_.-]{1,24}", 1..32),
    ) {
        let mut by_text: HashMap<String, Name> = HashMap::new();
        for n in &names {
            let sym = Name::intern(n);
            prop_assert_eq!(sym.as_str(), n.as_str());
            prop_assert_eq!(Name::intern(n), sym);
            prop_assert_eq!(Name::lookup(n), Some(sym));
            if let Some(prev) = by_text.insert(n.clone(), sym) {
                prop_assert_eq!(prev, sym);
            }
        }
        // Distinct texts never alias to one symbol.
        let mut by_sym: HashMap<Name, String> = HashMap::new();
        for (text, sym) in by_text {
            if let Some(other) = by_sym.insert(sym, text.clone()) {
                prop_assert_eq!(other, text);
            }
        }
    }

    /// Eight threads interning the same name set concurrently agree on
    /// one symbol per distinct name — no stripe ever hands out two ids
    /// for one string, whatever the interleaving.
    #[test]
    fn concurrent_interning_yields_one_symbol_per_name(
        seed in 0u64..1_000_000,
        count in 1usize..48,
    ) {
        let names: Vec<String> = (0..count)
            .map(|i| format!("ct-{}-{}", seed, i))
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let names = names.clone();
                std::thread::spawn(move || {
                    // Each thread walks the set in a different rotation so
                    // first-intern races land on every name.
                    let n = names.len();
                    (0..n)
                        .map(|i| {
                            let name = &names[(i + t * 7) % n];
                            (name.clone(), Name::intern(name))
                        })
                        .collect::<HashMap<String, Name>>()
                })
            })
            .collect();
        let maps: Vec<HashMap<String, Name>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for name in &names {
            let first = maps[0][name];
            prop_assert_eq!(first.as_str(), name.as_str());
            for m in &maps {
                prop_assert_eq!(m[name], first);
            }
        }
    }

    /// With interned full-path dcache keys, arbitrary create/unlink/
    /// rename sequences never produce a stale hit: every resolve agrees
    /// with a shadow model of the namespace, and re-resolving a path
    /// right after a mutation sees the mutation.
    #[test]
    fn dcache_with_interned_keys_stays_stale_hit_free(
        ops in prop::collection::vec((0u8..3, 0u8..5, 0u8..5), 0..60),
    ) {
        let v = Vfs::new();
        let dir = v.mkdir_p("/w").unwrap();
        // name index -> inode currently at /w/f<i>, per the model.
        let mut model: HashMap<u8, sim_kernel::vfs::Ino> = HashMap::new();
        let name = |i: u8| format!("f{}", i);
        let path = |i: u8| format!("/w/f{}", i);
        for (op, a, b) in ops {
            match op {
                // create (non-exclusive: no-op when present)
                0 => {
                    if let Ok(ino) =
                        v.create_file(dir, &name(a), Mode(0o644), Uid::ROOT, Gid::ROOT, true)
                    {
                        model.insert(a, ino);
                    }
                }
                // unlink
                1 => {
                    if v.unlink(dir, &name(a)).is_ok() {
                        model.remove(&a);
                    }
                }
                // rename a -> b within /w
                _ => {
                    if v.rename(dir, &name(a), dir, &name(b)).is_ok() {
                        if let Some(ino) = model.remove(&a) {
                            model.insert(b, ino);
                        }
                    }
                }
            }
            // Every probe must match the model exactly — a stale dcache
            // hit would resurface a removed or renamed-away entry.
            for i in 0..5u8 {
                match model.get(&i) {
                    Some(&ino) => {
                        prop_assert_eq!(v.resolve(v.root(), &path(i)).unwrap().ino, ino);
                    }
                    None => {
                        prop_assert!(v.resolve(v.root(), &path(i)).is_err());
                    }
                }
            }
        }
    }
}
