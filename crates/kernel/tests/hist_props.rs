//! Property tests for the latency-histogram algebra.
//!
//! Fleet aggregation folds per-thread [`LatencyHistogram`]s (and the
//! coarser [`LatencyStats`]) in whatever order worker reports arrive, so
//! `merge` must form a commutative monoid: associative, commutative,
//! with the empty histogram as identity. Quantiles must be monotone in
//! `q` and bucket boundaries exact at powers of two for every sample
//! stream, not just the hand-picked unit-test cases.

use proptest::prelude::*;
use sim_kernel::trace::{hist, LatencyHistogram, LatencyStats};

/// Samples spanning every bucket regime: zeros, small exact values,
/// power-of-two boundaries and large magnitudes.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof!(
        Just(0u64),
        1u64..256,
        (0u32..63).prop_map(|k| 1u64 << k),
        (0u32..63).prop_map(|k| (1u64 << k).wrapping_sub(1)),
        0u64..u64::MAX / 2,
    )
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.observe(s);
    }
    h
}

fn stats_of(samples: &[u64]) -> LatencyStats {
    let mut s = LatencyStats::default();
    for &v in samples {
        s.observe(v);
    }
    s
}

proptest! {
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(sample(), 0..64),
        b in prop::collection::vec(sample(), 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative_with_identity(
        a in prop::collection::vec(sample(), 0..48),
        b in prop::collection::vec(sample(), 0..48),
        c in prop::collection::vec(sample(), 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // The empty histogram is the identity.
        let mut with_id = left.clone();
        with_id.merge(&LatencyHistogram::new());
        prop_assert_eq!(with_id, left);
    }

    #[test]
    fn merged_histogram_equals_histogram_of_concatenation(
        a in prop::collection::vec(sample(), 0..64),
        b in prop::collection::vec(sample(), 0..64),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&both));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(sample(), 1..128),
        q1 in 0u64..=1000,
        q2 in 0u64..=1000,
    ) {
        let h = hist_of(&samples);
        let (q1, q2) = (q1 as f64 / 1000.0, q2 as f64 / 1000.0);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        // Every quantile stays within the observed range.
        prop_assert!(h.quantile(lo) >= h.observed_min());
        prop_assert!(h.quantile(hi) <= h.max);
    }

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two(k in 1u32..64) {
        let v = 1u64 << (k - 1);
        // 2^(k-1) opens bucket k; its predecessor lands strictly below.
        prop_assert_eq!(hist::bucket_of(v), k as usize);
        prop_assert!(hist::bucket_of(v - 1) < k as usize);
        prop_assert!(hist::bucket_bound(hist::bucket_of(v)) >= v);
    }

    #[test]
    fn stats_merge_is_commutative_associative_and_lossless(
        a in prop::collection::vec(sample(), 0..64),
        b in prop::collection::vec(sample(), 0..64),
        c in prop::collection::vec(sample(), 0..64),
    ) {
        let (sa, sb, sc) = (stats_of(&a), stats_of(&b), stats_of(&c));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);

        let mut left = ab;
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Merge preserves min/mean exactly: it matches observing the
        // concatenated stream directly (the regression the `min` field
        // fixed — merge used to clobber the smaller minimum).
        let mut both = a.clone();
        both.extend_from_slice(&b);
        both.extend_from_slice(&c);
        prop_assert_eq!(left, stats_of(&both));
    }
}
