//! The dispatch boundary is a *total, transparent* mapping: every
//! [`Syscall`] variant routed through [`Kernel::dispatch`] must behave
//! exactly like the corresponding direct `sys_*` call — same return
//! value, same state transitions, same audit stream. These tests drive a
//! twin pair of kernels (one direct, one dispatched) through every
//! variant, then exercise the interceptor stack: deterministic fault
//! injection, one-shot faults, per-class metering, and trace recording.

use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::kernel::Kernel;
use sim_kernel::net::{Domain, Ipv4, Packet, SimNet, SockType};
use sim_kernel::syscall::{
    FaultConfig, FaultInjector, IoctlCmd, NetfilterOp, OpenFlags, RouteOp, Syscall, SyscallMeter,
    Whence,
};
use sim_kernel::task::{NsKind, Pid};
use sim_kernel::trace::TraceRecorder;
use sim_kernel::vfs::Mode;

fn boot() -> (Kernel, Pid, Pid) {
    let k = Kernel::new(SimNet::new());
    let root = k.spawn_init();
    k.vfs.mkdir_p("/tmp").unwrap();
    k.vfs.mkdir_p("/mnt/cdrom").unwrap();
    let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
    k.vfs.inode_mut(t).mode = Mode(0o1777);
    k.install_standard_devices().unwrap();
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
    (k, root, user)
}

/// Runs the same logical call on the direct kernel and the dispatched
/// kernel and asserts the observable outcome matches.
macro_rules! same {
    ($direct:expr, $via:expr) => {{
        let d = $direct;
        let v = $via;
        assert_eq!(d, v, "direct and dispatched outcomes diverge");
    }};
}

/// Like [`same!`], but yields the (matching) direct result.
macro_rules! same_val {
    ($direct:expr, $via:expr) => {{
        let d = $direct;
        let v = $via;
        assert_eq!(d, v, "direct and dispatched outcomes diverge");
        d
    }};
}

/// Every `Syscall` variant, dispatched, behaves exactly like the direct
/// entry point — on success paths and denial paths alike — and the two
/// kernels end with identical audit streams.
#[test]
fn dispatch_is_equivalent_to_direct_for_every_variant() {
    let (kd, rootd, userd) = boot();
    let (kv, rootv, userv) = boot();
    assert_eq!(rootd, rootv);
    assert_eq!(userd, userv);
    let (root, user) = (rootd, userd);

    // ----- fs -----
    same!(
        kd.sys_mkdir(user, "/tmp/d", Mode(0o755)),
        kv.dispatch(
            user,
            Syscall::Mkdir {
                path: "/tmp/d".into(),
                mode: Mode(0o755),
            },
        )
        .unit()
    );
    let fd = same_val!(
        kd.sys_open(user, "/tmp/d/f", OpenFlags::create_trunc(Mode(0o644))),
        kv.dispatch(
            user,
            Syscall::Open {
                path: "/tmp/d/f".into(),
                flags: OpenFlags::create_trunc(Mode(0o644)),
            },
        )
        .fd()
    )
    .unwrap();
    same!(
        kd.sys_write(user, fd, b"hello, abi"),
        kv.dispatch(
            user,
            Syscall::Write {
                fd,
                data: b"hello, abi".to_vec(),
            },
        )
        .size()
    );
    for (offset, whence) in [(0, Whence::Set), (-4, Whence::Cur), (-10, Whence::End)] {
        same!(
            kd.sys_lseek(user, fd, offset, whence),
            kv.dispatch(user, Syscall::Lseek { fd, offset, whence })
                .size()
        );
    }
    {
        let mut buf = Vec::new();
        let dn = kd.sys_read(user, fd, &mut buf, 5);
        let vr = kv.dispatch(user, Syscall::Read { fd, count: 5 }).data();
        assert_eq!(dn.map(|_| buf), vr);
    }
    same!(
        kd.sys_stat(user, "/tmp/d/f"),
        kv.dispatch(
            user,
            Syscall::Stat {
                path: "/tmp/d/f".into(),
            },
        )
        .stat()
    );
    same!(
        kd.sys_symlink(user, "/tmp/d/f", "/tmp/d/l"),
        kv.dispatch(
            user,
            Syscall::Symlink {
                target: "/tmp/d/f".into(),
                linkpath: "/tmp/d/l".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_lstat(user, "/tmp/d/l"),
        kv.dispatch(
            user,
            Syscall::Lstat {
                path: "/tmp/d/l".into(),
            },
        )
        .stat()
    );
    same!(
        kd.sys_chmod(user, "/tmp/d/f", Mode(0o600)),
        kv.dispatch(
            user,
            Syscall::Chmod {
                path: "/tmp/d/f".into(),
                mode: Mode(0o600),
            },
        )
        .unit()
    );
    // chown: denied for the user, permitted for root — both paths.
    same!(
        kd.sys_chown(user, "/tmp/d/f", Some(Uid::ROOT), None),
        kv.dispatch(
            user,
            Syscall::Chown {
                path: "/tmp/d/f".into(),
                uid: Some(Uid::ROOT),
                gid: None,
            },
        )
        .unit()
    );
    same!(
        kd.sys_chown(root, "/tmp/d/f", None, Some(Gid(1000))),
        kv.dispatch(
            root,
            Syscall::Chown {
                path: "/tmp/d/f".into(),
                uid: None,
                gid: Some(Gid(1000)),
            },
        )
        .unit()
    );
    same!(
        kd.sys_readdir(user, "/tmp/d"),
        kv.dispatch(
            user,
            Syscall::Readdir {
                path: "/tmp/d".into(),
            },
        )
        .names()
    );
    same!(
        kd.sys_rename(user, "/tmp/d/f", "/tmp/d/g"),
        kv.dispatch(
            user,
            Syscall::Rename {
                from: "/tmp/d/f".into(),
                to: "/tmp/d/g".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_chdir(user, "/tmp/d"),
        kv.dispatch(
            user,
            Syscall::Chdir {
                path: "/tmp/d".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_close(user, fd),
        kv.dispatch(user, Syscall::Close { fd }).unit()
    );
    same!(
        kd.sys_unlink(user, "/tmp/d/g"),
        kv.dispatch(
            user,
            Syscall::Unlink {
                path: "/tmp/d/g".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_unlink(user, "/tmp/d/l"),
        kv.dispatch(
            user,
            Syscall::Unlink {
                path: "/tmp/d/l".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_chdir(user, "/"),
        kv.dispatch(user, Syscall::Chdir { path: "/".into() })
            .unit()
    );
    same!(
        kd.sys_rmdir(user, "/tmp/d"),
        kv.dispatch(
            user,
            Syscall::Rmdir {
                path: "/tmp/d".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_pipe(user),
        kv.dispatch(user, Syscall::Pipe).fd_pair()
    );

    // ----- id -----
    same!(
        kd.sys_setuid(user, Uid::ROOT),
        kv.dispatch(user, Syscall::Setuid { uid: Uid::ROOT }).unit()
    );
    same!(
        kd.sys_seteuid(user, Uid(1000)),
        kv.dispatch(user, Syscall::Seteuid { uid: Uid(1000) })
            .unit()
    );
    same!(
        kd.sys_setgid(user, Gid(1000)),
        kv.dispatch(user, Syscall::Setgid { gid: Gid(1000) }).unit()
    );
    same!(
        kd.sys_setgroups(root, &[Gid(0), Gid(24)]),
        kv.dispatch(
            root,
            Syscall::Setgroups {
                groups: vec![Gid(0), Gid(24)],
            },
        )
        .unit()
    );
    same!(
        kd.sys_getuid(user),
        kv.dispatch(user, Syscall::Getuid).uid()
    );
    same!(
        kd.sys_geteuid(user),
        kv.dispatch(user, Syscall::Geteuid).uid()
    );
    same!(
        kd.sys_getgid(user),
        kv.dispatch(user, Syscall::Getgid).gid()
    );

    // ----- ioctl -----
    same!(
        kd.sys_ioctl(user, 99, IoctlCmd::Eject),
        kv.dispatch(
            user,
            Syscall::Ioctl {
                fd: 99,
                cmd: IoctlCmd::Eject,
            },
        )
        .ioctl()
    );

    // ----- mount -----
    same!(
        kd.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
        kv.dispatch(
            root,
            Syscall::Mount {
                source: "/dev/cdrom".into(),
                target: "/mnt/cdrom".into(),
                fstype: "iso9660".into(),
                options: "ro".into(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_umount(root, "/mnt/cdrom"),
        kv.dispatch(
            root,
            Syscall::Umount {
                target: "/mnt/cdrom".into(),
            },
        )
        .unit()
    );

    // ----- net -----
    let sock = same_val!(
        kd.sys_socket(user, Domain::Inet, SockType::Dgram, 17),
        kv.dispatch(
            user,
            Syscall::Socket {
                domain: Domain::Inet,
                stype: SockType::Dgram,
                protocol: 17,
            },
        )
        .fd()
    )
    .unwrap();
    same!(
        kd.sys_bind(user, sock, Ipv4::ANY, 5353),
        kv.dispatch(
            user,
            Syscall::Bind {
                fd: sock,
                addr: Ipv4::ANY,
                port: 5353,
            },
        )
        .unit()
    );
    same!(
        kd.sys_listen(user, sock),
        kv.dispatch(user, Syscall::Listen { fd: sock }).unit()
    );
    same!(
        kd.sys_accept(user, sock),
        kv.dispatch(user, Syscall::Accept { fd: sock }).fd()
    );
    same!(
        kd.sys_connect(user, sock, Ipv4::LOOPBACK, 9),
        kv.dispatch(
            user,
            Syscall::Connect {
                fd: sock,
                addr: Ipv4::LOOPBACK,
                port: 9,
            },
        )
        .unit()
    );
    same!(
        kd.sys_send(user, sock, b"ping"),
        kv.dispatch(
            user,
            Syscall::Send {
                fd: sock,
                data: b"ping".to_vec(),
            },
        )
        .size()
    );
    same!(
        kd.sys_sendto(user, sock, Ipv4::LOOPBACK, 9, b"dgram"),
        kv.dispatch(
            user,
            Syscall::Sendto {
                fd: sock,
                addr: Ipv4::LOOPBACK,
                port: 9,
                data: b"dgram".to_vec(),
            },
        )
        .size()
    );
    same!(
        kd.sys_recv(user, sock, 64),
        kv.dispatch(user, Syscall::Recv { fd: sock, max: 64 })
            .data()
    );
    same!(
        kd.sys_recv_packet(user, sock),
        kv.dispatch(user, Syscall::RecvPacket { fd: sock }).packet()
    );
    let probe = Packet::echo_request(Ipv4::LOOPBACK, Ipv4::LOOPBACK, 1, 1, Uid(1000));
    same!(
        kd.sys_send_packet(user, sock, probe.clone()),
        kv.dispatch(
            user,
            Syscall::SendPacket {
                fd: sock,
                pkt: probe.clone(),
            },
        )
        .unit()
    );
    same!(
        kd.sys_socketpair(user),
        kv.dispatch(user, Syscall::Socketpair).fd_pair()
    );
    same!(
        kd.sys_netfilter(root, NetfilterOp::Flush),
        kv.dispatch(
            root,
            Syscall::Netfilter {
                op: NetfilterOp::Flush,
            },
        )
        .unit()
    );
    same!(
        kd.sys_netfilter_list(user),
        kv.dispatch(user, Syscall::NetfilterList).rules()
    );
    same!(
        kd.sys_ioctl_route(
            root,
            RouteOp::Del {
                dest: Ipv4::ANY,
                prefix: 0,
            },
        ),
        kv.dispatch(
            root,
            Syscall::IoctlRoute {
                op: RouteOp::Del {
                    dest: Ipv4::ANY,
                    prefix: 0,
                },
            },
        )
        .unit()
    );

    // ----- process -----
    let child = same_val!(kd.sys_fork(user), kv.dispatch(user, Syscall::Fork).pid()).unwrap();
    same!(
        kd.sys_execve(child, "/bin/true"),
        kv.dispatch(
            child,
            Syscall::Execve {
                path: "/bin/true".into(),
            },
        )
        .path()
    );
    same!(
        kd.sys_unshare(child, NsKind::Mount),
        kv.dispatch(
            child,
            Syscall::Unshare {
                kind: NsKind::Mount
            }
        )
        .unit()
    );
    same!(
        kd.sys_exit(child, 7),
        kv.dispatch(child, Syscall::Exit { status: 7 }).unit()
    );
    same!(
        kd.sys_wait(user, child),
        kv.dispatch(user, Syscall::Wait { child }).status()
    );

    // The two kernels must have produced identical audit streams.
    let direct: Vec<String> = kd.audit.events().iter().map(|e| e.render()).collect();
    let via: Vec<String> = kv.audit.events().iter().map(|e| e.render()).collect();
    assert_eq!(
        direct, via,
        "audit streams diverge between direct and dispatched runs"
    );
    assert_eq!(kd.audit.next_seq(), kv.audit.next_seq());
}

/// Same seed + same call sequence → byte-identical injection pattern;
/// different seed → (almost surely) a different one.
#[test]
fn fault_injection_is_deterministic_under_a_fixed_seed() {
    let run = |seed: u64| -> Vec<bool> {
        let (k, _root, user) = boot();
        let inj = FaultInjector::new(FaultConfig::storm(seed, 10));
        let stats = inj.stats();
        k.push_interceptor(Box::new(inj));
        let pattern: Vec<bool> = (0..400)
            .map(|_| {
                k.dispatch(
                    user,
                    Syscall::Stat {
                        path: "/tmp".into(),
                    },
                )
                .is_err()
            })
            .collect();
        let s = stats.lock().unwrap();
        assert_eq!(s.seen, 400);
        assert!(s.injected > 0, "a 1-in-10 storm over 400 calls must fire");
        assert_eq!(s.injected, pattern.iter().filter(|&&b| b).count() as u64);
        pattern
    };
    let a = run(42);
    let b = run(42);
    let c = run(43);
    assert_eq!(a, b, "same seed must reproduce the same fault pattern");
    assert_ne!(a, c, "different seeds should perturb the fault pattern");
}

/// An injected fault is observable on the audit stream, attributed to
/// the interceptor, and never touches the credential getters.
#[test]
fn injected_faults_are_audited_and_getters_are_exempt() {
    let (k, _root, user) = boot();
    // rate 1 = inject on every eligible call.
    k.push_interceptor(Box::new(FaultInjector::new(FaultConfig::storm(7, 1))));
    let ret = k.dispatch(
        user,
        Syscall::Stat {
            path: "/tmp".into(),
        },
    );
    assert!(ret.is_err(), "rate-1 storm must fail the first fs call");
    let last = k.audit.last().expect("injection emits an audit event");
    assert!(
        last.contains("injected") && last.contains("fault_injector"),
        "audit event should attribute the fault: {}",
        last.render()
    );
    // Credential getters are exempt even at rate 1 — a vulnerable binary
    // must always be able to ask who it is.
    assert!(k.dispatch(user, Syscall::Getuid).uid().is_ok());
    assert!(k.dispatch(user, Syscall::Geteuid).uid().is_ok());
    assert!(k.dispatch(user, Syscall::Getgid).gid().is_ok());
}

/// The one-shot plan fails exactly the k-th occurrence of the named
/// syscall — here, the second mount — and nothing else.
#[test]
fn one_shot_fails_exactly_the_kth_mount() {
    let (mut k, root, _user) = boot();
    k.push_interceptor(Box::new(FaultInjector::new(
        FaultConfig::default().with_one_shot("mount", 2, Errno::EIO),
    )));
    let mount = |k: &mut Kernel| {
        k.dispatch(
            root,
            Syscall::Mount {
                source: "/dev/cdrom".into(),
                target: "/mnt/cdrom".into(),
                fstype: "iso9660".into(),
                options: "ro".into(),
            },
        )
        .unit()
    };
    let umount = |k: &mut Kernel| {
        k.dispatch(
            root,
            Syscall::Umount {
                target: "/mnt/cdrom".into(),
            },
        )
        .unit()
    };
    assert_eq!(mount(&mut k), Ok(()), "first mount is untouched");
    assert_eq!(umount(&mut k), Ok(()));
    assert_eq!(
        mount(&mut k),
        Err(Errno::EIO),
        "second mount takes the one-shot"
    );
    assert_eq!(mount(&mut k), Ok(()), "third mount is untouched again");
    assert_eq!(umount(&mut k), Ok(()));
}

/// A consumed one-shot must stay consumed across an injector
/// replace/rebuild cycle (the exec re-selection pattern): umount/remount
/// churn after the swap may not re-fire "fail the 2nd mount". The
/// consumption flag rides in the shared [`FaultStats`], which
/// [`FaultInjector::resuming`] carries into the replacement.
#[test]
fn consumed_one_shot_cannot_rearm_across_reselection() {
    let (k, root, _user) = boot();
    let config = FaultConfig::default().with_one_shot("mount", 2, Errno::EIO);
    let injector = FaultInjector::resuming(
        config.clone(),
        std::sync::Arc::new(std::sync::Mutex::new(Default::default())),
    );
    let stats = injector.stats();
    let slot = k.register_interceptor(Box::new(injector));

    let mount = |k: &Kernel| {
        k.dispatch(
            root,
            Syscall::Mount {
                source: "/dev/cdrom".into(),
                target: "/mnt/cdrom".into(),
                fstype: "iso9660".into(),
                options: "ro".into(),
            },
        )
        .unit()
    };
    let umount = |k: &Kernel| {
        k.dispatch(
            root,
            Syscall::Umount {
                target: "/mnt/cdrom".into(),
            },
        )
        .unit()
    };

    // Mount/umount churn up to the one-shot: the 2nd mount takes it.
    assert_eq!(mount(&k), Ok(()));
    assert_eq!(umount(&k), Ok(()));
    assert_eq!(
        mount(&k),
        Err(Errno::EIO),
        "second mount takes the one-shot"
    );
    assert_eq!(stats.lock().unwrap().one_shots_fired, vec![true]);

    // Disable/enable churn on the slot must not reset consumption.
    assert!(k.set_interceptor_enabled(slot, false));
    assert_eq!(mount(&k), Ok(()));
    assert_eq!(umount(&k), Ok(()));
    assert!(k.set_interceptor_enabled(slot, true));

    // Exec re-selection: the injector object is rebuilt from the same
    // config and swapped into the slot. Resuming the stats handle keeps
    // the one-shot consumed even though the replacement's occurrence
    // counter restarts (its own 2nd mount would otherwise match k=2).
    assert!(k.replace_interceptor(
        slot,
        Box::new(FaultInjector::resuming(config, stats.clone()))
    ));
    for _ in 0..4 {
        assert_eq!(mount(&k), Ok(()), "consumed one-shot must not re-fire");
        assert_eq!(umount(&k), Ok(()));
    }
    let s = stats.lock().unwrap();
    assert_eq!(s.injected, 1, "exactly one injection across both lives");
    assert_eq!(s.one_shots_fired, vec![true]);
}

/// The meter feeds per-class counters into the kernel metrics registry,
/// which renders them as `syscall_class_*` lines.
#[test]
fn meter_renders_per_class_metrics_lines() {
    let (k, root, user) = boot();
    k.push_interceptor(Box::new(SyscallMeter::new()));
    let _ = k.dispatch(
        user,
        Syscall::Stat {
            path: "/tmp".into(),
        },
    );
    let _ = k.dispatch(user, Syscall::Getuid);
    let _ = k.dispatch(
        root,
        Syscall::Mount {
            source: "/dev/cdrom".into(),
            target: "/mnt/cdrom".into(),
            fstype: "iso9660".into(),
            options: "ro".into(),
        },
    );
    let _ = k.dispatch(
        user,
        Syscall::Stat {
            path: "/nope".into(),
        },
    );
    let rendered = k.metrics.snapshot().render();
    assert!(
        rendered.contains("syscall_class_fs calls=2 errors=1"),
        "fs class line missing or wrong: {}",
        rendered
    );
    assert!(
        rendered.contains("syscall_class_id calls=1"),
        "{}",
        rendered
    );
    assert!(
        rendered.contains("syscall_class_mount calls=1"),
        "{}",
        rendered
    );
}

/// A recorder attached to a run captures the full (pid, call, ret)
/// stream; a second identical run replays it byte-for-byte.
#[test]
fn recorded_trace_replays_byte_identically() {
    let drive = |k: &mut Kernel, user: Pid| {
        let _ = k.dispatch(
            user,
            Syscall::Mkdir {
                path: "/tmp/t".into(),
                mode: Mode(0o755),
            },
        );
        let fd = k
            .dispatch(
                user,
                Syscall::Open {
                    path: "/tmp/t/x".into(),
                    flags: OpenFlags::create_trunc(Mode(0o644)),
                },
            )
            .fd()
            .unwrap();
        let _ = k.dispatch(
            user,
            Syscall::Write {
                fd,
                data: b"trace me".to_vec(),
            },
        );
        let _ = k.dispatch(user, Syscall::Close { fd });
        let _ = k.dispatch(user, Syscall::Getuid);
        let _ = k.dispatch(
            user,
            Syscall::Stat {
                path: "/tmp/t/x".into(),
            },
        );
    };

    let (mut k1, _r1, u1) = boot();
    let rec = TraceRecorder::new();
    let trace1 = rec.trace();
    k1.push_interceptor(Box::new(rec));
    drive(&mut k1, u1);
    let rendered = trace1.lock().unwrap().render();
    assert!(!trace1.lock().unwrap().is_empty());

    // Re-run from scratch: identical bytes.
    let (mut k2, _r2, u2) = boot();
    let rec2 = TraceRecorder::new();
    let trace2 = rec2.trace();
    k2.push_interceptor(Box::new(rec2));
    drive(&mut k2, u2);
    assert_eq!(rendered, trace2.lock().unwrap().render());

    // And the serialized form round-trips.
    let parsed = sim_kernel::trace::Trace::parse(&rendered).unwrap();
    assert_eq!(parsed.first_divergence(&trace2.lock().unwrap()), None);
}
