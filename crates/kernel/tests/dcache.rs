//! Dcache invalidation properties, exercised through the syscall layer:
//! every namespace mutation must bump the generation so a stale cached
//! resolution can never be served, and the `/proc/<lsm>/metrics` view must
//! report the cache counters.

use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::kernel::Kernel;
use sim_kernel::lsm::NullLsm;
use sim_kernel::net::SimNet;
use sim_kernel::vfs::Mode;
use sim_kernel::Pid;

fn boot() -> (Kernel, Pid) {
    let k = Kernel::new(SimNet::new());
    k.install_standard_devices().unwrap();
    k.register_lsm(Box::new(NullLsm)).unwrap();
    let root = k.spawn_init();
    k.vfs
        .install_file("/data/a.txt", b"alpha", Mode(0o644), Uid::ROOT, Gid::ROOT)
        .unwrap();
    k.vfs
        .install_file("/data/b.txt", b"beta", Mode(0o644), Uid::ROOT, Gid::ROOT)
        .unwrap();
    (k, root)
}

#[test]
fn repeated_reads_hit_the_dcache() {
    let (k, root) = boot();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let before = k.vfs.dcache_stats();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let after = k.vfs.dcache_stats();
    assert!(after.hits > before.hits, "second read must hit the cache");
}

#[test]
fn rename_bumps_generation_and_redirects() {
    let (k, root) = boot();
    assert_eq!(k.read_to_string(root, "/data/a.txt").unwrap(), "alpha");
    let g0 = k.vfs.namespace_generation();
    // Atomic replace: b.txt takes over the name a.txt.
    k.sys_rename(root, "/data/b.txt", "/data/a.txt").unwrap();
    assert!(k.vfs.namespace_generation() > g0, "rename must bump gen");
    // A stale hit would return "alpha".
    assert_eq!(k.read_to_string(root, "/data/a.txt").unwrap(), "beta");
}

#[test]
fn unlink_bumps_generation_and_uncaches() {
    let (k, root) = boot();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let g0 = k.vfs.namespace_generation();
    k.sys_unlink(root, "/data/a.txt").unwrap();
    assert!(k.vfs.namespace_generation() > g0, "unlink must bump gen");
    // A stale hit would resolve the dead inode instead of failing.
    assert_eq!(
        k.read_to_string(root, "/data/a.txt").unwrap_err(),
        Errno::ENOENT
    );
}

#[test]
fn mount_and_umount_bump_generation() {
    let (k, root) = boot();
    k.vfs.mkdir_p("/mnt/usb").unwrap();
    k.vfs
        .install_file(
            "/mnt/usb/under.txt",
            b"under",
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
    // Warm the cache on the to-be-covered path.
    assert_eq!(
        k.read_to_string(root, "/mnt/usb/under.txt").unwrap(),
        "under"
    );
    let g0 = k.vfs.namespace_generation();
    k.sys_mount(root, "/dev/sdb1", "/mnt/usb", "vfat", "rw")
        .unwrap();
    assert!(k.vfs.namespace_generation() > g0, "mount must bump gen");
    // A stale hit would still see the covered file.
    assert_eq!(
        k.read_to_string(root, "/mnt/usb/under.txt").unwrap_err(),
        Errno::ENOENT
    );
    let g1 = k.vfs.namespace_generation();
    k.sys_umount(root, "/mnt/usb").unwrap();
    assert!(k.vfs.namespace_generation() > g1, "umount must bump gen");
    assert_eq!(
        k.read_to_string(root, "/mnt/usb/under.txt").unwrap(),
        "under"
    );
}

#[test]
fn chmod_bumps_generation() {
    let (k, root) = boot();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let g0 = k.vfs.namespace_generation();
    k.sys_chmod(root, "/data/a.txt", Mode(0o600)).unwrap();
    assert!(k.vfs.namespace_generation() > g0, "chmod must bump gen");
}

#[test]
fn invalidation_counter_advances_on_flush() {
    let (k, root) = boot();
    k.read_to_string(root, "/data/a.txt").unwrap();
    k.sys_unlink(root, "/data/b.txt").unwrap();
    let before = k.vfs.dcache_stats().invalidations;
    // The flush is lazy: the next lookup after the mutation performs it.
    let _ = k.read_to_string(root, "/data/a.txt");
    assert!(k.vfs.dcache_stats().invalidations > before);
}

#[test]
fn proc_metrics_reports_intern_counters() {
    let (k, root) = boot();
    // First resolve interns the components; repeats hit the interner.
    k.read_to_string(root, "/data/a.txt").unwrap();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let text = k.read_to_string(root, "/proc/null/metrics").unwrap();
    let line = text
        .lines()
        .find(|l| l.starts_with("cache_intern "))
        .expect("metrics must carry a cache_intern line");
    assert!(
        !line.contains("hits=0 "),
        "intern hits must be nonzero after repeated resolves: {}",
        line
    );
}

#[test]
fn proc_metrics_reports_dcache_counters() {
    let (k, root) = boot();
    k.read_to_string(root, "/data/a.txt").unwrap();
    k.read_to_string(root, "/data/a.txt").unwrap();
    let text = k.read_to_string(root, "/proc/null/metrics").unwrap();
    let line = text
        .lines()
        .find(|l| l.starts_with("cache_dcache "))
        .expect("metrics must carry a cache_dcache line");
    assert!(
        !line.contains("hits=0 "),
        "dcache hits must be nonzero: {}",
        line
    );
}
