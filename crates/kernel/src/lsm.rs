//! The Linux Security Module hook framework.
//!
//! The paper's central mechanism: policies currently hard-coded in
//! setuid-to-root binaries are relocated behind kernel hooks. Stock Linux
//! hard-codes capability checks at the 8 studied call sites; Protego adds
//! LSM hooks *at those same sites* which may **grant** an operation that
//! the capability check would refuse (when the object-based policy allows
//! it) or **deny** one the capability check would permit.
//!
//! Accordingly every hook returns a [`Decision`]:
//! [`Decision::UseDefault`] applies the stock capability check,
//! [`Decision::Allow`] grants regardless of capabilities, and
//! [`Decision::Deny`] refuses with a specific errno. Hooks that interact
//! with authentication (the sudoers delegation of §4.3) can additionally
//! request that the kernel launch the trusted authentication utility.

use crate::caps::Cap;
use crate::cred::{Credentials, Gid, Uid};
use crate::dev::{ModemOpt, ModemState};
use crate::error::{Errno, KResult};
use crate::net::{Domain, Route, RouteTable, Rule, SockType};
use crate::vfs::{Access, MountOptions};

/// Tri-state outcome of a simple hook.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Fall back to the kernel's hard-coded (capability-based) policy.
    UseDefault,
    /// Grant the operation even without the usual capability.
    Allow,
    /// Refuse the operation with this errno.
    Deny(Errno),
}

/// Scope of an authentication request handed to the trusted agent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthScope {
    /// Prove knowledge of this user's password.
    User(Uid),
    /// Prove knowledge of this group's password (newgrp §4.3).
    Group(Gid),
}

/// A restricted uid transition recorded by the `setuid` hook and resolved
/// at `exec` time (§4.3: "policy enforcement must span two system calls").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingSetuid {
    /// The uid the process will become at `exec`.
    pub target: Uid,
    /// Binaries the pending user may exec; empty means unrestricted.
    pub allowed_binaries: Vec<String>,
    /// Whether the *target* user must authenticate at exec (su semantics).
    pub require_target_auth: bool,
    /// Environment variables that survive the transition; everything else
    /// is sanitized to protect the delegated command's integrity.
    pub keep_env: Vec<String>,
}

/// Outcome of the `setuid`/`setgid` hooks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetuidDecision {
    /// Stock policy: require CAP_SETUID / CAP_SETGID.
    UseDefault,
    /// Permit the transition immediately.
    Allow,
    /// Refuse.
    Deny(Errno),
    /// Report success now but defer the credential change to `exec`,
    /// restricted as recorded.
    Pending(PendingSetuid),
    /// The kernel must run the trusted authentication utility for this
    /// scope, then re-invoke the hook.
    NeedAuth(AuthScope),
}

/// Environment sanitization applied across a privilege transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnvPolicy {
    /// Keep the environment unchanged.
    KeepAll,
    /// Drop everything except the named variables (plus a minimal safe
    /// base the kernel always preserves: PATH, TERM, HOME recomputed).
    ClearExcept(Vec<String>),
}

/// Outcome of the exec-time (`bprm_check`) hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecDecision {
    /// Stock behaviour: honour the setuid/setgid bits.
    UseDefault,
    /// Refuse the exec.
    Deny(Errno),
    /// Run the binary with explicit credentials and environment policy
    /// computed by the module (resolving a pending transition, refusing the
    /// setuid bit, etc.).
    Transition {
        /// Credentials to install for the new program image.
        cred: Credentials,
        /// Environment sanitization.
        env: EnvPolicy,
    },
    /// Authenticate, then re-invoke the hook.
    NeedAuth(AuthScope),
}

/// Outcome of the file-open hook.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileDecision {
    /// Stock DAC result stands.
    UseDefault,
    /// Grant regardless of DAC.
    Allow,
    /// Refuse.
    Deny(Errno),
    /// Authenticate, then re-invoke (Protego's shadow-file reauth, §4.4).
    NeedAuth(AuthScope),
    /// Grant, but force close-on-exec so the handle cannot be inherited
    /// (Protego's shadow-file handles).
    AllowCloexec,
}

/// Context for the mount hook.
#[derive(Clone, Debug)]
pub struct MountRequest {
    /// Source device or pseudo-fs.
    pub source: String,
    /// Normalized mountpoint path.
    pub target: String,
    /// Filesystem type.
    pub fstype: String,
    /// Parsed options.
    pub options: MountOptions,
}

/// Context for the umount hook.
#[derive(Clone, Debug)]
pub struct UmountRequest {
    /// Mountpoint being detached.
    pub target: String,
    /// The mount's source device.
    pub source: String,
    /// Filesystem type of the mount.
    pub fstype: String,
    /// Who mounted it.
    pub mounted_by: Uid,
}

/// Context for the bind hook.
#[derive(Clone, Debug)]
pub struct BindRequest {
    /// Requested port.
    pub port: u16,
    /// Path of the binary performing the bind — Protego's application
    /// instance identity (binary, uid).
    pub binary: String,
    /// Whether this is TCP (else UDP).
    pub tcp: bool,
}

/// Context for the setuid/setgid hooks. Borrows the caller's credentials
/// and binary path straight from the task table, so building one is free
/// — the setuid/setgid fast path (every `id`-style re-assert of an
/// already-held gid) performs no clones.
#[derive(Clone, Copy, Debug)]
pub struct SetidCtx<'a> {
    /// Calling task's credentials.
    pub cred: &'a Credentials,
    /// Path of the binary the task is running.
    pub binary: &'a str,
    /// Logical time of the task's last successful authentication.
    pub last_auth: Option<u64>,
    /// Principal that authentication proved.
    pub last_auth_scope: Option<AuthScope>,
    /// Current logical time.
    pub now: u64,
}

impl SetidCtx<'_> {
    /// Whether the task proved `scope` within `window` seconds.
    pub fn authed_for(&self, scope: AuthScope, window: u64) -> bool {
        self.last_auth_scope == Some(scope)
            && self
                .last_auth
                .map(|t| self.now.saturating_sub(t) <= window)
                .unwrap_or(false)
    }
}

/// Context for the exec hook.
#[derive(Clone, Debug)]
pub struct ExecCtx {
    /// Credentials before the exec.
    pub cred: Credentials,
    /// Resolved path of the binary being executed.
    pub binary: String,
    /// Owner of the binary's inode.
    pub file_owner: Uid,
    /// Group of the binary's inode.
    pub file_group: Gid,
    /// Whether the inode carries the setuid bit (and the mount allows it).
    pub setuid_bit: bool,
    /// Whether the inode carries the setgid bit.
    pub setgid_bit: bool,
    /// Pending restricted transition recorded at `setuid` time.
    pub pending: Option<PendingSetuid>,
    /// Logical time of last authentication.
    pub last_auth: Option<u64>,
    /// Principal that authentication proved.
    pub last_auth_scope: Option<AuthScope>,
    /// Current logical time.
    pub now: u64,
}

impl ExecCtx {
    /// Whether the task proved `scope` within `window` seconds.
    pub fn authed_for(&self, scope: AuthScope, window: u64) -> bool {
        self.last_auth_scope == Some(scope)
            && self
                .last_auth
                .map(|t| self.now.saturating_sub(t) <= window)
                .unwrap_or(false)
    }
}

/// Context for the file-open hook. Borrows the caller's credentials and
/// paths straight from the task table (like [`SetidCtx`]), so building
/// one on the open fast path clones nothing — `Credentials` owns a
/// supplementary-groups `Vec`, which made the old owned form allocate on
/// every open.
#[derive(Clone, Copy, Debug)]
pub struct FileOpenCtx<'a> {
    /// Caller credentials.
    pub cred: &'a Credentials,
    /// Absolute path being opened.
    pub path: &'a str,
    /// Binary performing the open (for binary-identity policies such as
    /// ssh-keysign's host-key access).
    pub binary: &'a str,
    /// Requested access.
    pub access: Access,
    /// Whether stock DAC would allow the access.
    pub dac_allows: bool,
    /// Owner of the inode being opened.
    pub file_owner: Uid,
    /// Last authentication time of the task.
    pub last_auth: Option<u64>,
    /// Principal that authentication proved.
    pub last_auth_scope: Option<AuthScope>,
    /// Current logical time.
    pub now: u64,
}

impl FileOpenCtx<'_> {
    /// Whether the task proved `scope` within `window` seconds.
    pub fn authed_for(&self, scope: AuthScope, window: u64) -> bool {
        self.last_auth_scope == Some(scope)
            && self
                .last_auth
                .map(|t| self.now.saturating_sub(t) <= window)
                .unwrap_or(false)
    }
}

/// KMS / video ioctl operations (§4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KmsOp {
    /// Set resolution/refresh for the caller's own VT.
    SetMode {
        /// Width in pixels.
        width: u32,
        /// Height in pixels.
        height: u32,
        /// Refresh rate in Hz.
        refresh: u32,
    },
    /// Switch the active VT (kernel context-switches the card).
    VtSwitch {
        /// Target virtual terminal.
        vt: u32,
    },
    /// Program card registers directly (pre-KMS path; root-only).
    RawRegisterAccess,
}

/// The LSM hook surface. Default implementations fall through to the stock
/// kernel policy, so a module only overrides the interfaces it governs.
///
/// Hooks take `&self`; module policy state is mutated only through
/// [`SecurityModule::config_write`] (the `/proc` interface) — mirroring how
/// Protego's LSM is configured by the monitoring daemon in Figure 1.
///
/// `Send + Sync` because the kernel is shared across worker threads:
/// hooks run concurrently, so a module keeps interior state behind locks
/// (or [`crate::sync::PerThread`] for per-dispatch scratch).
pub trait SecurityModule: Send + Sync {
    /// Module name (appears under `/proc/<name>/`).
    fn name(&self) -> &'static str;

    /// May `cred` exercise `cap`? `UseDefault` means "iff the credential
    /// holds the capability"; a module may deny (confinement) but should
    /// grant through the specific object hooks instead of here.
    fn capable(&self, _cred: &Credentials, _binary: &str, _cap: Cap) -> Decision {
        Decision::UseDefault
    }

    /// `mount(2)`.
    fn sb_mount(&self, _cred: &Credentials, _req: &MountRequest) -> Decision {
        Decision::UseDefault
    }

    /// `umount(2)`.
    fn sb_umount(&self, _cred: &Credentials, _req: &UmountRequest) -> Decision {
        Decision::UseDefault
    }

    /// `socket(2)`.
    fn socket_create(
        &self,
        _cred: &Credentials,
        _domain: Domain,
        _stype: SockType,
        _protocol: u8,
    ) -> Decision {
        Decision::UseDefault
    }

    /// `bind(2)` to a port below 1024.
    fn socket_bind(&self, _cred: &Credentials, _req: &BindRequest) -> Decision {
        Decision::UseDefault
    }

    /// `setuid(2)` family.
    fn task_setuid(&self, _ctx: &SetidCtx<'_>, _target: Uid) -> SetuidDecision {
        SetuidDecision::UseDefault
    }

    /// `setgid(2)` family.
    fn task_setgid(&self, _ctx: &SetidCtx<'_>, _target: Gid) -> SetuidDecision {
        SetuidDecision::UseDefault
    }

    /// `execve(2)` — both setuid-bit handling and pending-transition
    /// resolution.
    fn bprm_check(&self, _ctx: &ExecCtx) -> ExecDecision {
        ExecDecision::UseDefault
    }

    /// Route-table-changing ioctls (`SIOCADDRT`).
    fn ioctl_route_add(
        &self,
        _cred: &Credentials,
        _route: &Route,
        _table: &RouteTable,
    ) -> Decision {
        Decision::UseDefault
    }

    /// Modem-configuration ioctls on a tty/ppp device.
    fn ioctl_modem(&self, _cred: &Credentials, _opt: ModemOpt, _state: &ModemState) -> Decision {
        Decision::UseDefault
    }

    /// The dm-crypt metadata ioctl (discloses key material).
    fn ioctl_dmcrypt(&self, _cred: &Credentials) -> Decision {
        Decision::UseDefault
    }

    /// Video mode-setting and VT-switch operations.
    fn ioctl_kms(&self, _cred: &Credentials, _op: KmsOp) -> Decision {
        Decision::UseDefault
    }

    /// `open(2)` after DAC evaluation.
    fn file_open(&self, _ctx: &FileOpenCtx) -> FileDecision {
        FileDecision::UseDefault
    }

    /// Configuration files to expose under `/proc/<name>/`.
    fn config_nodes(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Handles a write to `/proc/<name>/<node>`. Only root may write
    /// (enforced by the kernel before calling).
    fn config_write(&mut self, _node: &str, _content: &str) -> KResult<()> {
        Err(Errno::ENOSYS)
    }

    /// Renders `/proc/<name>/<node>` for reading.
    fn config_read(&self, _node: &str) -> KResult<String> {
        Err(Errno::ENOSYS)
    }

    /// Netfilter rules the module installs at registration (Protego's
    /// raw-socket whitelist).
    fn boot_netfilter_rules(&self) -> Vec<Rule> {
        Vec::new()
    }

    /// Returns and clears the identifier of the policy rule the module's
    /// *most recent* hook decision matched, if it tracks one. The kernel
    /// drains this right after each hook call to attach rule provenance
    /// to the corresponding audit event. Hooks take `&self`, so modules
    /// implement this with interior mutability; the default tracks
    /// nothing.
    fn take_matched_rule(&self) -> Option<String> {
        None
    }

    /// Hit/miss/invalidation counters for the module's internal policy
    /// caches (compiled-profile lookup tables and the like), keyed by a
    /// stable cache name. The kernel folds these into the
    /// `/proc/<name>/metrics` view next to the VFS dcache counters; the
    /// default reports no caches.
    fn cache_stats(&self) -> Vec<(&'static str, crate::trace::CacheStats)> {
        Vec::new()
    }
}

/// Decorator that brackets every hook of the wrapped module with a
/// [`mod@crate::trace::span`], feeding the per-hook latency histograms.
/// `Kernel::register_lsm` wraps every registered module in one of these,
/// so all `SecurityModule` implementations are timed uniformly without
/// touching any call site. Pass-through methods (`name`,
/// `take_matched_rule`, `cache_stats`) are not spanned: they are
/// bookkeeping, not policy evaluation.
pub struct TimedLsm {
    inner: Box<dyn SecurityModule>,
}

impl TimedLsm {
    /// Wraps `inner` so every hook invocation is timed.
    pub fn new(inner: Box<dyn SecurityModule>) -> TimedLsm {
        TimedLsm { inner }
    }
}

impl SecurityModule for TimedLsm {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capable(&self, cred: &Credentials, binary: &str, cap: Cap) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmCapable);
        self.inner.capable(cred, binary, cap)
    }

    fn sb_mount(&self, cred: &Credentials, req: &MountRequest) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmSbMount);
        self.inner.sb_mount(cred, req)
    }

    fn sb_umount(&self, cred: &Credentials, req: &UmountRequest) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmSbUmount);
        self.inner.sb_umount(cred, req)
    }

    fn socket_create(
        &self,
        cred: &Credentials,
        domain: Domain,
        stype: SockType,
        protocol: u8,
    ) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmSocketCreate);
        self.inner.socket_create(cred, domain, stype, protocol)
    }

    fn socket_bind(&self, cred: &Credentials, req: &BindRequest) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmSocketBind);
        self.inner.socket_bind(cred, req)
    }

    fn task_setuid(&self, ctx: &SetidCtx<'_>, target: Uid) -> SetuidDecision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmTaskSetuid);
        self.inner.task_setuid(ctx, target)
    }

    fn task_setgid(&self, ctx: &SetidCtx<'_>, target: Gid) -> SetuidDecision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmTaskSetgid);
        self.inner.task_setgid(ctx, target)
    }

    fn bprm_check(&self, ctx: &ExecCtx) -> ExecDecision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmBprmCheck);
        self.inner.bprm_check(ctx)
    }

    fn ioctl_route_add(&self, cred: &Credentials, route: &Route, table: &RouteTable) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmIoctl);
        self.inner.ioctl_route_add(cred, route, table)
    }

    fn ioctl_modem(&self, cred: &Credentials, opt: ModemOpt, state: &ModemState) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmIoctl);
        self.inner.ioctl_modem(cred, opt, state)
    }

    fn ioctl_dmcrypt(&self, cred: &Credentials) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmIoctl);
        self.inner.ioctl_dmcrypt(cred)
    }

    fn ioctl_kms(&self, cred: &Credentials, op: KmsOp) -> Decision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmIoctl);
        self.inner.ioctl_kms(cred, op)
    }

    fn file_open(&self, ctx: &FileOpenCtx) -> FileDecision {
        let _span = crate::trace::span(crate::trace::Pathway::LsmFileOpen);
        self.inner.file_open(ctx)
    }

    fn config_nodes(&self) -> Vec<&'static str> {
        self.inner.config_nodes()
    }

    fn config_write(&mut self, node: &str, content: &str) -> KResult<()> {
        let _span = crate::trace::span(crate::trace::Pathway::LsmConfig);
        self.inner.config_write(node, content)
    }

    fn config_read(&self, node: &str) -> KResult<String> {
        let _span = crate::trace::span(crate::trace::Pathway::LsmConfig);
        self.inner.config_read(node)
    }

    fn boot_netfilter_rules(&self) -> Vec<Rule> {
        let _span = crate::trace::span(crate::trace::Pathway::LsmNetfilter);
        self.inner.boot_netfilter_rules()
    }

    fn take_matched_rule(&self) -> Option<String> {
        self.inner.take_matched_rule()
    }

    fn cache_stats(&self) -> Vec<(&'static str, crate::trace::CacheStats)> {
        self.inner.cache_stats()
    }
}

/// A module that enforces nothing beyond stock Linux semantics; the
/// baseline when no LSM is registered.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullLsm;

impl SecurityModule for NullLsm {
    fn name(&self) -> &'static str {
        "null"
    }
}

/// Trusted agent that can prove a user's (or group's) identity by
/// interacting with the task's terminal. Registered on the kernel at boot;
/// the `userland` crate provides the real implementation refactored from
/// `login` (the paper's 1200-line authentication utility).
///
/// `Send` because the kernel owning it is shared across worker threads;
/// the kernel serializes authentication under one mutex, so `&mut self`
/// stays and `Sync` is not required.
pub trait AuthProvider: Send {
    /// Attempts authentication for `scope` by consuming password attempts
    /// from `terminal_input` and checking them against the credential
    /// databases stored in the (trusted, read-only here) filesystem view.
    fn authenticate(
        &mut self,
        scope: AuthScope,
        terminal_input: &mut std::collections::VecDeque<String>,
        vfs: &crate::vfs::Vfs,
    ) -> bool;
}

/// Simple password-hash function used by the simulation's credential
/// databases. **Not** cryptographically secure — deterministic FNV-style
/// hashing keeps the end-to-end flows testable without a crypto
/// dependency; the paper's flows are agnostic to the hash.
pub fn sim_crypt(salt: &str, password: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in salt.bytes().chain(password.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("$sim${}${:016x}", salt, h)
}

/// Verifies a password against a `sim_crypt` hash string.
pub fn sim_crypt_verify(hash: &str, password: &str) -> bool {
    let mut parts = hash.split('$');
    let (Some(""), Some("sim"), Some(salt), Some(_)) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return false;
    };
    sim_crypt(salt, password) == hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_lsm_defaults() {
        let lsm = NullLsm;
        assert_eq!(lsm.name(), "null");
        let cred = Credentials::user(Uid(1000), Gid(1000));
        assert_eq!(
            lsm.capable(&cred, "/bin/x", Cap::SysAdmin),
            Decision::UseDefault
        );
        assert_eq!(lsm.ioctl_dmcrypt(&cred), Decision::UseDefault);
        assert!(lsm.config_nodes().is_empty());
        assert_eq!(lsm.config_read("x").unwrap_err(), Errno::ENOSYS);
    }

    #[test]
    fn sim_crypt_roundtrip() {
        let h = sim_crypt("ab", "hunter2");
        assert!(sim_crypt_verify(&h, "hunter2"));
        assert!(!sim_crypt_verify(&h, "hunter3"));
        assert!(!sim_crypt_verify("garbage", "hunter2"));
        assert!(!sim_crypt_verify("$sim$ab$deadbeef", "hunter2"));
    }

    #[test]
    fn sim_crypt_salt_matters() {
        assert_ne!(sim_crypt("aa", "pw"), sim_crypt("bb", "pw"));
    }
}
