//! Small concurrency utilities shared by the kernel's interior-locked
//! subsystems.
//!
//! Everything here is built on `std::sync` only (the crate vendors no
//! locking dependencies). Two pieces live here:
//!
//! * poison-tolerant lock helpers ([`read`], [`write()`], [`lock`]) — a
//!   panicking worker thread must not wedge every other worker on a
//!   poisoned `std` lock, so all kernel subsystems acquire through these;
//! * [`PerThread`], a per-instance thread-local slot used where a value
//!   is logically *per (object, thread)* — e.g. the last-matched policy
//!   rule an LSM reports between a hook call and the kernel draining it,
//!   or a syscall meter's dispatch start time. Both are written and read
//!   within one dispatch on one thread, so thread-locality keeps them
//!   exact under concurrency without any locking.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires a read lock, recovering the guard if the lock was poisoned
/// by a panicking thread.
pub fn read<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquires a write lock, recovering the guard if the lock was poisoned.
pub fn write<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Acquires a mutex, recovering the guard if the lock was poisoned.
pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Process-unique id source for [`PerThread`] instances (and any other
/// subsystem that needs to key per-instance thread-local state).
pub fn unique_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static SLOTS: RefCell<HashMap<usize, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// A per-(instance, thread) storage slot.
///
/// Each `PerThread<T>` value owns a process-unique id; `with` resolves
/// the calling thread's copy of `T` (default-constructed on first use on
/// that thread) and passes it to the closure. Distinct instances and
/// distinct threads never observe each other's values.
#[derive(Debug)]
pub struct PerThread<T> {
    id: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Default + 'static> PerThread<T> {
    /// Creates a slot with a fresh process-unique identity.
    pub fn new() -> PerThread<T> {
        PerThread {
            id: unique_id(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `f` over this thread's copy of the value.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            let entry = slots
                .entry(self.id)
                .or_insert_with(|| Box::new(T::default()));
            let value = entry
                .downcast_mut::<T>()
                .expect("PerThread id collision with mismatched type");
            f(value)
        })
    }

    /// Replaces this thread's value, returning the previous one.
    pub fn replace(&self, value: T) -> T {
        self.with(|v| std::mem::replace(v, value))
    }

    /// Takes this thread's value, leaving the default.
    pub fn take(&self) -> T {
        self.with(std::mem::take)
    }
}

impl<T: Default + 'static> Default for PerThread<T> {
    fn default() -> Self {
        PerThread::new()
    }
}

/// Cloning creates an independent slot (per-thread state is scratch or
/// drained-immediately data, never shared identity).
impl<T: Default + 'static> Clone for PerThread<T> {
    fn clone(&self) -> Self {
        PerThread::new()
    }
}

/// A poison-tolerant `RwLock` wrapper for kernel subsystems that were
/// born single-threaded (`NetStack`, `Netfilter`, `RouteTable`,
/// `DeviceRegistry`). The wrapped type keeps its original `&self`/`&mut
/// self` API; callers take a scoped guard with [`Locked::read`] /
/// [`Locked::write`].
///
/// Lock discipline: guards are scope-local. Copy what you need out of the
/// guard and drop it before calling any other kernel method that may
/// take a lock — in particular the audit/emit paths and `capable()`.
#[derive(Debug, Default)]
pub struct Locked<T>(RwLock<T>);

impl<T> Locked<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Locked<T> {
        Locked(RwLock::new(value))
    }

    /// Takes a shared read guard (poison-tolerant).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        read(&self.0)
    }

    /// Takes an exclusive write guard (poison-tolerant).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        write(&self.0)
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_thread_is_per_instance() {
        let a: PerThread<u32> = PerThread::new();
        let b: PerThread<u32> = PerThread::new();
        a.with(|v| *v = 7);
        b.with(|v| *v = 9);
        assert_eq!(a.with(|v| *v), 7);
        assert_eq!(b.with(|v| *v), 9);
    }

    #[test]
    fn per_thread_is_per_thread() {
        let a: std::sync::Arc<PerThread<u32>> = std::sync::Arc::new(PerThread::new());
        a.with(|v| *v = 41);
        let a2 = std::sync::Arc::clone(&a);
        let other = std::thread::spawn(move || a2.with(|v| *v)).join().unwrap();
        // `clone` was not involved: same instance, fresh thread, default value.
        assert_eq!(other, 0);
        assert_eq!(a.with(|v| *v), 41);
    }

    #[test]
    fn replace_and_take() {
        let s: PerThread<Option<String>> = PerThread::new();
        assert_eq!(s.replace(Some("x".into())), None);
        assert_eq!(s.take(), Some("x".into()));
        assert_eq!(s.take(), None);
    }

    #[test]
    fn poison_recovery() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*lock(&m), 5);
    }
}
