//! Linux-style error numbers for the simulated syscall layer.
//!
//! Every simulated system call returns [`KResult`], mirroring the kernel
//! convention of returning `-errno`. The distinction between variants such
//! as [`Errno::EPERM`] (an operation requires privilege the caller lacks)
//! and [`Errno::EACCES`] (discretionary access control denied the request)
//! is preserved deliberately: several Protego behaviours are defined by
//! *which* errno an unprivileged caller observes.

use core::fmt;

/// Result type of every simulated system call.
pub type KResult<T> = Result<T, Errno>;

/// A subset of Linux `errno` values used by the simulated kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted (privilege check failed).
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// No such process.
    ESRCH,
    /// Interrupted system call.
    EINTR,
    /// I/O error.
    EIO,
    /// No such device or address.
    ENXIO,
    /// Bad file descriptor.
    EBADF,
    /// Try again (resource temporarily unavailable).
    EAGAIN,
    /// Out of memory.
    ENOMEM,
    /// Permission denied (DAC/MAC check failed).
    EACCES,
    /// Bad address.
    EFAULT,
    /// Device or resource busy.
    EBUSY,
    /// File exists.
    EEXIST,
    /// No such device.
    ENODEV,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files.
    EMFILE,
    /// Inappropriate ioctl for device.
    ENOTTY,
    /// File too large.
    EFBIG,
    /// No space left on device.
    ENOSPC,
    /// Read-only file system.
    EROFS,
    /// Too many links.
    EMLINK,
    /// Broken pipe.
    EPIPE,
    /// Directory not empty.
    ENOTEMPTY,
    /// Too many levels of symbolic links.
    ELOOP,
    /// File name too long.
    ENAMETOOLONG,
    /// Function not implemented.
    ENOSYS,
    /// Address already in use.
    EADDRINUSE,
    /// Cannot assign requested address.
    EADDRNOTAVAIL,
    /// Network is unreachable.
    ENETUNREACH,
    /// Connection refused.
    ECONNREFUSED,
    /// Connection reset by peer.
    ECONNRESET,
    /// Socket is not connected.
    ENOTCONN,
    /// Operation not supported.
    EOPNOTSUPP,
    /// Not a mount point or mount operation invalid.
    ENOTBLK,
    /// Authentication failure (simulated PAM); maps onto EACCES at the ABI
    /// boundary but kept distinct for test precision.
    EAUTH,
}

impl Errno {
    /// Returns the conventional negative integer value returned by the
    /// Linux syscall ABI for this error.
    pub fn as_neg_i32(self) -> i32 {
        -(self.as_errno_i32())
    }

    /// Returns the positive `errno` integer as defined by Linux on x86-64.
    pub fn as_errno_i32(self) -> i32 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::ESRCH => 3,
            Errno::EINTR => 4,
            Errno::EIO => 5,
            Errno::ENXIO => 6,
            Errno::EBADF => 9,
            Errno::EAGAIN => 11,
            Errno::ENOMEM => 12,
            Errno::EACCES => 13,
            Errno::EFAULT => 14,
            Errno::ENOTBLK => 15,
            Errno::EBUSY => 16,
            Errno::EEXIST => 17,
            Errno::ENODEV => 19,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::EMFILE => 24,
            Errno::ENOTTY => 25,
            Errno::EFBIG => 27,
            Errno::ENOSPC => 28,
            Errno::EROFS => 30,
            Errno::EMLINK => 31,
            Errno::EPIPE => 32,
            Errno::ENOTEMPTY => 39,
            Errno::ELOOP => 40,
            Errno::ENAMETOOLONG => 36,
            Errno::ENOSYS => 38,
            Errno::EADDRINUSE => 98,
            Errno::EADDRNOTAVAIL => 99,
            Errno::ENETUNREACH => 101,
            Errno::ECONNREFUSED => 111,
            Errno::ECONNRESET => 104,
            Errno::ENOTCONN => 107,
            Errno::EOPNOTSUPP => 95,
            Errno::EAUTH => 13,
        }
    }

    /// Short symbolic name, e.g. `"EPERM"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::ENXIO => "ENXIO",
            Errno::EBADF => "EBADF",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::EMFILE => "EMFILE",
            Errno::ENOTTY => "ENOTTY",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ELOOP => "ELOOP",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOSYS => "ENOSYS",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::EADDRNOTAVAIL => "EADDRNOTAVAIL",
            Errno::ENETUNREACH => "ENETUNREACH",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ENOTCONN => "ENOTCONN",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::ENOTBLK => "ENOTBLK",
            Errno::EAUTH => "EAUTH",
        }
    }

    /// Every variant, in declaration order — the iteration base for
    /// name-driven lookup.
    pub const ALL: [Errno; 37] = [
        Errno::EPERM,
        Errno::ENOENT,
        Errno::ESRCH,
        Errno::EINTR,
        Errno::EIO,
        Errno::ENXIO,
        Errno::EBADF,
        Errno::EAGAIN,
        Errno::ENOMEM,
        Errno::EACCES,
        Errno::EFAULT,
        Errno::EBUSY,
        Errno::EEXIST,
        Errno::ENODEV,
        Errno::ENOTDIR,
        Errno::EISDIR,
        Errno::EINVAL,
        Errno::EMFILE,
        Errno::ENOTTY,
        Errno::EFBIG,
        Errno::ENOSPC,
        Errno::EROFS,
        Errno::EMLINK,
        Errno::EPIPE,
        Errno::ENOTEMPTY,
        Errno::ELOOP,
        Errno::ENAMETOOLONG,
        Errno::ENOSYS,
        Errno::EADDRINUSE,
        Errno::EADDRNOTAVAIL,
        Errno::ENETUNREACH,
        Errno::ECONNREFUSED,
        Errno::ECONNRESET,
        Errno::ENOTCONN,
        Errno::EOPNOTSUPP,
        Errno::ENOTBLK,
        Errno::EAUTH,
    ];

    /// Inverse of [`Errno::name`]: resolves a symbolic name back to the
    /// variant, for deserializing scenario and corpus files.
    pub fn from_name(name: &str) -> Option<Errno> {
        Errno::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// Human-readable message corresponding to `strerror(3)`.
    pub fn message(self) -> &'static str {
        match self {
            Errno::EPERM => "Operation not permitted",
            Errno::ENOENT => "No such file or directory",
            Errno::ESRCH => "No such process",
            Errno::EINTR => "Interrupted system call",
            Errno::EIO => "Input/output error",
            Errno::ENXIO => "No such device or address",
            Errno::EBADF => "Bad file descriptor",
            Errno::EAGAIN => "Resource temporarily unavailable",
            Errno::ENOMEM => "Cannot allocate memory",
            Errno::EACCES => "Permission denied",
            Errno::EFAULT => "Bad address",
            Errno::EBUSY => "Device or resource busy",
            Errno::EEXIST => "File exists",
            Errno::ENODEV => "No such device",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::EINVAL => "Invalid argument",
            Errno::EMFILE => "Too many open files",
            Errno::ENOTTY => "Inappropriate ioctl for device",
            Errno::EFBIG => "File too large",
            Errno::ENOSPC => "No space left on device",
            Errno::EROFS => "Read-only file system",
            Errno::EMLINK => "Too many links",
            Errno::EPIPE => "Broken pipe",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ELOOP => "Too many levels of symbolic links",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::ENOSYS => "Function not implemented",
            Errno::EADDRINUSE => "Address already in use",
            Errno::EADDRNOTAVAIL => "Cannot assign requested address",
            Errno::ENETUNREACH => "Network is unreachable",
            Errno::ECONNREFUSED => "Connection refused",
            Errno::ECONNRESET => "Connection reset by peer",
            Errno::ENOTCONN => "Transport endpoint is not connected",
            Errno::EOPNOTSUPP => "Operation not supported",
            Errno::ENOTBLK => "Block device required",
            Errno::EAUTH => "Authentication failure",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.message())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_values_match_linux_abi() {
        assert_eq!(Errno::EPERM.as_errno_i32(), 1);
        assert_eq!(Errno::ENOENT.as_errno_i32(), 2);
        assert_eq!(Errno::EACCES.as_errno_i32(), 13);
        assert_eq!(Errno::EINVAL.as_errno_i32(), 22);
        assert_eq!(Errno::EADDRINUSE.as_errno_i32(), 98);
    }

    #[test]
    fn negative_convention() {
        assert_eq!(Errno::EPERM.as_neg_i32(), -1);
        assert_eq!(Errno::EBUSY.as_neg_i32(), -16);
    }

    #[test]
    fn eauth_aliases_eacces_at_abi() {
        assert_eq!(Errno::EAUTH.as_errno_i32(), Errno::EACCES.as_errno_i32());
        assert_ne!(Errno::EAUTH, Errno::EACCES);
    }

    #[test]
    fn display_includes_name_and_message() {
        let s = Errno::EPERM.to_string();
        assert!(s.contains("EPERM"));
        assert!(s.contains("Operation not permitted"));
    }
}
