//! Global path-component interner.
//!
//! Every directory-entry name, dcache key, and policy-rule literal in the
//! simulator flows through here exactly once; afterwards it is a [`Name`]
//! — a `Copy` 4-byte symbol that compares, hashes, and orders as an
//! integer. Resolving a symbol back to its text is an O(1) indexed read
//! returning `&'static str` (interned strings are leaked; the table only
//! ever grows, which is the standard process-lifetime interner trade-off
//! and is documented in DESIGN.md §14).
//!
//! Layout: insertions are striped across `NSTRIPES` `RwLock`ed hash
//! maps selected by the name's hash, so concurrent interning from many
//! worker threads contends only when two threads race on names in the
//! same stripe. The resolve-back table is a separate `RwLock<Vec>`;
//! stripe → table is the only compound acquisition (on the insert miss
//! path) and both are leaf locks with respect to the VFS hierarchy in
//! DESIGN.md §13, so no cycle is possible.
//!
//! The fast path (`Name::lookup`, used by the dcache probe and the glob
//! literal matcher) takes one shared stripe lock and allocates nothing.
//! A probe miss is authoritative: a string that was never interned cannot
//! equal any interned name, so callers may treat `lookup() == None` as
//! "not equal to any symbol" without a string-compare fallback.

use crate::sync;
use crate::trace::{span, CacheStats, Pathway};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of insert stripes. Power of two so stripe selection is a mask.
const NSTRIPES: usize = 16;

/// An interned path component (or other short kernel string).
///
/// `Name`s are process-global: the same text always yields the same
/// symbol, so equality, hashing, and `Ord` are integer operations. The
/// ordering is **insertion order, not lexicographic** — callers that
/// present names to userland sorted (e.g. `readdir`) must resolve and
/// sort the strings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Name(u32);

impl Name {
    /// Interns `s`, returning its symbol (allocates only on first sight).
    pub fn intern(s: &str) -> Name {
        interner().intern(s)
    }

    /// Probes for an existing symbol without inserting. `None` means `s`
    /// was never interned — and therefore equals no interned name.
    pub fn lookup(s: &str) -> Option<Name> {
        interner().lookup(s)
    }

    /// The interned text. O(1): one shared lock and an indexed read.
    pub fn as_str(self) -> &'static str {
        interner().resolve(self.0)
    }
}

impl std::fmt::Display for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Hit/miss counters for the interner, in the same [`CacheStats`] shape
/// the dcache and LSM lookup caches report through `/proc/<lsm>/metrics`.
/// A "hit" is an intern or probe that found an existing symbol; a "miss"
/// is a fresh insertion or a failed probe. Invalidations are structurally
/// impossible (symbols are immortal) and stay 0.
pub fn stats() -> CacheStats {
    let i = interner();
    CacheStats {
        hits: i.hits.load(Ordering::Relaxed),
        misses: i.misses.load(Ordering::Relaxed),
        invalidations: 0,
    }
}

struct Interner {
    stripes: [RwLock<HashMap<&'static str, u32>>; NSTRIPES],
    names: RwLock<Vec<&'static str>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn interner() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        stripes: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        names: RwLock::new(Vec::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

fn stripe_of(s: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    (h.finish() as usize) & (NSTRIPES - 1)
}

impl Interner {
    fn intern(&self, s: &str) -> Name {
        let stripe = &self.stripes[stripe_of(s)];
        if let Some(&id) = sync::read(stripe).get(s) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Name(id);
        }
        // Miss path: leak the text, append to the resolve-back table,
        // publish in the stripe. Lock order: stripe, then names.
        let _span = span(Pathway::Intern);
        let mut map = sync::write(stripe);
        if let Some(&id) = map.get(s) {
            // Another thread inserted between our probe and the write lock.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Name(id);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut names = sync::write(&self.names);
        let id = u32::try_from(names.len()).expect("interner symbol space exhausted");
        names.push(leaked);
        drop(names);
        map.insert(leaked, id);
        Name(id)
    }

    fn lookup(&self, s: &str) -> Option<Name> {
        let found = sync::read(&self.stripes[stripe_of(s)]).get(s).copied();
        match found {
            Some(id) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Name(id))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn resolve(&self, id: u32) -> &'static str {
        sync::read(&self.names)[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves_back() {
        let a = Name::intern("passwd");
        let b = Name::intern("passwd");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "passwd");
        assert_eq!(format!("{a}"), "passwd");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let a = Name::intern("intern-test-alpha");
        let b = Name::intern("intern-test-beta");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "intern-test-alpha");
        assert_eq!(b.as_str(), "intern-test-beta");
    }

    #[test]
    fn lookup_probes_without_inserting() {
        assert_eq!(Name::lookup("intern-test-never-inserted-xyzzy"), None);
        let n = Name::intern("intern-test-probe");
        assert_eq!(Name::lookup("intern-test-probe"), Some(n));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        Name::intern("intern-test-stats-fresh-1");
        Name::intern("intern-test-stats-fresh-1");
        let after = stats();
        assert!(after.misses > before.misses, "fresh insert counts a miss");
        assert!(after.hits > before.hits, "re-intern counts a hit");
        assert_eq!(after.invalidations, 0);
    }
}
