//! The virtual filesystem: inode arena, path resolution, and mount table.
//!
//! This module is pure *mechanism*. Permission checks (DAC, capabilities,
//! LSM hooks) are applied by the syscall layer in [`crate::kernel`]; the
//! functions here resolve paths, manage directory trees, and maintain the
//! mount table, mirroring the split between `fs/namei.c` and the
//! `security_*` hook callers in Linux.
//!
//! # Concurrency
//!
//! Since the shared-kernel refactor every method takes `&self`: the inode
//! arena is sharded across [`NSHARDS`] `RwLock`s (shard = ino mod
//! [`NSHARDS`], so a directory and the files allocated under it land in
//! different shards and independent subtrees don't contend), the dcache is
//! hash-sharded `Mutex`es with a generation-stamped lazy flush, the mount
//! table is a small `RwLock` snapshot-cloned per uncached walk, and the
//! counters (`change_seq`, `namespace_gen`) are atomics.
//!
//! Lock discipline (see DESIGN.md §13):
//! * at most one inode-shard guard is held at a time, except through
//!   [`Vfs::with_pair`] which orders by shard index;
//! * the allocator mutex is never held while taking a shard lock
//!   (`alloc` reserves the ino, drops the mutex, then writes the shard;
//!   reclaim pushes to the free list *while* holding the shard guard,
//!   which is safe because no path acquires alloc → shard);
//! * cross-directory `rename` serializes on a dedicated mutex — only
//!   rename can move a directory, so the ancestor cycle-walk is sound
//!   under that lock alone.

use super::arena::PathArena;
use super::inode::{Access, Ino, Inode, InodeData, Mode, ProcHook};
use super::intern::Name;
use crate::cred::{Gid, Uid};
use crate::error::{Errno, KResult};
use crate::sync;
use crate::trace::CacheStats;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Maximum symlink expansions during one path walk (Linux uses 40).
const MAX_SYMLINK_DEPTH: usize = 16;

/// Number of inode-arena shards. An inode lives in shard `ino % NSHARDS`,
/// so consecutively allocated inodes (a directory and its children)
/// scatter across shards and parallel walks of independent subtrees
/// rarely touch the same lock.
const NSHARDS: usize = 64;

/// Number of dcache shards (hash of the lookup key picks one).
const DSHARDS: usize = 16;

/// Bound on cached resolutions; a dcache shard is flushed wholesale when
/// it fills (a simulation stand-in for the kernel's LRU shrinker).
const DCACHE_CAPACITY: usize = 4096;

const fn shard_of(ino: Ino) -> usize {
    ino.0 % NSHARDS
}

const fn slot_of(ino: Ino) -> usize {
    ino.0 / NSHARDS
}

/// One shard of the generation-stamped dentry cache fronting
/// [`Vfs::resolve`].
///
/// Entries are keyed by (starting directory, raw path string, follow-last
/// flag) and are valid only for the namespace generation they were stored
/// under: any mutation of the tree or mount table bumps
/// [`Vfs::namespace_generation`], and the next lookup in each shard
/// flushes its map lazily. This mirrors how the real dcache leans on
/// d_seq/mount generations rather than tracking per-entry dependencies.
#[derive(Debug, Default)]
struct DcacheShard {
    map: HashMap<(Ino, bool), HashMap<Name, Resolved>>,
    entries: usize,
    gen: u64,
    stats: CacheStats,
}

/// Inode id allocator: free-list of reclaimed slots plus the
/// next-never-used id.
#[derive(Debug)]
struct AllocState {
    free: Vec<Ino>,
    next: usize,
}

/// Parsed mount options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MountOptions {
    /// Mount read-only.
    pub read_only: bool,
    /// Ignore setuid/setgid bits on this mount.
    pub nosuid: bool,
    /// Disallow device nodes.
    pub nodev: bool,
    /// Disallow executing binaries.
    pub noexec: bool,
    /// Unrecognized option strings, preserved verbatim.
    pub extra: Vec<String>,
}

impl MountOptions {
    /// Parses a comma-separated option string (`"ro,nosuid,nodev"`).
    pub fn parse(s: &str) -> MountOptions {
        let mut o = MountOptions::default();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "ro" => o.read_only = true,
                "rw" => o.read_only = false,
                "nosuid" => o.nosuid = true,
                "suid" => o.nosuid = false,
                "nodev" => o.nodev = true,
                "dev" => o.nodev = false,
                "noexec" => o.noexec = true,
                "exec" => o.noexec = false,
                "defaults" => {}
                other => o.extra.push(other.to_string()),
            }
        }
        o
    }

    /// Renders the options back to a canonical comma-separated string.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(if self.read_only { "ro" } else { "rw" }.to_string());
        if self.nosuid {
            parts.push("nosuid".into());
        }
        if self.nodev {
            parts.push("nodev".into());
        }
        if self.noexec {
            parts.push("noexec".into());
        }
        parts.extend(self.extra.iter().cloned());
        parts.join(",")
    }
}

/// A mounted filesystem instance.
#[derive(Clone, Debug)]
pub struct Mount {
    /// Unique id, monotonically assigned.
    pub id: u64,
    /// Source device or pseudo-fs name (`/dev/cdrom`, `proc`).
    pub source: String,
    /// Normalized absolute mountpoint path.
    pub mountpoint: String,
    /// Filesystem type (`iso9660`, `vfat`, `proc`, ...).
    pub fstype: String,
    /// Active options.
    pub options: MountOptions,
    /// Root inode of the mounted tree.
    pub root: Ino,
    /// The directory inode this mount covers.
    pub covered: Ino,
    /// Real uid of the mounting user (recorded for user-umount policy).
    pub mounted_by: Uid,
}

/// Directories traversed during one resolution, inline up to
/// `DIR_INLINE` deep so the common walk — and cloning a dcache hit —
/// never touches the heap. Deeper walks spill to a `Vec`.
#[derive(Clone, Debug)]
pub struct DirChain {
    inline: [Ino; DIR_INLINE],
    len: usize,
    spill: Vec<Ino>,
}

/// Inline capacity of a [`DirChain`]; covers any realistic path depth.
const DIR_INLINE: usize = 12;

impl DirChain {
    /// An empty chain (no allocation).
    pub fn new() -> DirChain {
        DirChain {
            inline: [Ino(0); DIR_INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends a directory to the chain.
    pub fn push(&mut self, ino: Ino) {
        if self.len < DIR_INLINE {
            self.inline[self.len] = ino;
        } else {
            self.spill.push(ino);
        }
        self.len += 1;
    }

    /// Number of directories recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the directories in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = Ino> + '_ {
        self.inline[..self.len.min(DIR_INLINE)]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

impl Default for DirChain {
    fn default() -> Self {
        DirChain::new()
    }
}

/// Outcome of a full path resolution.
#[derive(Clone, Debug)]
pub struct Resolved {
    /// The final inode.
    pub ino: Ino,
    /// Every directory inode traversed (for search-permission checks),
    /// excluding the final inode.
    pub dirs: DirChain,
}

/// Shared (read) access to a single inode; derefs to [`Inode`].
///
/// Holds the inode's shard read-locked — drop it before acquiring any
/// other inode guard (the arena discipline is one guard at a time).
pub struct InodeRef<'a> {
    shard: RwLockReadGuard<'a, Vec<Inode>>,
    slot: usize,
}

impl std::ops::Deref for InodeRef<'_> {
    type Target = Inode;
    fn deref(&self) -> &Inode {
        &self.shard[self.slot]
    }
}

/// Exclusive (write) access to a single inode; derefs to [`Inode`].
///
/// Same single-guard discipline as [`InodeRef`]. Callers that change
/// content or metadata must call [`Vfs::touch`] (after dropping the
/// guard) so watchers observe the change.
pub struct InodeMut<'a> {
    shard: RwLockWriteGuard<'a, Vec<Inode>>,
    slot: usize,
}

impl std::ops::Deref for InodeMut<'_> {
    type Target = Inode;
    fn deref(&self) -> &Inode {
        &self.shard[self.slot]
    }
}

impl std::ops::DerefMut for InodeMut<'_> {
    fn deref_mut(&mut self) -> &mut Inode {
        &mut self.shard[self.slot]
    }
}

/// The virtual filesystem state.
#[derive(Debug)]
pub struct Vfs {
    /// Inode arena, sharded by `ino % NSHARDS`.
    shards: Vec<RwLock<Vec<Inode>>>,
    alloc: Mutex<AllocState>,
    root: Ino,
    mounts: RwLock<Vec<Mount>>,
    next_mount_id: AtomicU64,
    /// Global change sequence, bumped on every mutation; cheap poll target
    /// for the monitoring daemon. Read via [`Vfs::change_seq`].
    change_seq: AtomicU64,
    /// Namespace generation: bumped only on mutations that can change what
    /// a path resolves to (link/unlink/rename/mount/umount/chmod/chown),
    /// *not* on content writes — unlike `change_seq`, so file I/O does not
    /// thrash the dcache.
    namespace_gen: AtomicU64,
    dcache: Vec<Mutex<DcacheShard>>,
    dcache_enabled: AtomicBool,
    /// Serializes renames. Only rename re-parents a directory, so holding
    /// this lock makes the into-own-subtree ancestor walk race-free
    /// without locking the whole namespace.
    rename_lock: Mutex<()>,
}

fn placeholder_inode(ino: Ino) -> Inode {
    Inode {
        ino,
        parent: Ino(0),
        mode: Mode(0),
        uid: Uid::ROOT,
        gid: Gid::ROOT,
        data: InodeData::Regular(Vec::new()),
        version: 0,
        nlink: 0,
        opens: 0,
    }
}

fn mount_rooted_at_in(mounts: &[Mount], ino: Ino) -> Option<&Mount> {
    mounts.iter().rev().find(|m| m.root == ino)
}

fn mount_covering_in(mounts: &[Mount], ino: Ino) -> Option<&Mount> {
    mounts.iter().rev().find(|m| m.covered == ino)
}

fn follow_mounts_in(mounts: &[Mount], mut ino: Ino) -> Ino {
    // The guard bounds pathological self-covering stacks, which
    // `add_mount` rejects but which defensive code should not spin on.
    for _ in 0..mounts.len() + 1 {
        match mount_covering_in(mounts, ino) {
            Some(m) if m.root != ino => ino = m.root,
            _ => break,
        }
    }
    ino
}

impl Vfs {
    /// Creates a VFS with an empty root directory owned by root.
    pub fn new() -> Vfs {
        let root_inode = Inode {
            ino: Ino(0),
            parent: Ino(0),
            mode: Mode(0o755),
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            data: InodeData::Directory(BTreeMap::new()),
            version: 0,
            nlink: 2,
            opens: 0,
        };
        let mut shards: Vec<RwLock<Vec<Inode>>> = Vec::with_capacity(NSHARDS);
        for s in 0..NSHARDS {
            shards.push(RwLock::new(if s == 0 {
                vec![root_inode.clone()]
            } else {
                Vec::new()
            }));
        }
        Vfs {
            shards,
            alloc: Mutex::new(AllocState {
                free: Vec::new(),
                next: 1,
            }),
            root: Ino(0),
            mounts: RwLock::new(Vec::new()),
            next_mount_id: AtomicU64::new(1),
            change_seq: AtomicU64::new(0),
            namespace_gen: AtomicU64::new(0),
            dcache: (0..DSHARDS)
                .map(|_| Mutex::new(DcacheShard::default()))
                .collect(),
            dcache_enabled: AtomicBool::new(true),
            rename_lock: Mutex::new(()),
        }
    }

    /// The root directory inode.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Shared inode access. The returned guard read-locks the inode's
    /// shard; hold at most one inode guard at a time.
    pub fn inode(&self, ino: Ino) -> InodeRef<'_> {
        InodeRef {
            shard: sync::read(&self.shards[shard_of(ino)]),
            slot: slot_of(ino),
        }
    }

    /// Exclusive inode access. Callers that change content or metadata
    /// must call [`Vfs::touch`] so watchers observe the change.
    pub fn inode_mut(&self, ino: Ino) -> InodeMut<'_> {
        InodeMut {
            shard: sync::write(&self.shards[shard_of(ino)]),
            slot: slot_of(ino),
        }
    }

    /// Advances the change sequence, returning the new value.
    fn next_seq(&self) -> u64 {
        self.change_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current global change sequence (bumped on every mutation).
    pub fn change_seq(&self) -> u64 {
        self.change_seq.load(Ordering::Relaxed)
    }

    /// Records a modification of `ino` for change watchers.
    pub fn touch(&self, ino: Ino) {
        let seq = self.next_seq();
        self.inode_mut(ino).version = seq;
    }

    /// Allocates an inode, reusing a reclaimed slot when one is free.
    pub fn alloc(&self, parent: Ino, mode: Mode, uid: Uid, gid: Gid, data: InodeData) -> Ino {
        let nlink = if data.is_dir() { 2 } else { 1 };
        // Reserve the id first, then drop the allocator mutex before
        // touching the shard (alloc → shard is the forbidden order's
        // mirror image; see the module docs).
        let ino = {
            let mut a = sync::lock(&self.alloc);
            match a.free.pop() {
                Some(i) => i,
                None => {
                    let i = Ino(a.next);
                    a.next += 1;
                    i
                }
            }
        };
        let (s, slot) = (shard_of(ino), slot_of(ino));
        let mut g = sync::write(&self.shards[s]);
        // Two threads can reserve fresh ids in the same shard and arrive
        // out of order, so grow with placeholders up to our slot.
        while g.len() < slot {
            let pad = Ino(g.len() * NSHARDS + s);
            g.push(placeholder_inode(pad));
        }
        let inode = Inode {
            ino,
            parent,
            mode,
            uid,
            gid,
            data,
            version: 0,
            nlink,
            opens: 0,
        };
        if g.len() == slot {
            g.push(inode);
        } else {
            g[slot] = inode;
        }
        ino
    }

    /// Returns a freshly allocated but never-linked inode to the free
    /// list (a racing `dir_add` lost; nothing references it).
    fn dealloc_unlinked(&self, ino: Ino) {
        let mut g = self.inode_mut(ino);
        g.data = InodeData::Regular(Vec::new());
        g.nlink = 0;
        g.opens = 0;
        // Push while still holding the shard guard so no one can observe
        // a half-reset slot; shard → alloc is the sanctioned order.
        sync::lock(&self.alloc).free.push(ino);
    }

    /// Number of inode slots ever allocated (live + reclaimed).
    pub fn inode_count(&self) -> usize {
        sync::lock(&self.alloc).next
    }

    /// Inode slots currently sitting on the free list.
    pub fn reclaimed_slots(&self) -> Vec<Ino> {
        sync::lock(&self.alloc).free.clone()
    }

    /// Records that a file description opened `ino`.
    pub fn inc_open(&self, ino: Ino) {
        self.inode_mut(ino).opens += 1;
    }

    /// Records a close; reclaims the inode if it is also unlinked.
    pub fn dec_open(&self, ino: Ino) {
        let mut g = self.inode_mut(ino);
        g.opens = g.opens.saturating_sub(1);
        drop(g);
        self.maybe_reclaim(ino);
    }

    /// Reclaims an inode with no links and no opens. The root, mount
    /// roots, and hook nodes always keep a link, so only orphaned
    /// regular files/symlinks are recycled.
    fn maybe_reclaim(&self, ino: Ino) {
        if ino == self.root {
            return;
        }
        let mut g = self.inode_mut(ino);
        if g.nlink == 0 && g.opens == 0 && !matches!(g.data, InodeData::Directory(_)) {
            // Drop contents eagerly and remember the slot. The free-list
            // push happens under the shard guard (shard → alloc order) so
            // concurrent callers cannot double-free the slot.
            g.data = InodeData::Regular(Vec::new());
            sync::lock(&self.alloc).free.push(ino);
        }
    }

    /// Runs `f` with exclusive access to two *distinct* inodes at once —
    /// the only sanctioned way to hold two inode guards. Locks shards in
    /// ascending index order (or splits one shard's slice) so concurrent
    /// pairs cannot deadlock.
    fn with_pair<R>(&self, a: Ino, b: Ino, f: impl FnOnce(&mut Inode, &mut Inode) -> R) -> R {
        assert_ne!(a, b, "with_pair requires distinct inodes");
        let (sa, sb) = (shard_of(a), shard_of(b));
        if sa == sb {
            let mut g = sync::write(&self.shards[sa]);
            let (ia, ib) = (slot_of(a), slot_of(b));
            if ia < ib {
                let (left, right) = g.split_at_mut(ib);
                f(&mut left[ia], &mut right[0])
            } else {
                let (left, right) = g.split_at_mut(ia);
                f(&mut right[0], &mut left[ib])
            }
        } else if sa < sb {
            let mut ga = sync::write(&self.shards[sa]);
            let mut gb = sync::write(&self.shards[sb]);
            f(&mut ga[slot_of(a)], &mut gb[slot_of(b)])
        } else {
            let mut gb = sync::write(&self.shards[sb]);
            let mut ga = sync::write(&self.shards[sa]);
            f(&mut ga[slot_of(a)], &mut gb[slot_of(b)])
        }
    }

    // ------------------------------------------------------------------
    // Path handling
    // ------------------------------------------------------------------

    /// Iterates over normalized path components, resolving `.` lexically.
    /// `..` is preserved (it must be resolved against the directory tree,
    /// not lexically, to honour symlinks and mounts). Borrows from `path`
    /// and never allocates — this is the hot-path walker.
    pub fn component_iter(path: &str) -> impl Iterator<Item = &str> + '_ {
        path.split('/').filter(|c| !c.is_empty() && *c != ".")
    }

    // ------------------------------------------------------------------
    // Dentry cache
    // ------------------------------------------------------------------

    /// The current namespace generation. Any two `resolve` calls bracketing
    /// an unchanged generation see the same namespace.
    pub fn namespace_generation(&self) -> u64 {
        self.namespace_gen.load(Ordering::SeqCst)
    }

    /// Invalidates the dcache by advancing the namespace generation.
    /// Called from every mutation that can change a path's meaning.
    pub fn bump_namespace_gen(&self) {
        self.namespace_gen.fetch_add(1, Ordering::SeqCst);
    }

    /// Enables or disables the dcache (used by benches to measure the cold
    /// path). Disabling does not flush; re-enabled entries are still
    /// generation-checked.
    pub fn set_dcache_enabled(&self, on: bool) {
        self.dcache_enabled.store(on, Ordering::Relaxed);
    }

    /// Current dcache hit/miss/invalidation counters (summed over shards).
    pub fn dcache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.dcache {
            total.merge(&sync::lock(shard).stats);
        }
        total
    }

    fn dcache_shard_index(start: Ino, follow_last: bool, path: &str) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        start.0.hash(&mut h);
        follow_last.hash(&mut h);
        path.hash(&mut h);
        (h.finish() as usize) % DSHARDS
    }

    /// Snapshot of the mount table for one walk. Cloning an empty `Vec`
    /// does not allocate, so the common no-mounts case stays cheap.
    fn mounts_snapshot(&self) -> Vec<Mount> {
        sync::read(&self.mounts).clone()
    }

    /// Cache-fronted resolution. Looks up (start dir, path, follow-last) in
    /// the dcache shard after lazily flushing a stale generation; falls
    /// back to [`Vfs::resolve_inner`] and stores the result if the
    /// namespace did not move underneath the walk.
    fn resolve_cached(&self, cwd: Ino, path: &str, follow_last: bool) -> KResult<Resolved> {
        let _resolve_span = crate::trace::span(crate::trace::Pathway::VfsResolve);
        if !self.dcache_enabled.load(Ordering::Relaxed) {
            let mounts = self.mounts_snapshot();
            return self.resolve_inner(cwd, path, follow_last, 0, &mounts);
        }
        let start = if path.starts_with('/') {
            self.root
        } else {
            cwd
        };
        let shard_idx = Vfs::dcache_shard_index(start, follow_last, path);
        let gen_now = self.namespace_generation();
        {
            let _probe_span = crate::trace::span(crate::trace::Pathway::DcacheProbe);
            let mut dc = sync::lock(&self.dcache[shard_idx]);
            if dc.gen != gen_now {
                if dc.entries > 0 {
                    dc.stats.invalidations += 1;
                }
                dc.map.clear();
                dc.entries = 0;
                dc.gen = gen_now;
            }
            // The probe interns nothing: a path that was never interned
            // cannot have been inserted, so `Name::lookup` returning
            // `None` is itself the miss verdict. A hit clones a
            // `Resolved` whose `DirChain` is inline for realistic
            // depths, so the hit path stays allocation-free.
            if let Some(hit) = Name::lookup(path).and_then(|key| {
                dc.map
                    .get(&(start, follow_last))
                    .and_then(|paths| paths.get(&key))
            }) {
                let hit = hit.clone();
                dc.stats.hits += 1;
                return Ok(hit);
            }
            dc.stats.misses += 1;
        }
        let mounts = self.mounts_snapshot();
        let resolved = self.resolve_inner(cwd, path, follow_last, 0, &mounts)?;
        let key = Name::intern(path);
        let mut dc = sync::lock(&self.dcache[shard_idx]);
        // Insert only if the namespace generation is unchanged since the
        // probe: a walk that raced a mutation may have observed either
        // state, and the generation is monotonic, so a stale entry can
        // never be served (the next probe's gen check flushes it).
        if dc.gen == gen_now && self.namespace_generation() == gen_now {
            if dc.entries >= DCACHE_CAPACITY / DSHARDS {
                dc.map.clear();
                dc.entries = 0;
                dc.stats.invalidations += 1;
            }
            dc.map
                .entry((start, follow_last))
                .or_default()
                .insert(key, resolved.clone());
            dc.entries += 1;
        }
        Ok(resolved)
    }

    /// Returns the topmost mount covering directory `ino`, if any.
    pub fn mount_covering(&self, ino: Ino) -> Option<Mount> {
        mount_covering_in(&sync::read(&self.mounts), ino).cloned()
    }

    /// Returns the mount whose root is `ino`, if any.
    pub fn mount_rooted_at(&self, ino: Ino) -> Option<Mount> {
        mount_rooted_at_in(&sync::read(&self.mounts), ino).cloned()
    }

    /// Follows mounts stacked on a directory.
    fn follow_mounts(&self, ino: Ino) -> Ino {
        follow_mounts_in(&self.mounts_snapshot(), ino)
    }

    /// Resolves `path` (absolute, or relative to `cwd`) to an inode,
    /// following symlinks in every component including the last.
    pub fn resolve(&self, cwd: Ino, path: &str) -> KResult<Resolved> {
        self.resolve_cached(cwd, path, true)
    }

    /// Resolves `path` without following a symlink in the final component.
    pub fn resolve_nofollow(&self, cwd: Ino, path: &str) -> KResult<Resolved> {
        self.resolve_cached(cwd, path, false)
    }

    fn resolve_inner(
        &self,
        cwd: Ino,
        path: &str,
        follow_last: bool,
        depth: usize,
        mounts: &[Mount],
    ) -> KResult<Resolved> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::ELOOP);
        }
        if path.len() > 4096 {
            return Err(Errno::ENAMETOOLONG);
        }
        let mut cur = if path.starts_with('/') {
            follow_mounts_in(mounts, self.root)
        } else {
            cwd
        };
        let mut dirs = DirChain::new();
        let mut comps = Vfs::component_iter(path).peekable();
        if comps.peek().is_none() {
            return Ok(Resolved { ino: cur, dirs });
        }
        while let Some(comp) = comps.next() {
            let is_last = comps.peek().is_none();
            // One shard guard at a time: copy the entry and parent out,
            // then drop the guard before touching any other inode.
            // Entries are keyed by interned symbol; a `Name::lookup`
            // miss means the name was never interned anywhere, hence
            // certainly absent from this directory.
            let (entry, parent) = {
                let node = self.inode(cur);
                let entries = match node.dir_entries() {
                    Some(e) => e,
                    None => return Err(Errno::ENOTDIR),
                };
                let entry = Name::lookup(comp).and_then(|n| entries.get(&n)).copied();
                (entry, node.parent)
            };
            dirs.push(cur);
            let next = if comp == ".." {
                // At a mount root, `..` escapes to the covered directory's
                // parent.
                if let Some(m) = mount_rooted_at_in(mounts, cur) {
                    self.inode(m.covered).parent
                } else {
                    parent
                }
            } else {
                match entry {
                    Some(ino) => ino,
                    None => return Err(Errno::ENOENT),
                }
            };
            // Symlink expansion. (An inode's kind never changes while it
            // is live, so reading it in a fresh scope is race-free.)
            let sym_target = {
                match &self.inode(next).data {
                    InodeData::Symlink(t) => Some(t.clone()),
                    _ => None,
                }
            };
            if let Some(target) = sym_target {
                if is_last && !follow_last {
                    return Ok(Resolved { ino: next, dirs });
                }
                let sub = self.resolve_inner(cur, &target, true, depth + 1, mounts)?;
                for d in sub.dirs.iter() {
                    dirs.push(d);
                }
                let mut landed = sub.ino;
                if !is_last {
                    landed = follow_mounts_in(mounts, landed);
                    cur = landed;
                    continue;
                }
                let landed = if self.inode(landed).data.is_dir() {
                    follow_mounts_in(mounts, landed)
                } else {
                    landed
                };
                return Ok(Resolved { ino: landed, dirs });
            }
            // Mount traversal.
            let next = if self.inode(next).data.is_dir() {
                follow_mounts_in(mounts, next)
            } else {
                next
            };
            if is_last {
                return Ok(Resolved { ino: next, dirs });
            }
            cur = next;
        }
        unreachable!("loop returns on last component");
    }

    /// Resolves the parent directory of `path` and returns it with the
    /// final component name. Used by create/unlink-style operations.
    ///
    /// The parent prefix is borrowed straight out of `path` (no join), so
    /// the walk itself allocates nothing beyond the returned name.
    pub fn resolve_parent(&self, cwd: Ino, path: &str) -> KResult<(Resolved, String)> {
        // Locate the last normalized component and its byte offset.
        let mut last: Option<(usize, &str)> = None;
        let mut off = 0;
        for seg in path.split('/') {
            if !seg.is_empty() && seg != "." {
                last = Some((off, seg));
            }
            off += seg.len() + 1;
        }
        let (start, name) = last.ok_or(Errno::EINVAL)?;
        if name == ".." {
            return Err(Errno::EINVAL);
        }
        // `resolve("")` yields the start directory, which matches the old
        // behaviour of resolving "." for a bare relative name.
        let r = self.resolve(cwd, &path[..start])?;
        if !self.inode(r.ino).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok((r, name.to_string()))
    }

    /// Computes the absolute path of an inode by walking parents. Mount
    /// roots are translated through their covered directory. Allocating
    /// form of [`Vfs::path_of_in`] for diagnostics and `/proc/mounts`.
    pub fn path_of(&self, ino: Ino) -> String {
        PathArena::scope(|arena| self.path_of_in(arena, ino).to_string())
    }

    /// Computes the absolute path of an inode into an arena buffer,
    /// allocating no heap memory for realistic depths in steady state:
    /// entry names come back as interned `&'static str`s, the collected
    /// parent chain lives in an inline array, and the joined path reuses
    /// recycled arena capacity. This is the form the open fast path uses
    /// to hand the LSM an absolute path.
    pub fn path_of_in<'a>(&self, arena: &'a PathArena, ino: Ino) -> super::arena::ArenaString<'a> {
        /// Parent-chain parts kept inline; deeper trees spill (cold).
        const PARTS_INLINE: usize = 64;
        let mounts = self.mounts_snapshot();
        let mut cur = ino;
        let mut inline: [&str; PARTS_INLINE] = [""; PARTS_INLINE];
        let mut n = 0usize;
        let mut spill: Vec<&str> = Vec::new();
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 4096 {
                return arena.alloc_str("<cycle>");
            }
            if let Some(m) = mount_rooted_at_in(&mounts, cur) {
                cur = m.covered;
                continue;
            }
            if cur == self.root {
                break;
            }
            let parent = self.inode(cur).parent;
            let name: &str = {
                let p = self.inode(parent);
                match p
                    .dir_entries()
                    .and_then(|e| e.iter().find(|(_, &i)| i == cur).map(|(n, _)| *n))
                {
                    Some(found) => found.as_str(),
                    // Orphan diagnostic (cold): intern so the text gets
                    // the 'static lifetime the parts array needs.
                    None => Name::intern(&format!("<ino{}>", cur.0)).as_str(),
                }
            };
            if n < PARTS_INLINE {
                inline[n] = name;
            } else {
                spill.push(name);
            }
            n += 1;
            cur = parent;
        }
        // Parts were collected leaf-to-root; present them root-to-leaf.
        if spill.is_empty() {
            inline[..n].reverse();
            arena.join_path(&inline[..n])
        } else {
            let mut parts: Vec<&str> = Vec::with_capacity(n);
            parts.extend(inline[..PARTS_INLINE].iter().copied());
            parts.extend(spill.iter().copied());
            parts.reverse();
            arena.join_path(&parts)
        }
    }

    // ------------------------------------------------------------------
    // Directory operations (mechanism; callers check permissions)
    // ------------------------------------------------------------------

    /// Looks up a single name in a directory (no symlink/mount logic).
    pub fn dir_lookup(&self, dir: Ino, name: &str) -> KResult<Option<Ino>> {
        let d = self.inode(dir);
        let entries = d.dir_entries().ok_or(Errno::ENOTDIR)?;
        Ok(Name::lookup(name).and_then(|n| entries.get(&n)).copied())
    }

    /// Lists a directory's entry names in sorted order. (The entry map
    /// iterates in symbol order, so the resolved strings are re-sorted
    /// to preserve the lexicographic `readdir` contract.)
    pub fn dir_names(&self, dir: Ino) -> KResult<Vec<String>> {
        let d = self.inode(dir);
        let entries = d.dir_entries().ok_or(Errno::ENOTDIR)?;
        let mut names: Vec<String> = entries.keys().map(|n| n.as_str().to_string()).collect();
        names.sort();
        Ok(names)
    }

    /// Checks that `dir_add(dir, name, _)` would succeed, without
    /// mutating anything. Callers that allocate an inode before linking
    /// it in (`create_file`, `mkdir`, `symlink`) run this first so the
    /// common error paths never allocate; a concurrent loser of the
    /// precheck→add race deallocates instead (see `dealloc_unlinked`).
    fn dir_add_precheck(&self, dir: Ino, name: &str) -> KResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(Errno::EINVAL);
        }
        let d = self.inode(dir);
        let entries = d.dir_entries().ok_or(Errno::ENOTDIR)?;
        if let Some(n) = Name::lookup(name) {
            if entries.contains_key(&n) {
                return Err(Errno::EEXIST);
            }
        }
        Ok(())
    }

    /// Adds a directory entry, failing if the name exists.
    pub fn dir_add(&self, dir: Ino, name: &str, child: Ino) -> KResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(Errno::EINVAL);
        }
        // Kind is immutable for a live inode, so this pre-guard read
        // cannot go stale before the write below. Intern outside the
        // shard guard: interner locks are leaves, but there is no reason
        // to nest them under an inode lock.
        let key = Name::intern(name);
        let child_is_dir = child != dir && self.inode(child).data.is_dir();
        {
            let mut d = self.inode_mut(dir);
            let seq = self.next_seq();
            let node = &mut *d;
            let entries = match &mut node.data {
                InodeData::Directory(e) => e,
                _ => return Err(Errno::ENOTDIR),
            };
            if entries.contains_key(&key) {
                return Err(Errno::EEXIST);
            }
            entries.insert(key, child);
            if child_is_dir {
                node.nlink += 1;
            }
            node.version = seq;
        }
        self.bump_namespace_gen();
        Ok(())
    }

    /// Removes a directory entry, returning the unlinked inode number.
    ///
    /// Removing a *directory* entry requires the directory to be empty —
    /// this is checked here (atomically with the removal, both inodes
    /// locked), not just in [`Vfs::rmdir`], because this is a `pub` API
    /// and dropping a populated subtree to `nlink = 0` would orphan every
    /// inode under it.
    pub fn dir_remove(&self, dir: Ino, name: &str) -> KResult<Ino> {
        let (key, child) = {
            let d = self.inode(dir);
            let entries = d.dir_entries().ok_or(Errno::ENOTDIR)?;
            // A lookup miss is authoritative: a name that was never
            // interned cannot be a key in any directory.
            let key = Name::lookup(name).ok_or(Errno::ENOENT)?;
            (key, *entries.get(&key).ok_or(Errno::ENOENT)?)
        };
        if child == dir {
            // A self-entry means the directory is non-empty by definition.
            return Err(Errno::ENOTEMPTY);
        }
        self.with_pair(dir, child, |d, c| {
            let entries = match &mut d.data {
                InodeData::Directory(e) => e,
                _ => return Err(Errno::ENOTDIR),
            };
            // Re-check under the pair lock: the entry may have raced away.
            match entries.get(&key) {
                Some(&i) if i == child => {}
                _ => return Err(Errno::ENOENT),
            }
            if let Some(sub) = c.dir_entries() {
                if !sub.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
            }
            entries.remove(&key);
            if c.data.is_dir() {
                d.nlink -= 1;
                // The emptiness check above guarantees nothing is orphaned.
                c.nlink = 0;
            } else {
                c.nlink = c.nlink.saturating_sub(1);
            }
            d.version = self.next_seq();
            Ok(())
        })?;
        self.bump_namespace_gen();
        self.maybe_reclaim(child);
        Ok(child)
    }

    /// Creates a regular file; `exclusive` makes an existing name an error.
    pub fn create_file(
        &self,
        dir: Ino,
        name: &str,
        mode: Mode,
        uid: Uid,
        gid: Gid,
        exclusive: bool,
    ) -> KResult<Ino> {
        match self.dir_add_precheck(dir, name) {
            Ok(()) => {}
            Err(Errno::EEXIST) if !exclusive => {
                return self.dir_lookup(dir, name)?.ok_or(Errno::ENOENT);
            }
            Err(e) => return Err(e),
        }
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Regular(Vec::new()));
        match self.dir_add(dir, name, ino) {
            Ok(()) => Ok(ino),
            Err(e) => {
                self.dealloc_unlinked(ino);
                if e == Errno::EEXIST && !exclusive {
                    // Lost a create race; surface the winner.
                    self.dir_lookup(dir, name)?.ok_or(Errno::ENOENT)
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Creates a directory.
    pub fn mkdir(&self, dir: Ino, name: &str, mode: Mode, uid: Uid, gid: Gid) -> KResult<Ino> {
        self.dir_add_precheck(dir, name)?;
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Directory(BTreeMap::new()));
        match self.dir_add(dir, name, ino) {
            Ok(()) => Ok(ino),
            Err(e) => {
                // Directories are never reclaimed, but this one was never
                // linked, so returning the slot is safe.
                self.dealloc_unlinked(ino);
                Err(e)
            }
        }
    }

    /// Creates a symlink.
    pub fn symlink(&self, dir: Ino, name: &str, target: &str, uid: Uid, gid: Gid) -> KResult<Ino> {
        self.dir_add_precheck(dir, name)?;
        let ino = self.alloc(
            dir,
            Mode(0o777),
            uid,
            gid,
            InodeData::Symlink(target.to_string()),
        );
        match self.dir_add(dir, name, ino) {
            Ok(()) => Ok(ino),
            Err(e) => {
                self.dealloc_unlinked(ino);
                Err(e)
            }
        }
    }

    /// Removes a non-directory entry.
    pub fn unlink(&self, dir: Ino, name: &str) -> KResult<()> {
        let child = self.dir_lookup(dir, name)?.ok_or(Errno::ENOENT)?;
        if self.inode(child).data.is_dir() {
            return Err(Errno::EISDIR);
        }
        self.dir_remove(dir, name)?;
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, dir: Ino, name: &str) -> KResult<()> {
        let child = self.dir_lookup(dir, name)?.ok_or(Errno::ENOENT)?;
        match self.inode(child).dir_entries() {
            Some(e) if !e.is_empty() => return Err(Errno::ENOTEMPTY),
            Some(_) => {}
            None => return Err(Errno::ENOTDIR),
        }
        if self.mount_covering(child).is_some() {
            return Err(Errno::EBUSY);
        }
        self.dir_remove(dir, name)?;
        Ok(())
    }

    /// Renames an entry, overwriting a non-directory target if present —
    /// the atomic-replace primitive database rewriters rely on.
    ///
    /// All renames serialize on the dedicated rename mutex; since nothing else
    /// re-parents a directory, the cycle check below cannot race another
    /// mutation into creating a detached loop.
    pub fn rename(
        &self,
        from_dir: Ino,
        from_name: &str,
        to_dir: Ino,
        to_name: &str,
    ) -> KResult<()> {
        let _serial = sync::lock(&self.rename_lock);
        let src = self.dir_lookup(from_dir, from_name)?.ok_or(Errno::ENOENT)?;
        let src_is_dir = self.inode(src).data.is_dir();
        if src_is_dir {
            // Moving a directory under itself (or into itself) would
            // detach the subtree into an unreachable cycle: walk the
            // destination's parent chain and refuse if `src` shows up
            // anywhere on it (Linux returns EINVAL here).
            let mut cur = to_dir;
            let mut guard = 0usize;
            loop {
                if cur == src {
                    return Err(Errno::EINVAL);
                }
                guard += 1;
                if cur == self.root || guard > 4096 {
                    break;
                }
                cur = self.inode(cur).parent;
            }
        }
        if let Some(existing) = self.dir_lookup(to_dir, to_name)? {
            if existing == src {
                return Ok(());
            }
            if self.inode(existing).data.is_dir() {
                return Err(Errno::EISDIR);
            }
            self.dir_remove(to_dir, to_name)?;
        }
        // Move the entry without touching the inode's link count. The
        // source key must already be interned (the entry exists); the
        // destination name is interned fresh.
        let from_key = Name::lookup(from_name).ok_or(Errno::ENOENT)?;
        let to_key = Name::intern(to_name);
        if from_dir == to_dir {
            let mut d = self.inode_mut(from_dir);
            let seq = self.next_seq();
            let entries = match &mut d.data {
                InodeData::Directory(e) => e,
                _ => return Err(Errno::ENOTDIR),
            };
            match entries.get(&from_key) {
                Some(&i) if i == src => {}
                _ => return Err(Errno::ENOENT),
            }
            entries.remove(&from_key);
            entries.insert(to_key, src);
            d.version = seq;
        } else {
            self.with_pair(from_dir, to_dir, |f, t| {
                if !matches!(t.data, InodeData::Directory(_)) {
                    return Err(Errno::ENOTDIR);
                }
                let from_entries = match &mut f.data {
                    InodeData::Directory(e) => e,
                    _ => return Err(Errno::ENOTDIR),
                };
                match from_entries.get(&from_key) {
                    Some(&i) if i == src => {}
                    _ => return Err(Errno::ENOENT),
                }
                from_entries.remove(&from_key);
                if src_is_dir {
                    f.nlink -= 1;
                }
                f.version = self.next_seq();
                if let InodeData::Directory(to_entries) = &mut t.data {
                    to_entries.insert(to_key, src);
                }
                if src_is_dir {
                    t.nlink += 1;
                }
                t.version = self.next_seq();
                Ok(())
            })?;
        }
        {
            let mut s = self.inode_mut(src);
            let seq = self.next_seq();
            s.parent = to_dir;
            s.version = seq;
        }
        self.bump_namespace_gen();
        Ok(())
    }

    /// Creates a hard link to an existing inode.
    pub fn link(&self, dir: Ino, name: &str, target: Ino) -> KResult<()> {
        if self.inode(target).data.is_dir() {
            return Err(Errno::EPERM);
        }
        if name.is_empty() || name.contains('/') {
            return Err(Errno::EINVAL);
        }
        if dir == target {
            // `target` is a non-directory, so it cannot be the directory.
            return Err(Errno::ENOTDIR);
        }
        // Entry insertion and nlink bump must be atomic, or a concurrent
        // unlink of the old name could reclaim a still-referenced inode.
        let key = Name::intern(name);
        self.with_pair(dir, target, |d, t| {
            let entries = match &mut d.data {
                InodeData::Directory(e) => e,
                _ => return Err(Errno::ENOTDIR),
            };
            if entries.contains_key(&key) {
                return Err(Errno::EEXIST);
            }
            entries.insert(key, target);
            t.nlink += 1;
            d.version = self.next_seq();
            Ok(())
        })?;
        self.bump_namespace_gen();
        Ok(())
    }

    // ------------------------------------------------------------------
    // File content
    // ------------------------------------------------------------------

    /// Reads the full contents of a regular file.
    pub fn read_all(&self, ino: Ino) -> KResult<Vec<u8>> {
        self.with_file(ino, |d| d.to_vec())
    }

    /// Runs `f` over a regular file's contents without copying them out.
    /// The inode's shard stays read-locked for the duration of `f`.
    pub fn with_file<R>(&self, ino: Ino, f: impl FnOnce(&[u8]) -> R) -> KResult<R> {
        let g = self.inode(ino);
        match &g.data {
            InodeData::Regular(d) => Ok(f(d)),
            InodeData::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Replaces the contents of a regular file.
    pub fn write_all(&self, ino: Ino, data: &[u8]) -> KResult<()> {
        {
            let mut g = self.inode_mut(ino);
            let seq = self.next_seq();
            let node = &mut *g;
            match &mut node.data {
                InodeData::Regular(d) => {
                    d.clear();
                    d.extend_from_slice(data);
                }
                InodeData::Directory(_) => return Err(Errno::EISDIR),
                _ => return Err(Errno::EINVAL),
            }
            node.version = seq;
        }
        Ok(())
    }

    /// Appends to a regular file.
    pub fn append(&self, ino: Ino, data: &[u8]) -> KResult<()> {
        {
            let mut g = self.inode_mut(ino);
            let seq = self.next_seq();
            let node = &mut *g;
            match &mut node.data {
                InodeData::Regular(d) => d.extend_from_slice(data),
                InodeData::Directory(_) => return Err(Errno::EISDIR),
                _ => return Err(Errno::EINVAL),
            }
            node.version = seq;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mount table
    // ------------------------------------------------------------------

    /// Installs a mount over directory `covered`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mount(
        &self,
        source: &str,
        mountpoint: &str,
        fstype: &str,
        options: MountOptions,
        root: Ino,
        covered: Ino,
        mounted_by: Uid,
    ) -> KResult<u64> {
        // Inode checks before the mount lock (inode shard ↔ mount table
        // lock order is resolve's: mounts are snapshotted, never held
        // across shard access).
        if !self.inode(covered).data.is_dir() || !self.inode(root).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        if root == covered {
            return Err(Errno::EBUSY);
        }
        let id = self.next_mount_id.fetch_add(1, Ordering::Relaxed);
        sync::write(&self.mounts).push(Mount {
            id,
            source: source.to_string(),
            mountpoint: mountpoint.to_string(),
            fstype: fstype.to_string(),
            options,
            root,
            covered,
            mounted_by,
        });
        self.next_seq();
        self.bump_namespace_gen();
        Ok(id)
    }

    /// Removes the topmost mount at `mountpoint`, returning it.
    pub fn remove_mount(&self, mountpoint: &str) -> KResult<Mount> {
        let mut mounts = sync::write(&self.mounts);
        let idx = mounts
            .iter()
            .rposition(|m| m.mountpoint == mountpoint)
            .ok_or(Errno::EINVAL)?;
        // A mount with a child mount underneath it is busy.
        let prefix = if mountpoint == "/" {
            "/".to_string()
        } else {
            format!("{}/", mountpoint)
        };
        let has_children = mounts
            .iter()
            .any(|m| m.mountpoint != mountpoint && m.mountpoint.starts_with(&prefix));
        if has_children {
            return Err(Errno::EBUSY);
        }
        let removed = mounts.remove(idx);
        drop(mounts);
        self.next_seq();
        self.bump_namespace_gen();
        Ok(removed)
    }

    /// A snapshot of the current mount table.
    pub fn mounts(&self) -> Vec<Mount> {
        self.mounts_snapshot()
    }

    /// Finds a mount by its mountpoint path.
    pub fn find_mount(&self, mountpoint: &str) -> Option<Mount> {
        sync::read(&self.mounts)
            .iter()
            .rev()
            .find(|m| m.mountpoint == mountpoint)
            .cloned()
    }

    /// Renders the mount table in `/proc/mounts` format.
    pub fn render_proc_mounts(&self) -> String {
        let mut out = String::new();
        for m in sync::read(&self.mounts).iter() {
            out.push_str(&format!(
                "{} {} {} {} 0 0\n",
                m.source,
                m.mountpoint,
                m.fstype,
                m.options.render()
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // Convenience used by image builders and tests
    // ------------------------------------------------------------------

    /// Creates every missing directory along `path` (root-owned, 0755) and
    /// returns the final directory inode.
    pub fn mkdir_p(&self, path: &str) -> KResult<Ino> {
        let mut cur = self.root;
        for comp in Vfs::component_iter(path) {
            if comp == ".." {
                cur = self.inode(cur).parent;
                continue;
            }
            let existing = self.dir_lookup(cur, comp)?;
            cur = match existing {
                Some(i) => self.follow_mounts(i),
                None => match self.mkdir(cur, comp, Mode(0o755), Uid::ROOT, Gid::ROOT) {
                    Ok(i) => i,
                    Err(Errno::EEXIST) => {
                        // Raced another mkdir_p; take the winner's inode.
                        let won = self.dir_lookup(cur, comp)?.ok_or(Errno::ENOENT)?;
                        self.follow_mounts(won)
                    }
                    Err(e) => return Err(e),
                },
            };
        }
        Ok(cur)
    }

    /// Creates (or truncates) a file at an absolute path with explicit
    /// ownership and mode, creating parent directories as needed.
    pub fn install_file(
        &self,
        path: &str,
        contents: &[u8],
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KResult<Ino> {
        let (dir_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(i) => (&path[..i], &path[i + 1..]),
            None => return Err(Errno::EINVAL),
        };
        if name.is_empty() {
            return Err(Errno::EINVAL);
        }
        let dir = self.mkdir_p(dir_path)?;
        let ino = self.create_file(dir, name, mode, uid, gid, false)?;
        {
            let mut g = self.inode_mut(ino);
            g.mode = mode;
            g.uid = uid;
            g.gid = gid;
        }
        self.write_all(ino, contents)?;
        Ok(ino)
    }

    /// Installs a dynamic kernel-backed node at an absolute path.
    pub fn install_hook(
        &self,
        path: &str,
        hook: ProcHook,
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KResult<Ino> {
        let (dir_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(i) => (&path[..i], &path[i + 1..]),
            None => return Err(Errno::EINVAL),
        };
        let dir = self.mkdir_p(dir_path)?;
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Hook(hook));
        match self.dir_add(dir, name, ino) {
            Ok(()) => Ok(ino),
            Err(e) => {
                self.dealloc_unlinked(ino);
                Err(e)
            }
        }
    }

    /// DAC permission check: does `cred`-like identity (uid, groups) get
    /// `want` on `inode`? Pure owner/group/other logic; capability
    /// overrides are applied by the caller.
    pub fn dac_allows(
        inode: &Inode,
        uid: Uid,
        in_group: impl Fn(Gid) -> bool,
        want: Access,
    ) -> bool {
        let bits = if inode.uid == uid {
            inode.mode.owner_bits()
        } else if in_group(inode.gid) {
            inode.mode.group_bits()
        } else {
            inode.mode.other_bits()
        };
        bits & want.0 == want.0
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vfs {
        let v = Vfs::new();
        v.mkdir_p("/etc").unwrap();
        v.install_file(
            "/etc/fstab",
            b"# fstab\n",
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
        v.mkdir_p("/home/alice").unwrap();
        v
    }

    #[test]
    fn resolve_absolute_path() {
        let v = fixture();
        let r = v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
        assert_eq!(r.dirs.len(), 2); // "/" and "/etc"
    }

    #[test]
    fn resolve_missing_is_enoent() {
        let v = fixture();
        assert_eq!(v.resolve(v.root(), "/etc/nope").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn resolve_through_file_is_enotdir() {
        let v = fixture();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab/x").unwrap_err(),
            Errno::ENOTDIR
        );
    }

    #[test]
    fn dot_and_dotdot() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let r = v.resolve(v.root(), "/etc/./../etc/fstab").unwrap();
        assert_eq!(v.inode(r.ino).parent, etc);
        let root = v.resolve(v.root(), "/..").unwrap();
        assert_eq!(root.ino, v.root());
    }

    #[test]
    fn relative_resolution() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let r = v.resolve(etc, "fstab").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
    }

    #[test]
    fn symlink_follow_and_nofollow() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "fstab.link", "/etc/fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let followed = v.resolve(v.root(), "/etc/fstab.link").unwrap();
        assert_eq!(v.read_all(followed.ino).unwrap(), b"# fstab\n");
        let raw = v.resolve_nofollow(v.root(), "/etc/fstab.link").unwrap();
        assert!(matches!(v.inode(raw.ino).data, InodeData::Symlink(_)));
    }

    #[test]
    fn symlink_loop_is_eloop() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "a", "/etc/b", Uid::ROOT, Gid::ROOT).unwrap();
        v.symlink(etc, "b", "/etc/a", Uid::ROOT, Gid::ROOT).unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/a").unwrap_err(), Errno::ELOOP);
    }

    #[test]
    fn relative_symlink() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "rel", "fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let r = v.resolve(v.root(), "/etc/rel").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
    }

    #[test]
    fn mount_and_traverse() {
        let v = fixture();
        let mnt = v.mkdir_p("/mnt/cdrom").unwrap();
        let media_root = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.create_file(
            media_root,
            "readme.txt",
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
            true,
        )
        .unwrap();
        v.add_mount(
            "/dev/cdrom",
            "/mnt/cdrom",
            "iso9660",
            MountOptions::parse("ro"),
            media_root,
            mnt,
            Uid(1000),
        )
        .unwrap();
        let r = v.resolve(v.root(), "/mnt/cdrom/readme.txt").unwrap();
        assert_eq!(v.inode(r.ino).mode, Mode(0o444));
        // `..` from inside the mount escapes to /mnt.
        let up = v.resolve(v.root(), "/mnt/cdrom/..").unwrap();
        assert_eq!(v.path_of(up.ino), "/mnt");
    }

    #[test]
    fn umount_restores_view() {
        let v = fixture();
        let mnt = v.mkdir_p("/mnt/usb").unwrap();
        v.create_file(mnt, "under.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        let media = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "/dev/sdb1",
            "/mnt/usb",
            "vfat",
            MountOptions::default(),
            media,
            mnt,
            Uid(1000),
        )
        .unwrap();
        assert_eq!(
            v.resolve(v.root(), "/mnt/usb/under.txt").unwrap_err(),
            Errno::ENOENT
        );
        v.remove_mount("/mnt/usb").unwrap();
        assert!(v.resolve(v.root(), "/mnt/usb/under.txt").is_ok());
    }

    #[test]
    fn umount_with_child_mount_is_busy() {
        let v = fixture();
        let a = v.mkdir_p("/a").unwrap();
        let media = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount("x", "/a", "t", MountOptions::default(), media, a, Uid::ROOT)
            .unwrap();
        let b = v.mkdir_p("/a/b").unwrap();
        let media2 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "y",
            "/a/b",
            "t",
            MountOptions::default(),
            media2,
            b,
            Uid::ROOT,
        )
        .unwrap();
        assert_eq!(v.remove_mount("/a").unwrap_err(), Errno::EBUSY);
        v.remove_mount("/a/b").unwrap();
        v.remove_mount("/a").unwrap();
    }

    #[test]
    fn stacked_mounts_lifo() {
        let v = fixture();
        let mnt = v.mkdir_p("/mnt/x").unwrap();
        let m1 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        let m2 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "one",
            "/mnt/x",
            "t",
            MountOptions::default(),
            m1,
            mnt,
            Uid::ROOT,
        )
        .unwrap();
        v.create_file(m1, "one.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.add_mount(
            "two",
            "/mnt/x",
            "t",
            MountOptions::default(),
            m2,
            mnt,
            Uid::ROOT,
        )
        .unwrap();
        v.create_file(m2, "two.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert!(v.resolve(v.root(), "/mnt/x/two.txt").is_ok());
        assert!(v.resolve(v.root(), "/mnt/x/one.txt").is_err());
        v.remove_mount("/mnt/x").unwrap();
        assert!(v.resolve(v.root(), "/mnt/x/one.txt").is_ok());
    }

    #[test]
    fn path_of_roundtrip() {
        let v = fixture();
        let r = v.resolve(v.root(), "/home/alice").unwrap();
        assert_eq!(v.path_of(r.ino), "/home/alice");
        assert_eq!(v.path_of(v.root()), "/");
    }

    #[test]
    fn unlink_and_rmdir() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.unlink(etc, "fstab").unwrap();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab").unwrap_err(),
            Errno::ENOENT
        );
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        assert_eq!(v.rmdir(v.root(), "home").unwrap_err(), Errno::ENOTEMPTY);
        v.rmdir(home, "alice").unwrap();
        v.rmdir(v.root(), "home").unwrap();
    }

    #[test]
    fn unlink_directory_is_eisdir() {
        let v = fixture();
        assert_eq!(v.unlink(v.root(), "etc").unwrap_err(), Errno::EISDIR);
    }

    #[test]
    fn hard_link_shares_inode() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        v.link(etc, "fstab2", f).unwrap();
        assert_eq!(v.inode(f).nlink, 2);
        let r = v.resolve(v.root(), "/etc/fstab2").unwrap();
        assert_eq!(r.ino, f);
        v.unlink(etc, "fstab").unwrap();
        assert_eq!(v.inode(f).nlink, 1);
    }

    #[test]
    fn rename_moves_and_overwrites() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let tmp = v.mkdir_p("/tmp").unwrap();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Move across directories.
        v.rename(etc, "fstab", tmp, "fstab.new").unwrap();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab").unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(v.resolve(v.root(), "/tmp/fstab.new").unwrap().ino, f);
        assert_eq!(v.path_of(f), "/tmp/fstab.new");
        // Overwrite an existing target (atomic replace).
        v.create_file(tmp, "target", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.rename(tmp, "fstab.new", tmp, "target").unwrap();
        let t = v.resolve(v.root(), "/tmp/target").unwrap();
        assert_eq!(t.ino, f);
        assert_eq!(v.read_all(f).unwrap(), b"# fstab\n");
        // Missing source.
        assert_eq!(v.rename(tmp, "nope", tmp, "x").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn rename_into_own_subtree_is_einval() {
        let v = fixture();
        let a = v.mkdir_p("/a").unwrap();
        let b = v.mkdir_p("/a/b").unwrap();
        let c = v.mkdir_p("/a/b/c").unwrap();
        // Direct: /a -> /a/x.
        assert_eq!(v.rename(v.root(), "a", a, "x").unwrap_err(), Errno::EINVAL);
        // Transitive: /a -> /a/b/c/x.
        assert_eq!(v.rename(v.root(), "a", c, "x").unwrap_err(), Errno::EINVAL);
        // Mid-chain source: /a/b -> /a/b/c/x.
        assert_eq!(v.rename(a, "b", c, "x").unwrap_err(), Errno::EINVAL);
        // The tree is untouched: everything still resolves and nlinks are
        // consistent (/a holds ".", "..", and b => 3).
        assert_eq!(v.resolve(v.root(), "/a/b/c").unwrap().ino, c);
        assert_eq!(v.inode(a).nlink, 3);
        assert_eq!(v.inode(b).nlink, 3);
        // Moving a directory *sideways* still works.
        let d = v.mkdir_p("/d").unwrap();
        v.rename(a, "b", d, "b").unwrap();
        assert_eq!(v.resolve(v.root(), "/d/b/c").unwrap().ino, c);
    }

    #[test]
    fn rename_same_inode_is_noop() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Rename onto itself (same entry).
        v.rename(etc, "fstab", etc, "fstab").unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        // Rename onto a hard link of the same inode: POSIX no-op, both
        // names survive.
        v.link(etc, "fstab2", f).unwrap();
        v.rename(etc, "fstab", etc, "fstab2").unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        assert_eq!(v.resolve(v.root(), "/etc/fstab2").unwrap().ino, f);
        assert_eq!(v.inode(f).nlink, 2);
    }

    #[test]
    fn rename_overwrite_open_target_defers_reclaim() {
        let v = fixture();
        let tmp = v.mkdir_p("/tmp").unwrap();
        let old = v
            .create_file(tmp, "spool", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.write_all(old, b"old contents").unwrap();
        let new = v
            .create_file(tmp, "spool.tmp", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.write_all(new, b"new contents").unwrap();
        // A reader holds the about-to-be-replaced inode open.
        v.inc_open(old);
        v.rename(tmp, "spool.tmp", tmp, "spool").unwrap();
        // The name now points at the replacement...
        assert_eq!(v.resolve(v.root(), "/tmp/spool").unwrap().ino, new);
        // ...but the old inode is still readable through the open fd.
        assert_eq!(v.inode(old).nlink, 0);
        assert_eq!(v.read_all(old).unwrap(), b"old contents");
        // Close: now it is reclaimed, and the slot is reusable.
        v.dec_open(old);
        let fresh = v.alloc(
            tmp,
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Regular(Vec::new()),
        );
        assert_eq!(fresh, old, "reclaimed slot must be reused");
        assert_eq!(v.read_all(fresh).unwrap(), b"", "no content leak");
    }

    #[test]
    fn rename_errno_paths() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        // Overwriting a directory with a file is EISDIR.
        assert_eq!(
            v.rename(etc, "fstab", v.root(), "home").unwrap_err(),
            Errno::EISDIR
        );
        // A file as the destination directory is ENOTDIR.
        assert_eq!(v.rename(etc, "fstab", f, "x").unwrap_err(), Errno::ENOTDIR);
        // Missing source is ENOENT.
        assert_eq!(v.rename(etc, "nope", etc, "x").unwrap_err(), Errno::ENOENT);
        // Nothing above disturbed the namespace.
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        assert_eq!(v.resolve(v.root(), "/home").unwrap().ino, home);
    }

    #[test]
    fn dir_remove_refuses_nonempty_directory() {
        let v = fixture();
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        let alice = v.resolve(v.root(), "/home/alice").unwrap().ino;
        // /home/alice is populated via /home — direct dir_remove must
        // refuse rather than orphan the subtree.
        v.create_file(alice, "notes", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert_eq!(
            v.dir_remove(v.root(), "home").unwrap_err(),
            Errno::ENOTEMPTY
        );
        assert_eq!(v.dir_remove(home, "alice").unwrap_err(), Errno::ENOTEMPTY);
        // The subtree survived with sane links.
        assert!(v.resolve(v.root(), "/home/alice/notes").is_ok());
        assert!(v.inode(alice).nlink >= 2);
        // Empty it out and removal succeeds bottom-up.
        v.unlink(alice, "notes").unwrap();
        v.dir_remove(home, "alice").unwrap();
        v.dir_remove(v.root(), "home").unwrap();
        assert_eq!(v.resolve(v.root(), "/home").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn rename_directory_updates_nlink() {
        let v = fixture();
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        let tmp = v.mkdir_p("/tmp").unwrap();
        let home_links = v.inode(home).nlink;
        let tmp_links = v.inode(tmp).nlink;
        v.rename(home, "alice", tmp, "alice").unwrap();
        assert_eq!(v.inode(home).nlink, home_links - 1);
        assert_eq!(v.inode(tmp).nlink, tmp_links + 1);
        assert!(v.resolve(v.root(), "/tmp/alice").is_ok());
    }

    #[test]
    fn touch_bumps_version_and_seq() {
        let v = fixture();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let v0 = v.inode(f).version;
        let s0 = v.change_seq();
        v.append(f, b"more\n").unwrap();
        assert!(v.inode(f).version > v0);
        assert!(v.change_seq() > s0);
    }

    #[test]
    fn dac_semantics() {
        let v = fixture();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let inode = v.inode(f); // 0644 root:root
        assert!(Vfs::dac_allows(&inode, Uid::ROOT, |_| false, Access::WRITE));
        assert!(Vfs::dac_allows(&inode, Uid(1000), |_| false, Access::READ));
        assert!(!Vfs::dac_allows(
            &inode,
            Uid(1000),
            |_| false,
            Access::WRITE
        ));
        // Group bits picked when the caller is in the owning group.
        assert!(!Vfs::dac_allows(
            &inode,
            Uid(1000),
            |g| g == Gid::ROOT,
            Access::WRITE
        ));
    }

    #[test]
    fn dcache_hits_repeat_lookups() {
        let v = fixture();
        let a = v.resolve(v.root(), "/etc/fstab").unwrap();
        let b = v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(a.ino, b.ino);
        let s = v.dcache_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn dcache_disabled_never_hits() {
        let v = fixture();
        v.set_dcache_enabled(false);
        v.resolve(v.root(), "/etc/fstab").unwrap();
        v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(v.dcache_stats().hits, 0);
    }

    #[test]
    fn dcache_distinguishes_follow_modes() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "lnk", "/etc/fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let followed = v.resolve(v.root(), "/etc/lnk").unwrap();
        let raw = v.resolve_nofollow(v.root(), "/etc/lnk").unwrap();
        assert_ne!(followed.ino, raw.ino);
        // Repeat both: each must come back from its own cache slot.
        assert_eq!(v.resolve(v.root(), "/etc/lnk").unwrap().ino, followed.ino);
        assert_eq!(
            v.resolve_nofollow(v.root(), "/etc/lnk").unwrap().ino,
            raw.ino
        );
    }

    #[test]
    fn namespace_mutations_bump_generation() {
        let v = fixture();
        let g0 = v.namespace_generation();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.create_file(etc, "new", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert!(v.namespace_generation() > g0);
        let g1 = v.namespace_generation();
        v.unlink(etc, "new").unwrap();
        assert!(v.namespace_generation() > g1);
        // Content writes do NOT invalidate the namespace.
        let g2 = v.namespace_generation();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        v.append(f, b"x").unwrap();
        assert_eq!(v.namespace_generation(), g2);
    }

    #[test]
    fn dcache_stale_hit_impossible_after_rename() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let old = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Warm the cache, then swap a different file into the same name.
        v.create_file(etc, "other", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        let other = v.resolve(v.root(), "/etc/other").unwrap().ino;
        v.rename(etc, "other", etc, "fstab").unwrap();
        let now = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        assert_eq!(now, other);
        assert_ne!(now, old);
        assert!(v.dcache_stats().invalidations >= 1);
    }

    #[test]
    fn mount_options_parse_render() {
        let o = MountOptions::parse("ro,nosuid,nodev,uid=1000");
        assert!(o.read_only && o.nosuid && o.nodev && !o.noexec);
        assert_eq!(o.extra, vec!["uid=1000".to_string()]);
        assert_eq!(o.render(), "ro,nosuid,nodev,uid=1000");
        assert_eq!(MountOptions::parse("defaults").render(), "rw");
    }

    #[test]
    fn proc_mounts_rendering() {
        let v = fixture();
        let mnt = v.mkdir_p("/mnt/c").unwrap();
        let m = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "/dev/cdrom",
            "/mnt/c",
            "iso9660",
            MountOptions::parse("ro,nosuid"),
            m,
            mnt,
            Uid(1000),
        )
        .unwrap();
        let s = v.render_proc_mounts();
        assert_eq!(s, "/dev/cdrom /mnt/c iso9660 ro,nosuid 0 0\n");
    }

    // ------------------------------------------------------------------
    // Concurrency
    // ------------------------------------------------------------------

    #[test]
    fn concurrent_creates_in_disjoint_dirs() {
        use std::sync::Arc;
        let v = Arc::new(Vfs::new());
        let mut dirs = Vec::new();
        for w in 0..8 {
            dirs.push(v.mkdir_p(&format!("/w{}", w)).unwrap());
        }
        let handles: Vec<_> = dirs
            .into_iter()
            .enumerate()
            .map(|(w, dir)| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let name = format!("f{}", i);
                        let ino = v
                            .create_file(
                                dir,
                                &name,
                                Mode(0o644),
                                Uid(1000 + w as u32),
                                Gid::ROOT,
                                true,
                            )
                            .unwrap();
                        v.write_all(ino, format!("{}:{}", w, i).as_bytes()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for w in 0..8 {
            for i in 0..50 {
                let r = v.resolve(v.root(), &format!("/w{}/f{}", w, i)).unwrap();
                assert_eq!(
                    v.read_all(r.ino).unwrap(),
                    format!("{}:{}", w, i).as_bytes()
                );
            }
        }
    }

    #[test]
    fn concurrent_same_name_create_single_winner() {
        use std::sync::Arc;
        let v = Arc::new(Vfs::new());
        let dir = v.mkdir_p("/race").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    v.create_file(dir, "winner", Mode(0o644), Uid::ROOT, Gid::ROOT, false)
                })
            })
            .collect();
        let inos: Vec<Ino> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        // Every non-exclusive creator must converge on the same inode.
        assert!(inos.windows(2).all(|w| w[0] == w[1]));
        // Losers' speculative allocations were returned to the free list:
        // nothing outside the entry + reclaimed slots was leaked.
        let live = v.resolve(v.root(), "/race/winner").unwrap().ino;
        assert_eq!(live, inos[0]);
    }

    #[test]
    fn concurrent_link_unlink_keeps_nlink_consistent() {
        use std::sync::Arc;
        let v = Arc::new(Vfs::new());
        let dir = v.mkdir_p("/links").unwrap();
        let f = v
            .create_file(dir, "base", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let name = format!("l{}_{}", w, i);
                        v.link(dir, &name, f).unwrap();
                        v.unlink(dir, &name).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All temporary links came and went; only "base" remains.
        assert_eq!(v.inode(f).nlink, 1);
        assert_eq!(v.resolve(v.root(), "/links/base").unwrap().ino, f);
    }
}
