//! The virtual filesystem: inode arena, path resolution, and mount table.
//!
//! This module is pure *mechanism*. Permission checks (DAC, capabilities,
//! LSM hooks) are applied by the syscall layer in [`crate::kernel`]; the
//! functions here resolve paths, manage directory trees, and maintain the
//! mount table, mirroring the split between `fs/namei.c` and the
//! `security_*` hook callers in Linux.

use super::inode::{Access, Ino, Inode, InodeData, Mode, ProcHook};
use crate::cred::{Gid, Uid};
use crate::error::{Errno, KResult};
use crate::trace::CacheStats;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

/// Maximum symlink expansions during one path walk (Linux uses 40).
const MAX_SYMLINK_DEPTH: usize = 16;

/// Bound on cached resolutions; the dcache is flushed wholesale when it
/// fills (a simulation stand-in for the kernel's LRU shrinker).
const DCACHE_CAPACITY: usize = 4096;

/// The generation-stamped dentry cache fronting [`Vfs::resolve`].
///
/// Entries are keyed by (starting directory, raw path string, follow-last
/// flag) and are valid only for the namespace generation they were stored
/// under: any mutation of the tree or mount table bumps
/// [`Vfs::namespace_generation`], and the next lookup flushes the map. This
/// mirrors how the real dcache leans on d_seq/mount generations rather than
/// tracking per-entry dependencies.
#[derive(Debug, Default)]
struct Dcache {
    map: HashMap<(Ino, bool), HashMap<String, Resolved>>,
    entries: usize,
    gen: u64,
    stats: CacheStats,
}

/// Parsed mount options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MountOptions {
    /// Mount read-only.
    pub read_only: bool,
    /// Ignore setuid/setgid bits on this mount.
    pub nosuid: bool,
    /// Disallow device nodes.
    pub nodev: bool,
    /// Disallow executing binaries.
    pub noexec: bool,
    /// Unrecognized option strings, preserved verbatim.
    pub extra: Vec<String>,
}

impl MountOptions {
    /// Parses a comma-separated option string (`"ro,nosuid,nodev"`).
    pub fn parse(s: &str) -> MountOptions {
        let mut o = MountOptions::default();
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "ro" => o.read_only = true,
                "rw" => o.read_only = false,
                "nosuid" => o.nosuid = true,
                "suid" => o.nosuid = false,
                "nodev" => o.nodev = true,
                "dev" => o.nodev = false,
                "noexec" => o.noexec = true,
                "exec" => o.noexec = false,
                "defaults" => {}
                other => o.extra.push(other.to_string()),
            }
        }
        o
    }

    /// Renders the options back to a canonical comma-separated string.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.push(if self.read_only { "ro" } else { "rw" }.to_string());
        if self.nosuid {
            parts.push("nosuid".into());
        }
        if self.nodev {
            parts.push("nodev".into());
        }
        if self.noexec {
            parts.push("noexec".into());
        }
        parts.extend(self.extra.iter().cloned());
        parts.join(",")
    }
}

/// A mounted filesystem instance.
#[derive(Clone, Debug)]
pub struct Mount {
    /// Unique id, monotonically assigned.
    pub id: u64,
    /// Source device or pseudo-fs name (`/dev/cdrom`, `proc`).
    pub source: String,
    /// Normalized absolute mountpoint path.
    pub mountpoint: String,
    /// Filesystem type (`iso9660`, `vfat`, `proc`, ...).
    pub fstype: String,
    /// Active options.
    pub options: MountOptions,
    /// Root inode of the mounted tree.
    pub root: Ino,
    /// The directory inode this mount covers.
    pub covered: Ino,
    /// Real uid of the mounting user (recorded for user-umount policy).
    pub mounted_by: Uid,
}

/// Outcome of a full path resolution.
#[derive(Clone, Debug)]
pub struct Resolved {
    /// The final inode.
    pub ino: Ino,
    /// Every directory inode traversed (for search-permission checks),
    /// excluding the final inode.
    pub dirs: Vec<Ino>,
}

/// The virtual filesystem state.
#[derive(Debug)]
pub struct Vfs {
    inodes: Vec<Inode>,
    free_inos: Vec<Ino>,
    root: Ino,
    mounts: Vec<Mount>,
    next_mount_id: u64,
    /// Global change sequence, bumped on every mutation; cheap poll target
    /// for the monitoring daemon.
    pub change_seq: u64,
    /// Namespace generation: bumped only on mutations that can change what
    /// a path resolves to (link/unlink/rename/mount/umount/chmod/chown),
    /// *not* on content writes — unlike `change_seq`, so file I/O does not
    /// thrash the dcache.
    namespace_gen: u64,
    dcache: RefCell<Dcache>,
    dcache_enabled: Cell<bool>,
}

impl Vfs {
    /// Creates a VFS with an empty root directory owned by root.
    pub fn new() -> Vfs {
        let root_inode = Inode {
            ino: Ino(0),
            parent: Ino(0),
            mode: Mode(0o755),
            uid: Uid::ROOT,
            gid: Gid::ROOT,
            data: InodeData::Directory(BTreeMap::new()),
            version: 0,
            nlink: 2,
            opens: 0,
        };
        Vfs {
            inodes: vec![root_inode],
            free_inos: Vec::new(),
            root: Ino(0),
            mounts: Vec::new(),
            next_mount_id: 1,
            change_seq: 0,
            namespace_gen: 0,
            dcache: RefCell::new(Dcache::default()),
            dcache_enabled: Cell::new(true),
        }
    }

    /// The root directory inode.
    pub fn root(&self) -> Ino {
        self.root
    }

    /// Immutable inode access.
    pub fn inode(&self, ino: Ino) -> &Inode {
        &self.inodes[ino.0]
    }

    /// Mutable inode access. Callers that change content or metadata must
    /// call [`Vfs::touch`] so watchers observe the change.
    pub fn inode_mut(&mut self, ino: Ino) -> &mut Inode {
        &mut self.inodes[ino.0]
    }

    /// Records a modification of `ino` for change watchers.
    pub fn touch(&mut self, ino: Ino) {
        self.change_seq += 1;
        let seq = self.change_seq;
        self.inodes[ino.0].version = seq;
    }

    /// Allocates an inode, reusing a reclaimed slot when one is free.
    pub fn alloc(&mut self, parent: Ino, mode: Mode, uid: Uid, gid: Gid, data: InodeData) -> Ino {
        let nlink = if data.is_dir() { 2 } else { 1 };
        if let Some(ino) = self.free_inos.pop() {
            self.inodes[ino.0] = Inode {
                ino,
                parent,
                mode,
                uid,
                gid,
                data,
                version: 0,
                nlink,
                opens: 0,
            };
            return ino;
        }
        let ino = Ino(self.inodes.len());
        self.inodes.push(Inode {
            ino,
            parent,
            mode,
            uid,
            gid,
            data,
            version: 0,
            nlink,
            opens: 0,
        });
        ino
    }

    /// Number of inode slots in the arena (live + reclaimed).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Inode slots currently sitting on the free list.
    pub fn reclaimed_slots(&self) -> &[Ino] {
        &self.free_inos
    }

    /// Records that a file description opened `ino`.
    pub fn inc_open(&mut self, ino: Ino) {
        self.inodes[ino.0].opens += 1;
    }

    /// Records a close; reclaims the inode if it is also unlinked.
    pub fn dec_open(&mut self, ino: Ino) {
        let i = &mut self.inodes[ino.0];
        i.opens = i.opens.saturating_sub(1);
        self.maybe_reclaim(ino);
    }

    /// Reclaims an inode with no links and no opens. The root, mount
    /// roots, and hook nodes always keep a link, so only orphaned
    /// regular files/symlinks are recycled.
    fn maybe_reclaim(&mut self, ino: Ino) {
        let i = &self.inodes[ino.0];
        if ino != self.root
            && i.nlink == 0
            && i.opens == 0
            && !matches!(i.data, InodeData::Directory(_))
        {
            // Drop contents eagerly and remember the slot.
            self.inodes[ino.0].data = InodeData::Regular(Vec::new());
            self.free_inos.push(ino);
        }
    }

    // ------------------------------------------------------------------
    // Path handling
    // ------------------------------------------------------------------

    /// Iterates over normalized path components, resolving `.` lexically.
    /// `..` is preserved (it must be resolved against the directory tree,
    /// not lexically, to honour symlinks and mounts). Borrows from `path`
    /// and never allocates — this is the hot-path walker.
    pub fn component_iter(path: &str) -> impl Iterator<Item = &str> + '_ {
        path.split('/').filter(|c| !c.is_empty() && *c != ".")
    }

    /// Splits a path into normalized components (allocating form of
    /// [`Vfs::component_iter`], kept for callers that need random access).
    pub fn components(path: &str) -> Vec<&str> {
        Vfs::component_iter(path).collect()
    }

    // ------------------------------------------------------------------
    // Dentry cache
    // ------------------------------------------------------------------

    /// The current namespace generation. Any two `resolve` calls bracketing
    /// an unchanged generation see the same namespace.
    pub fn namespace_generation(&self) -> u64 {
        self.namespace_gen
    }

    /// Invalidates the dcache by advancing the namespace generation.
    /// Called from every mutation that can change a path's meaning.
    pub fn bump_namespace_gen(&mut self) {
        self.namespace_gen += 1;
    }

    /// Enables or disables the dcache (used by benches to measure the cold
    /// path). Disabling does not flush; re-enabled entries are still
    /// generation-checked.
    pub fn set_dcache_enabled(&self, on: bool) {
        self.dcache_enabled.set(on);
    }

    /// Current dcache hit/miss/invalidation counters.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.borrow().stats
    }

    /// Cache-fronted resolution. Looks up (start dir, path, follow-last) in
    /// the dcache after lazily flushing a stale generation; falls back to
    /// [`Vfs::resolve_inner`] and stores the result.
    fn resolve_cached(&self, cwd: Ino, path: &str, follow_last: bool) -> KResult<Resolved> {
        let _resolve_span = crate::trace::span(crate::trace::Pathway::VfsResolve);
        if !self.dcache_enabled.get() {
            return self.resolve_inner(cwd, path, follow_last, 0);
        }
        let start = if path.starts_with('/') {
            self.root
        } else {
            cwd
        };
        {
            let _probe_span = crate::trace::span(crate::trace::Pathway::DcacheProbe);
            let mut dc = self.dcache.borrow_mut();
            if dc.gen != self.namespace_gen {
                if dc.entries > 0 {
                    dc.stats.invalidations += 1;
                }
                dc.map.clear();
                dc.entries = 0;
                dc.gen = self.namespace_gen;
            }
            // Nested map so the probe takes `&str` — no key allocation.
            if let Some(hit) = dc
                .map
                .get(&(start, follow_last))
                .and_then(|paths| paths.get(path))
            {
                let hit = hit.clone();
                dc.stats.hits += 1;
                return Ok(hit);
            }
            dc.stats.misses += 1;
        }
        let resolved = self.resolve_inner(cwd, path, follow_last, 0)?;
        let mut dc = self.dcache.borrow_mut();
        if dc.gen == self.namespace_gen {
            if dc.entries >= DCACHE_CAPACITY {
                dc.map.clear();
                dc.entries = 0;
                dc.stats.invalidations += 1;
            }
            dc.map
                .entry((start, follow_last))
                .or_default()
                .insert(path.to_string(), resolved.clone());
            dc.entries += 1;
        }
        Ok(resolved)
    }

    /// Returns the topmost mount covering directory `ino`, if any.
    pub fn mount_covering(&self, ino: Ino) -> Option<&Mount> {
        self.mounts.iter().rev().find(|m| m.covered == ino)
    }

    /// Returns the mount whose root is `ino`, if any.
    pub fn mount_rooted_at(&self, ino: Ino) -> Option<&Mount> {
        self.mounts.iter().rev().find(|m| m.root == ino)
    }

    /// Follows mounts stacked on a directory.
    fn follow_mounts(&self, mut ino: Ino) -> Ino {
        // The guard bounds pathological self-covering stacks, which
        // `add_mount` rejects but which defensive code should not spin on.
        for _ in 0..self.mounts.len() + 1 {
            match self.mount_covering(ino) {
                Some(m) if m.root != ino => ino = m.root,
                _ => break,
            }
        }
        ino
    }

    /// Resolves `path` (absolute, or relative to `cwd`) to an inode,
    /// following symlinks in every component including the last.
    pub fn resolve(&self, cwd: Ino, path: &str) -> KResult<Resolved> {
        self.resolve_cached(cwd, path, true)
    }

    /// Resolves `path` without following a symlink in the final component.
    pub fn resolve_nofollow(&self, cwd: Ino, path: &str) -> KResult<Resolved> {
        self.resolve_cached(cwd, path, false)
    }

    fn resolve_inner(
        &self,
        cwd: Ino,
        path: &str,
        follow_last: bool,
        depth: usize,
    ) -> KResult<Resolved> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::ELOOP);
        }
        if path.len() > 4096 {
            return Err(Errno::ENAMETOOLONG);
        }
        let mut cur = if path.starts_with('/') {
            self.follow_mounts(self.root)
        } else {
            cwd
        };
        let mut dirs: Vec<Ino> = Vec::new();
        let mut comps = Vfs::component_iter(path).peekable();
        if comps.peek().is_none() {
            return Ok(Resolved { ino: cur, dirs });
        }
        while let Some(comp) = comps.next() {
            let is_last = comps.peek().is_none();
            let node = self.inode(cur);
            let entries = match node.dir_entries() {
                Some(e) => e,
                None => return Err(Errno::ENOTDIR),
            };
            dirs.push(cur);
            let next = if comp == ".." {
                // At a mount root, `..` escapes to the covered directory's
                // parent.
                if let Some(m) = self.mount_rooted_at(cur) {
                    self.inode(m.covered).parent
                } else {
                    node.parent
                }
            } else {
                match entries.get(comp) {
                    Some(&ino) => ino,
                    None => return Err(Errno::ENOENT),
                }
            };
            // Symlink expansion.
            if let InodeData::Symlink(target) = &self.inode(next).data {
                if is_last && !follow_last {
                    return Ok(Resolved { ino: next, dirs });
                }
                let target = target.clone();
                let sub = self.resolve_inner(cur, &target, true, depth + 1)?;
                dirs.extend(sub.dirs.iter().copied());
                let mut landed = sub.ino;
                if !is_last {
                    landed = self.follow_mounts(landed);
                    cur = landed;
                    continue;
                }
                let landed = if self.inode(landed).data.is_dir() {
                    self.follow_mounts(landed)
                } else {
                    landed
                };
                return Ok(Resolved { ino: landed, dirs });
            }
            // Mount traversal.
            let next = if self.inode(next).data.is_dir() {
                self.follow_mounts(next)
            } else {
                next
            };
            if is_last {
                return Ok(Resolved { ino: next, dirs });
            }
            cur = next;
        }
        unreachable!("loop returns on last component");
    }

    /// Resolves the parent directory of `path` and returns it with the
    /// final component name. Used by create/unlink-style operations.
    ///
    /// The parent prefix is borrowed straight out of `path` (no join), so
    /// the walk itself allocates nothing beyond the returned name.
    pub fn resolve_parent(&self, cwd: Ino, path: &str) -> KResult<(Resolved, String)> {
        // Locate the last normalized component and its byte offset.
        let mut last: Option<(usize, &str)> = None;
        let mut off = 0;
        for seg in path.split('/') {
            if !seg.is_empty() && seg != "." {
                last = Some((off, seg));
            }
            off += seg.len() + 1;
        }
        let (start, name) = last.ok_or(Errno::EINVAL)?;
        if name == ".." {
            return Err(Errno::EINVAL);
        }
        // `resolve("")` yields the start directory, which matches the old
        // behaviour of resolving "." for a bare relative name.
        let r = self.resolve(cwd, &path[..start])?;
        if !self.inode(r.ino).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        Ok((r, name.to_string()))
    }

    /// Computes the absolute path of an inode by walking parents. Mount
    /// roots are translated through their covered directory. Primarily for
    /// diagnostics, `/proc/mounts`, and binary identity in LSM policies.
    pub fn path_of(&self, ino: Ino) -> String {
        let mut cur = ino;
        let mut parts: Vec<String> = Vec::new();
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 4096 {
                return "<cycle>".into();
            }
            if let Some(m) = self.mount_rooted_at(cur) {
                cur = m.covered;
                continue;
            }
            if cur == self.root {
                break;
            }
            let parent = self.inode(cur).parent;
            let name = self
                .inode(parent)
                .dir_entries()
                .and_then(|e| e.iter().find(|(_, &i)| i == cur).map(|(n, _)| n.clone()))
                .unwrap_or_else(|| format!("<ino{}>", cur.0));
            parts.push(name);
            cur = parent;
        }
        if parts.is_empty() {
            "/".into()
        } else {
            parts.reverse();
            format!("/{}", parts.join("/"))
        }
    }

    // ------------------------------------------------------------------
    // Directory operations (mechanism; callers check permissions)
    // ------------------------------------------------------------------

    /// Checks that `dir_add(dir, name, _)` would succeed, without
    /// mutating anything. Callers that allocate an inode before linking
    /// it in (`create_file`, `mkdir`, `symlink`) run this first so a
    /// failed `dir_add` can never strand a freshly allocated inode
    /// outside the tree.
    fn dir_add_precheck(&self, dir: Ino, name: &str) -> KResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(Errno::EINVAL);
        }
        let entries = self.inodes[dir.0].dir_entries().ok_or(Errno::ENOTDIR)?;
        if entries.contains_key(name) {
            return Err(Errno::EEXIST);
        }
        Ok(())
    }

    /// Adds a directory entry, failing if the name exists.
    pub fn dir_add(&mut self, dir: Ino, name: &str, child: Ino) -> KResult<()> {
        self.dir_add_precheck(dir, name)?;
        let entries = match &mut self.inodes[dir.0].data {
            InodeData::Directory(e) => e,
            _ => return Err(Errno::ENOTDIR),
        };
        entries.insert(name.to_string(), child);
        if self.inodes[child.0].data.is_dir() {
            self.inodes[dir.0].nlink += 1;
        }
        self.touch(dir);
        self.bump_namespace_gen();
        Ok(())
    }

    /// Removes a directory entry, returning the unlinked inode number.
    ///
    /// Removing a *directory* entry requires the directory to be empty —
    /// this is checked here, not just in [`Vfs::rmdir`], because this is a
    /// `pub` API and dropping a populated subtree to `nlink = 0` would
    /// orphan every inode under it.
    pub fn dir_remove(&mut self, dir: Ino, name: &str) -> KResult<Ino> {
        {
            let entries = self.inodes[dir.0].dir_entries().ok_or(Errno::ENOTDIR)?;
            let &child = entries.get(name).ok_or(Errno::ENOENT)?;
            if let Some(sub) = self.inodes[child.0].dir_entries() {
                if !sub.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
            }
        }
        let entries = match &mut self.inodes[dir.0].data {
            InodeData::Directory(e) => e,
            _ => return Err(Errno::ENOTDIR),
        };
        let child = entries.remove(name).ok_or(Errno::ENOENT)?;
        if self.inodes[child.0].data.is_dir() {
            self.inodes[dir.0].nlink -= 1;
            // The emptiness check above guarantees nothing is orphaned.
            self.inodes[child.0].nlink = 0;
        } else {
            self.inodes[child.0].nlink = self.inodes[child.0].nlink.saturating_sub(1);
        }
        self.touch(dir);
        self.bump_namespace_gen();
        self.maybe_reclaim(child);
        Ok(child)
    }

    /// Creates a regular file; `exclusive` makes an existing name an error.
    pub fn create_file(
        &mut self,
        dir: Ino,
        name: &str,
        mode: Mode,
        uid: Uid,
        gid: Gid,
        exclusive: bool,
    ) -> KResult<Ino> {
        match self.dir_add_precheck(dir, name) {
            Ok(()) => {}
            Err(Errno::EEXIST) => {
                if exclusive {
                    return Err(Errno::EEXIST);
                }
                let &existing = self.inodes[dir.0]
                    .dir_entries()
                    .ok_or(Errno::ENOTDIR)?
                    .get(name)
                    .ok_or(Errno::ENOENT)?;
                return Ok(existing);
            }
            Err(e) => return Err(e),
        }
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Regular(Vec::new()));
        self.dir_add(dir, name, ino)?;
        Ok(ino)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, dir: Ino, name: &str, mode: Mode, uid: Uid, gid: Gid) -> KResult<Ino> {
        self.dir_add_precheck(dir, name)?;
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Directory(BTreeMap::new()));
        self.dir_add(dir, name, ino)?;
        Ok(ino)
    }

    /// Creates a symlink.
    pub fn symlink(
        &mut self,
        dir: Ino,
        name: &str,
        target: &str,
        uid: Uid,
        gid: Gid,
    ) -> KResult<Ino> {
        self.dir_add_precheck(dir, name)?;
        let ino = self.alloc(
            dir,
            Mode(0o777),
            uid,
            gid,
            InodeData::Symlink(target.to_string()),
        );
        self.dir_add(dir, name, ino)?;
        Ok(ino)
    }

    /// Removes a non-directory entry.
    pub fn unlink(&mut self, dir: Ino, name: &str) -> KResult<()> {
        let entries = self.inodes[dir.0].dir_entries().ok_or(Errno::ENOTDIR)?;
        let &child = entries.get(name).ok_or(Errno::ENOENT)?;
        if self.inodes[child.0].data.is_dir() {
            return Err(Errno::EISDIR);
        }
        self.dir_remove(dir, name)?;
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, dir: Ino, name: &str) -> KResult<()> {
        let entries = self.inodes[dir.0].dir_entries().ok_or(Errno::ENOTDIR)?;
        let &child = entries.get(name).ok_or(Errno::ENOENT)?;
        match self.inodes[child.0].dir_entries() {
            Some(e) if !e.is_empty() => return Err(Errno::ENOTEMPTY),
            Some(_) => {}
            None => return Err(Errno::ENOTDIR),
        }
        if self.mount_covering(child).is_some() {
            return Err(Errno::EBUSY);
        }
        self.dir_remove(dir, name)?;
        Ok(())
    }

    /// Renames an entry, overwriting a non-directory target if present —
    /// the atomic-replace primitive database rewriters rely on.
    pub fn rename(
        &mut self,
        from_dir: Ino,
        from_name: &str,
        to_dir: Ino,
        to_name: &str,
    ) -> KResult<()> {
        let src = *self.inodes[from_dir.0]
            .dir_entries()
            .ok_or(Errno::ENOTDIR)?
            .get(from_name)
            .ok_or(Errno::ENOENT)?;
        if self.inodes[src.0].data.is_dir() {
            // Moving a directory under itself (or into itself) would
            // detach the subtree into an unreachable cycle: walk the
            // destination's parent chain and refuse if `src` shows up
            // anywhere on it (Linux returns EINVAL here).
            let mut cur = to_dir;
            let mut guard = 0usize;
            loop {
                if cur == src {
                    return Err(Errno::EINVAL);
                }
                guard += 1;
                if cur == self.root || guard > 4096 {
                    break;
                }
                cur = self.inode(cur).parent;
            }
        }
        if let Some(entries) = self.inodes[to_dir.0].dir_entries() {
            if let Some(&existing) = entries.get(to_name) {
                if existing == src {
                    return Ok(());
                }
                if self.inodes[existing.0].data.is_dir() {
                    return Err(Errno::EISDIR);
                }
                self.dir_remove(to_dir, to_name)?;
            }
        } else {
            return Err(Errno::ENOTDIR);
        }
        // Move the entry without touching the inode's link count.
        let entries = match &mut self.inodes[from_dir.0].data {
            InodeData::Directory(e) => e,
            _ => return Err(Errno::ENOTDIR),
        };
        entries.remove(from_name);
        if self.inodes[src.0].data.is_dir() {
            self.inodes[from_dir.0].nlink -= 1;
        }
        self.touch(from_dir);
        match &mut self.inodes[to_dir.0].data {
            InodeData::Directory(e) => {
                e.insert(to_name.to_string(), src);
            }
            _ => return Err(Errno::ENOTDIR),
        }
        if self.inodes[src.0].data.is_dir() {
            self.inodes[to_dir.0].nlink += 1;
        }
        self.inodes[src.0].parent = to_dir;
        self.touch(to_dir);
        self.touch(src);
        self.bump_namespace_gen();
        Ok(())
    }

    /// Creates a hard link to an existing inode.
    pub fn link(&mut self, dir: Ino, name: &str, target: Ino) -> KResult<()> {
        if self.inodes[target.0].data.is_dir() {
            return Err(Errno::EPERM);
        }
        self.dir_add(dir, name, target)?;
        self.inodes[target.0].nlink += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // File content
    // ------------------------------------------------------------------

    /// Reads the full contents of a regular file.
    pub fn read_all(&self, ino: Ino) -> KResult<&[u8]> {
        match &self.inode(ino).data {
            InodeData::Regular(d) => Ok(d),
            InodeData::Directory(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Replaces the contents of a regular file.
    pub fn write_all(&mut self, ino: Ino, data: &[u8]) -> KResult<()> {
        match &mut self.inodes[ino.0].data {
            InodeData::Regular(d) => {
                d.clear();
                d.extend_from_slice(data);
            }
            InodeData::Directory(_) => return Err(Errno::EISDIR),
            _ => return Err(Errno::EINVAL),
        }
        self.touch(ino);
        Ok(())
    }

    /// Appends to a regular file.
    pub fn append(&mut self, ino: Ino, data: &[u8]) -> KResult<()> {
        match &mut self.inodes[ino.0].data {
            InodeData::Regular(d) => d.extend_from_slice(data),
            InodeData::Directory(_) => return Err(Errno::EISDIR),
            _ => return Err(Errno::EINVAL),
        }
        self.touch(ino);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mount table
    // ------------------------------------------------------------------

    /// Installs a mount over directory `covered`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mount(
        &mut self,
        source: &str,
        mountpoint: &str,
        fstype: &str,
        options: MountOptions,
        root: Ino,
        covered: Ino,
        mounted_by: Uid,
    ) -> KResult<u64> {
        if !self.inode(covered).data.is_dir() || !self.inode(root).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        if root == covered {
            return Err(Errno::EBUSY);
        }
        let id = self.next_mount_id;
        self.next_mount_id += 1;
        self.mounts.push(Mount {
            id,
            source: source.to_string(),
            mountpoint: mountpoint.to_string(),
            fstype: fstype.to_string(),
            options,
            root,
            covered,
            mounted_by,
        });
        self.change_seq += 1;
        self.bump_namespace_gen();
        Ok(id)
    }

    /// Removes the topmost mount at `mountpoint`, returning it.
    pub fn remove_mount(&mut self, mountpoint: &str) -> KResult<Mount> {
        let idx = self
            .mounts
            .iter()
            .rposition(|m| m.mountpoint == mountpoint)
            .ok_or(Errno::EINVAL)?;
        // A mount with a child mount underneath it is busy.
        let prefix = if mountpoint == "/" {
            "/".to_string()
        } else {
            format!("{}/", mountpoint)
        };
        let has_children = self
            .mounts
            .iter()
            .any(|m| m.mountpoint != mountpoint && m.mountpoint.starts_with(&prefix));
        if has_children {
            return Err(Errno::EBUSY);
        }
        self.change_seq += 1;
        self.bump_namespace_gen();
        Ok(self.mounts.remove(idx))
    }

    /// The current mount table.
    pub fn mounts(&self) -> &[Mount] {
        &self.mounts
    }

    /// Finds a mount by its mountpoint path.
    pub fn find_mount(&self, mountpoint: &str) -> Option<&Mount> {
        self.mounts
            .iter()
            .rev()
            .find(|m| m.mountpoint == mountpoint)
    }

    /// Renders the mount table in `/proc/mounts` format.
    pub fn render_proc_mounts(&self) -> String {
        let mut out = String::new();
        for m in &self.mounts {
            out.push_str(&format!(
                "{} {} {} {} 0 0\n",
                m.source,
                m.mountpoint,
                m.fstype,
                m.options.render()
            ));
        }
        out
    }

    // ------------------------------------------------------------------
    // Convenience used by image builders and tests
    // ------------------------------------------------------------------

    /// Creates every missing directory along `path` (root-owned, 0755) and
    /// returns the final directory inode.
    pub fn mkdir_p(&mut self, path: &str) -> KResult<Ino> {
        let mut cur = self.root;
        for comp in Vfs::component_iter(path) {
            if comp == ".." {
                cur = self.inode(cur).parent;
                continue;
            }
            let existing = self
                .inode(cur)
                .dir_entries()
                .ok_or(Errno::ENOTDIR)?
                .get(comp)
                .copied();
            cur = match existing {
                Some(i) => self.follow_mounts(i),
                None => self.mkdir(cur, comp, Mode(0o755), Uid::ROOT, Gid::ROOT)?,
            };
        }
        Ok(cur)
    }

    /// Creates (or truncates) a file at an absolute path with explicit
    /// ownership and mode, creating parent directories as needed.
    pub fn install_file(
        &mut self,
        path: &str,
        contents: &[u8],
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KResult<Ino> {
        let (dir_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(i) => (&path[..i], &path[i + 1..]),
            None => return Err(Errno::EINVAL),
        };
        if name.is_empty() {
            return Err(Errno::EINVAL);
        }
        let dir = self.mkdir_p(dir_path)?;
        let ino = self.create_file(dir, name, mode, uid, gid, false)?;
        self.inodes[ino.0].mode = mode;
        self.inodes[ino.0].uid = uid;
        self.inodes[ino.0].gid = gid;
        self.write_all(ino, contents)?;
        Ok(ino)
    }

    /// Installs a dynamic kernel-backed node at an absolute path.
    pub fn install_hook(
        &mut self,
        path: &str,
        hook: ProcHook,
        mode: Mode,
        uid: Uid,
        gid: Gid,
    ) -> KResult<Ino> {
        let (dir_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(i) => (&path[..i], &path[i + 1..]),
            None => return Err(Errno::EINVAL),
        };
        let dir = self.mkdir_p(dir_path)?;
        let ino = self.alloc(dir, mode, uid, gid, InodeData::Hook(hook));
        self.dir_add(dir, name, ino)?;
        Ok(ino)
    }

    /// DAC permission check: does `cred`-like identity (uid, groups) get
    /// `want` on `inode`? Pure owner/group/other logic; capability
    /// overrides are applied by the caller.
    pub fn dac_allows(
        inode: &Inode,
        uid: Uid,
        in_group: impl Fn(Gid) -> bool,
        want: Access,
    ) -> bool {
        let bits = if inode.uid == uid {
            inode.mode.owner_bits()
        } else if in_group(inode.gid) {
            inode.mode.group_bits()
        } else {
            inode.mode.other_bits()
        };
        bits & want.0 == want.0
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Vfs {
        let mut v = Vfs::new();
        v.mkdir_p("/etc").unwrap();
        v.install_file(
            "/etc/fstab",
            b"# fstab\n",
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
        v.mkdir_p("/home/alice").unwrap();
        v
    }

    #[test]
    fn resolve_absolute_path() {
        let v = fixture();
        let r = v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
        assert_eq!(r.dirs.len(), 2); // "/" and "/etc"
    }

    #[test]
    fn resolve_missing_is_enoent() {
        let v = fixture();
        assert_eq!(v.resolve(v.root(), "/etc/nope").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn resolve_through_file_is_enotdir() {
        let v = fixture();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab/x").unwrap_err(),
            Errno::ENOTDIR
        );
    }

    #[test]
    fn dot_and_dotdot() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let r = v.resolve(v.root(), "/etc/./../etc/fstab").unwrap();
        assert_eq!(v.inode(r.ino).parent, etc);
        let root = v.resolve(v.root(), "/..").unwrap();
        assert_eq!(root.ino, v.root());
    }

    #[test]
    fn relative_resolution() {
        let v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let r = v.resolve(etc, "fstab").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
    }

    #[test]
    fn symlink_follow_and_nofollow() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "fstab.link", "/etc/fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let followed = v.resolve(v.root(), "/etc/fstab.link").unwrap();
        assert_eq!(v.read_all(followed.ino).unwrap(), b"# fstab\n");
        let raw = v.resolve_nofollow(v.root(), "/etc/fstab.link").unwrap();
        assert!(matches!(v.inode(raw.ino).data, InodeData::Symlink(_)));
    }

    #[test]
    fn symlink_loop_is_eloop() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "a", "/etc/b", Uid::ROOT, Gid::ROOT).unwrap();
        v.symlink(etc, "b", "/etc/a", Uid::ROOT, Gid::ROOT).unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/a").unwrap_err(), Errno::ELOOP);
    }

    #[test]
    fn relative_symlink() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "rel", "fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let r = v.resolve(v.root(), "/etc/rel").unwrap();
        assert_eq!(v.read_all(r.ino).unwrap(), b"# fstab\n");
    }

    #[test]
    fn mount_and_traverse() {
        let mut v = fixture();
        let mnt = v.mkdir_p("/mnt/cdrom").unwrap();
        let media_root = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.create_file(
            media_root,
            "readme.txt",
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
            true,
        )
        .unwrap();
        v.add_mount(
            "/dev/cdrom",
            "/mnt/cdrom",
            "iso9660",
            MountOptions::parse("ro"),
            media_root,
            mnt,
            Uid(1000),
        )
        .unwrap();
        let r = v.resolve(v.root(), "/mnt/cdrom/readme.txt").unwrap();
        assert_eq!(v.inode(r.ino).mode, Mode(0o444));
        // `..` from inside the mount escapes to /mnt.
        let up = v.resolve(v.root(), "/mnt/cdrom/..").unwrap();
        assert_eq!(v.path_of(up.ino), "/mnt");
    }

    #[test]
    fn umount_restores_view() {
        let mut v = fixture();
        let mnt = v.mkdir_p("/mnt/usb").unwrap();
        v.create_file(mnt, "under.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        let media = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "/dev/sdb1",
            "/mnt/usb",
            "vfat",
            MountOptions::default(),
            media,
            mnt,
            Uid(1000),
        )
        .unwrap();
        assert_eq!(
            v.resolve(v.root(), "/mnt/usb/under.txt").unwrap_err(),
            Errno::ENOENT
        );
        v.remove_mount("/mnt/usb").unwrap();
        assert!(v.resolve(v.root(), "/mnt/usb/under.txt").is_ok());
    }

    #[test]
    fn umount_with_child_mount_is_busy() {
        let mut v = fixture();
        let a = v.mkdir_p("/a").unwrap();
        let media = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount("x", "/a", "t", MountOptions::default(), media, a, Uid::ROOT)
            .unwrap();
        let b = v.mkdir_p("/a/b").unwrap();
        let media2 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "y",
            "/a/b",
            "t",
            MountOptions::default(),
            media2,
            b,
            Uid::ROOT,
        )
        .unwrap();
        assert_eq!(v.remove_mount("/a").unwrap_err(), Errno::EBUSY);
        v.remove_mount("/a/b").unwrap();
        v.remove_mount("/a").unwrap();
    }

    #[test]
    fn stacked_mounts_lifo() {
        let mut v = fixture();
        let mnt = v.mkdir_p("/mnt/x").unwrap();
        let m1 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        let m2 = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "one",
            "/mnt/x",
            "t",
            MountOptions::default(),
            m1,
            mnt,
            Uid::ROOT,
        )
        .unwrap();
        v.create_file(m1, "one.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.add_mount(
            "two",
            "/mnt/x",
            "t",
            MountOptions::default(),
            m2,
            mnt,
            Uid::ROOT,
        )
        .unwrap();
        v.create_file(m2, "two.txt", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert!(v.resolve(v.root(), "/mnt/x/two.txt").is_ok());
        assert!(v.resolve(v.root(), "/mnt/x/one.txt").is_err());
        v.remove_mount("/mnt/x").unwrap();
        assert!(v.resolve(v.root(), "/mnt/x/one.txt").is_ok());
    }

    #[test]
    fn path_of_roundtrip() {
        let v = fixture();
        let r = v.resolve(v.root(), "/home/alice").unwrap();
        assert_eq!(v.path_of(r.ino), "/home/alice");
        assert_eq!(v.path_of(v.root()), "/");
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.unlink(etc, "fstab").unwrap();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab").unwrap_err(),
            Errno::ENOENT
        );
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        assert_eq!(v.rmdir(v.root(), "home").unwrap_err(), Errno::ENOTEMPTY);
        v.rmdir(home, "alice").unwrap();
        v.rmdir(v.root(), "home").unwrap();
    }

    #[test]
    fn unlink_directory_is_eisdir() {
        let mut v = fixture();
        assert_eq!(v.unlink(v.root(), "etc").unwrap_err(), Errno::EISDIR);
    }

    #[test]
    fn hard_link_shares_inode() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        v.link(etc, "fstab2", f).unwrap();
        assert_eq!(v.inode(f).nlink, 2);
        let r = v.resolve(v.root(), "/etc/fstab2").unwrap();
        assert_eq!(r.ino, f);
        v.unlink(etc, "fstab").unwrap();
        assert_eq!(v.inode(f).nlink, 1);
    }

    #[test]
    fn rename_moves_and_overwrites() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let tmp = v.mkdir_p("/tmp").unwrap();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Move across directories.
        v.rename(etc, "fstab", tmp, "fstab.new").unwrap();
        assert_eq!(
            v.resolve(v.root(), "/etc/fstab").unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(v.resolve(v.root(), "/tmp/fstab.new").unwrap().ino, f);
        assert_eq!(v.path_of(f), "/tmp/fstab.new");
        // Overwrite an existing target (atomic replace).
        v.create_file(tmp, "target", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.rename(tmp, "fstab.new", tmp, "target").unwrap();
        let t = v.resolve(v.root(), "/tmp/target").unwrap();
        assert_eq!(t.ino, f);
        assert_eq!(v.read_all(f).unwrap(), b"# fstab\n");
        // Missing source.
        assert_eq!(v.rename(tmp, "nope", tmp, "x").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn rename_into_own_subtree_is_einval() {
        let mut v = fixture();
        let a = v.mkdir_p("/a").unwrap();
        let b = v.mkdir_p("/a/b").unwrap();
        let c = v.mkdir_p("/a/b/c").unwrap();
        // Direct: /a -> /a/x.
        assert_eq!(v.rename(v.root(), "a", a, "x").unwrap_err(), Errno::EINVAL);
        // Transitive: /a -> /a/b/c/x.
        assert_eq!(v.rename(v.root(), "a", c, "x").unwrap_err(), Errno::EINVAL);
        // Mid-chain source: /a/b -> /a/b/c/x.
        assert_eq!(v.rename(a, "b", c, "x").unwrap_err(), Errno::EINVAL);
        // The tree is untouched: everything still resolves and nlinks are
        // consistent (/a holds ".", "..", and b => 3).
        assert_eq!(v.resolve(v.root(), "/a/b/c").unwrap().ino, c);
        assert_eq!(v.inode(a).nlink, 3);
        assert_eq!(v.inode(b).nlink, 3);
        // Moving a directory *sideways* still works.
        let d = v.mkdir_p("/d").unwrap();
        v.rename(a, "b", d, "b").unwrap();
        assert_eq!(v.resolve(v.root(), "/d/b/c").unwrap().ino, c);
    }

    #[test]
    fn rename_same_inode_is_noop() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Rename onto itself (same entry).
        v.rename(etc, "fstab", etc, "fstab").unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        // Rename onto a hard link of the same inode: POSIX no-op, both
        // names survive.
        v.link(etc, "fstab2", f).unwrap();
        v.rename(etc, "fstab", etc, "fstab2").unwrap();
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        assert_eq!(v.resolve(v.root(), "/etc/fstab2").unwrap().ino, f);
        assert_eq!(v.inode(f).nlink, 2);
    }

    #[test]
    fn rename_overwrite_open_target_defers_reclaim() {
        let mut v = fixture();
        let tmp = v.mkdir_p("/tmp").unwrap();
        let old = v
            .create_file(tmp, "spool", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.write_all(old, b"old contents").unwrap();
        let new = v
            .create_file(tmp, "spool.tmp", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        v.write_all(new, b"new contents").unwrap();
        // A reader holds the about-to-be-replaced inode open.
        v.inc_open(old);
        v.rename(tmp, "spool.tmp", tmp, "spool").unwrap();
        // The name now points at the replacement...
        assert_eq!(v.resolve(v.root(), "/tmp/spool").unwrap().ino, new);
        // ...but the old inode is still readable through the open fd.
        assert_eq!(v.inode(old).nlink, 0);
        assert_eq!(v.read_all(old).unwrap(), b"old contents");
        // Close: now it is reclaimed, and the slot is reusable.
        v.dec_open(old);
        let fresh = v.alloc(
            tmp,
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Regular(Vec::new()),
        );
        assert_eq!(fresh, old, "reclaimed slot must be reused");
        assert_eq!(v.read_all(fresh).unwrap(), b"", "no content leak");
    }

    #[test]
    fn rename_errno_paths() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        // Overwriting a directory with a file is EISDIR.
        assert_eq!(
            v.rename(etc, "fstab", v.root(), "home").unwrap_err(),
            Errno::EISDIR
        );
        // A file as the destination directory is ENOTDIR.
        assert_eq!(v.rename(etc, "fstab", f, "x").unwrap_err(), Errno::ENOTDIR);
        // Missing source is ENOENT.
        assert_eq!(v.rename(etc, "nope", etc, "x").unwrap_err(), Errno::ENOENT);
        // Nothing above disturbed the namespace.
        assert_eq!(v.resolve(v.root(), "/etc/fstab").unwrap().ino, f);
        assert_eq!(v.resolve(v.root(), "/home").unwrap().ino, home);
    }

    #[test]
    fn dir_remove_refuses_nonempty_directory() {
        let mut v = fixture();
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        let alice = v.resolve(v.root(), "/home/alice").unwrap().ino;
        // /home/alice is populated via /home — direct dir_remove must
        // refuse rather than orphan the subtree.
        v.create_file(alice, "notes", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert_eq!(
            v.dir_remove(v.root(), "home").unwrap_err(),
            Errno::ENOTEMPTY
        );
        assert_eq!(v.dir_remove(home, "alice").unwrap_err(), Errno::ENOTEMPTY);
        // The subtree survived with sane links.
        assert!(v.resolve(v.root(), "/home/alice/notes").is_ok());
        assert!(v.inode(alice).nlink >= 2);
        // Empty it out and removal succeeds bottom-up.
        v.unlink(alice, "notes").unwrap();
        v.dir_remove(home, "alice").unwrap();
        v.dir_remove(v.root(), "home").unwrap();
        assert_eq!(v.resolve(v.root(), "/home").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn rename_directory_updates_nlink() {
        let mut v = fixture();
        let home = v.resolve(v.root(), "/home").unwrap().ino;
        let tmp = v.mkdir_p("/tmp").unwrap();
        let home_links = v.inode(home).nlink;
        let tmp_links = v.inode(tmp).nlink;
        v.rename(home, "alice", tmp, "alice").unwrap();
        assert_eq!(v.inode(home).nlink, home_links - 1);
        assert_eq!(v.inode(tmp).nlink, tmp_links + 1);
        assert!(v.resolve(v.root(), "/tmp/alice").is_ok());
    }

    #[test]
    fn touch_bumps_version_and_seq() {
        let mut v = fixture();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let v0 = v.inode(f).version;
        let s0 = v.change_seq;
        v.append(f, b"more\n").unwrap();
        assert!(v.inode(f).version > v0);
        assert!(v.change_seq > s0);
    }

    #[test]
    fn dac_semantics() {
        let v = fixture();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        let inode = v.inode(f); // 0644 root:root
        assert!(Vfs::dac_allows(inode, Uid::ROOT, |_| false, Access::WRITE));
        assert!(Vfs::dac_allows(inode, Uid(1000), |_| false, Access::READ));
        assert!(!Vfs::dac_allows(inode, Uid(1000), |_| false, Access::WRITE));
        // Group bits picked when the caller is in the owning group.
        assert!(!Vfs::dac_allows(
            inode,
            Uid(1000),
            |g| g == Gid::ROOT,
            Access::WRITE
        ));
    }

    #[test]
    fn dcache_hits_repeat_lookups() {
        let v = fixture();
        let a = v.resolve(v.root(), "/etc/fstab").unwrap();
        let b = v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(a.ino, b.ino);
        let s = v.dcache_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn dcache_disabled_never_hits() {
        let v = fixture();
        v.set_dcache_enabled(false);
        v.resolve(v.root(), "/etc/fstab").unwrap();
        v.resolve(v.root(), "/etc/fstab").unwrap();
        assert_eq!(v.dcache_stats().hits, 0);
    }

    #[test]
    fn dcache_distinguishes_follow_modes() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.symlink(etc, "lnk", "/etc/fstab", Uid::ROOT, Gid::ROOT)
            .unwrap();
        let followed = v.resolve(v.root(), "/etc/lnk").unwrap();
        let raw = v.resolve_nofollow(v.root(), "/etc/lnk").unwrap();
        assert_ne!(followed.ino, raw.ino);
        // Repeat both: each must come back from its own cache slot.
        assert_eq!(v.resolve(v.root(), "/etc/lnk").unwrap().ino, followed.ino);
        assert_eq!(
            v.resolve_nofollow(v.root(), "/etc/lnk").unwrap().ino,
            raw.ino
        );
    }

    #[test]
    fn namespace_mutations_bump_generation() {
        let mut v = fixture();
        let g0 = v.namespace_generation();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        v.create_file(etc, "new", Mode(0o644), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        assert!(v.namespace_generation() > g0);
        let g1 = v.namespace_generation();
        v.unlink(etc, "new").unwrap();
        assert!(v.namespace_generation() > g1);
        // Content writes do NOT invalidate the namespace.
        let g2 = v.namespace_generation();
        let f = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        v.append(f, b"x").unwrap();
        assert_eq!(v.namespace_generation(), g2);
    }

    #[test]
    fn dcache_stale_hit_impossible_after_rename() {
        let mut v = fixture();
        let etc = v.resolve(v.root(), "/etc").unwrap().ino;
        let old = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        // Warm the cache, then swap a different file into the same name.
        v.create_file(etc, "other", Mode(0o600), Uid::ROOT, Gid::ROOT, true)
            .unwrap();
        let other = v.resolve(v.root(), "/etc/other").unwrap().ino;
        v.rename(etc, "other", etc, "fstab").unwrap();
        let now = v.resolve(v.root(), "/etc/fstab").unwrap().ino;
        assert_eq!(now, other);
        assert_ne!(now, old);
        assert!(v.dcache_stats().invalidations >= 1);
    }

    #[test]
    fn mount_options_parse_render() {
        let o = MountOptions::parse("ro,nosuid,nodev,uid=1000");
        assert!(o.read_only && o.nosuid && o.nodev && !o.noexec);
        assert_eq!(o.extra, vec!["uid=1000".to_string()]);
        assert_eq!(o.render(), "ro,nosuid,nodev,uid=1000");
        assert_eq!(MountOptions::parse("defaults").render(), "rw");
    }

    #[test]
    fn proc_mounts_rendering() {
        let mut v = fixture();
        let mnt = v.mkdir_p("/mnt/c").unwrap();
        let m = v.alloc(
            Ino(0),
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(BTreeMap::new()),
        );
        v.add_mount(
            "/dev/cdrom",
            "/mnt/c",
            "iso9660",
            MountOptions::parse("ro,nosuid"),
            m,
            mnt,
            Uid(1000),
        )
        .unwrap();
        let s = v.render_proc_mounts();
        assert_eq!(s, "/dev/cdrom /mnt/c iso9660 ro,nosuid 0 0\n");
    }
}
