//! Per-thread recycled-buffer arena for transient path scratch.
//!
//! The VFS walk needs short-lived buffers — an absolute path being
//! reconstructed for an LSM hook, glob-matcher DP scratch rows — whose
//! lifetime is at most one syscall dispatch. Allocating them fresh put
//! ~20 `String` sites on the resolve/open fast path; instead each thread
//! owns a [`PathArena`] whose buffers are *recycled*: [`ArenaString`] /
//! [`ArenaBytes`] hand their storage back to the pool on drop, so after
//! a short warmup the steady-state fast path performs **zero** heap
//! allocations (the counting-allocator test in `protego-core` asserts
//! exactly this).
//!
//! This is deliberately safe Rust: `sim-kernel` carries
//! `#![forbid(unsafe_code)]`, so instead of a raw bump pointer the arena
//! reuses `String`/`Vec<u8>` capacity, which gives the same steady-state
//! allocation profile without any `unsafe`. The arena is *not* reachable
//! from `Kernel` state: it is a thread-local, mirroring per-CPU scratch
//! pages in a real kernel, and therefore sits entirely outside the lock
//! hierarchy of DESIGN.md §13. [`PathArena::scope`] is the only way to
//! reach it; the higher-ranked closure bound keeps every handed-out
//! buffer from outliving the scope, and top-level scope exit trims the
//! pool back to its cap (the "reset at dispatch exit" discipline —
//! `Kernel::dispatch` brackets each syscall in a scope).

use std::cell::{Cell, RefCell};

/// Maximum buffers kept in each pool; more simply drop (cold).
const POOL_CAP: usize = 32;

/// Buffers above this capacity are not returned to the pool, so one
/// pathological path cannot pin a huge allocation forever.
const RETAIN_CAP: usize = 16 * 1024;

/// A per-thread pool of recycled path/scratch buffers.
pub struct PathArena {
    strings: RefCell<Vec<String>>,
    bytes: RefCell<Vec<Vec<u8>>>,
    /// Live `scope` nesting depth; the pools are trimmed when the
    /// outermost scope exits.
    depth: Cell<usize>,
}

thread_local! {
    static ARENA: PathArena = PathArena::new();
}

impl PathArena {
    fn new() -> PathArena {
        PathArena {
            strings: RefCell::new(Vec::new()),
            bytes: RefCell::new(Vec::new()),
            depth: Cell::new(0),
        }
    }

    /// Runs `f` with the calling thread's arena. Scopes nest; when the
    /// outermost scope exits (also on panic) the pools are trimmed to
    /// `POOL_CAP`. The closure-bound lifetime keeps arena buffers from
    /// escaping the scope.
    pub fn scope<R>(f: impl FnOnce(&PathArena) -> R) -> R {
        ARENA.with(|arena| {
            arena.depth.set(arena.depth.get() + 1);
            let _exit = ScopeExit { arena };
            f(arena)
        })
    }

    /// An empty string buffer with recycled capacity.
    pub fn string(&self) -> ArenaString<'_> {
        let buf = self.strings.borrow_mut().pop().unwrap_or_default();
        ArenaString { buf, owner: self }
    }

    /// Copies `s` into a recycled buffer.
    pub fn alloc_str(&self, s: &str) -> ArenaString<'_> {
        let mut out = self.string();
        out.buf.push_str(s);
        out
    }

    /// Builds `/part0/part1/…` in a recycled buffer ("/" for no parts).
    pub fn join_path(&self, parts: &[&str]) -> ArenaString<'_> {
        let mut out = self.string();
        if parts.is_empty() {
            out.buf.push('/');
            return out;
        }
        for part in parts {
            out.buf.push('/');
            out.buf.push_str(part);
        }
        out
    }

    /// A zeroed byte buffer of length `len` with recycled capacity
    /// (DP-scratch rows for the glob matcher, and similar).
    pub fn bytes(&self, len: usize) -> ArenaBytes<'_> {
        let mut buf = self.bytes.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        ArenaBytes { buf, owner: self }
    }

    fn give_string(&self, mut buf: String) {
        buf.clear();
        if buf.capacity() <= RETAIN_CAP {
            let mut pool = self.strings.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        }
    }

    fn give_bytes(&self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() <= RETAIN_CAP {
            let mut pool = self.bytes.borrow_mut();
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        }
    }
}

struct ScopeExit<'a> {
    arena: &'a PathArena,
}

impl Drop for ScopeExit<'_> {
    fn drop(&mut self) {
        let depth = self.arena.depth.get() - 1;
        self.arena.depth.set(depth);
        if depth == 0 {
            self.arena.strings.borrow_mut().truncate(POOL_CAP);
            self.arena.bytes.borrow_mut().truncate(POOL_CAP);
        }
    }
}

/// A pooled string buffer; derefs to `str` and returns its storage to
/// the arena on drop.
pub struct ArenaString<'a> {
    buf: String,
    owner: &'a PathArena,
}

impl ArenaString<'_> {
    /// The buffered text.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Appends text (capacity growth is amortized and recycled).
    pub fn push_str(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    /// Appends one character.
    pub fn push(&mut self, c: char) {
        self.buf.push(c);
    }
}

impl std::ops::Deref for ArenaString<'_> {
    type Target = str;
    fn deref(&self) -> &str {
        &self.buf
    }
}

impl std::fmt::Display for ArenaString<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.buf)
    }
}

impl std::fmt::Debug for ArenaString<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.buf, f)
    }
}

impl Drop for ArenaString<'_> {
    fn drop(&mut self) {
        self.owner.give_string(std::mem::take(&mut self.buf));
    }
}

/// A pooled byte buffer; derefs to `[u8]` and returns its storage to the
/// arena on drop.
pub struct ArenaBytes<'a> {
    buf: Vec<u8>,
    owner: &'a PathArena,
}

impl std::ops::Deref for ArenaBytes<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for ArenaBytes<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for ArenaBytes<'_> {
    fn drop(&mut self) {
        self.owner.give_bytes(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_str_round_trips() {
        PathArena::scope(|a| {
            let s = a.alloc_str("/etc/passwd");
            assert_eq!(s.as_str(), "/etc/passwd");
            assert_eq!(format!("{s}"), "/etc/passwd");
        });
    }

    #[test]
    fn join_path_formats_components() {
        PathArena::scope(|a| {
            assert_eq!(a.join_path(&[]).as_str(), "/");
            assert_eq!(a.join_path(&["etc"]).as_str(), "/etc");
            assert_eq!(
                a.join_path(&["etc", "ssl", "certs"]).as_str(),
                "/etc/ssl/certs"
            );
        });
    }

    #[test]
    fn bytes_are_zeroed_between_uses() {
        PathArena::scope(|a| {
            {
                let mut b = a.bytes(8);
                b.fill(0xAA);
            }
            let b = a.bytes(8);
            assert!(b.iter().all(|&x| x == 0), "recycled buffer is re-zeroed");
        });
    }

    #[test]
    fn buffers_are_recycled() {
        PathArena::scope(|a| {
            let cap = {
                let mut s = a.string();
                s.push_str(&"x".repeat(500));
                s.buf.capacity()
            };
            let s2 = a.string();
            assert!(
                s2.buf.capacity() >= cap,
                "second buffer reuses the first one's storage"
            );
        });
    }

    #[test]
    fn scopes_nest_and_trim_at_top_level_exit() {
        PathArena::scope(|a| {
            let outer = a.alloc_str("outer");
            PathArena::scope(|b| {
                let inner = b.alloc_str("inner");
                assert_eq!(inner.as_str(), "inner");
            });
            assert_eq!(outer.as_str(), "outer");
        });
        ARENA.with(|a| {
            assert_eq!(a.depth.get(), 0);
            assert!(a.strings.borrow().len() <= POOL_CAP);
        });
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        PathArena::scope(|a| {
            {
                let mut s = a.string();
                s.push_str(&"y".repeat(RETAIN_CAP + 1));
            }
            ARENA.with(|inner| {
                assert!(inner
                    .strings
                    .borrow()
                    .iter()
                    .all(|b| b.capacity() <= RETAIN_CAP));
            });
        });
    }

    #[test]
    fn pool_stays_bounded_across_many_scopes() {
        for _ in 0..100 {
            PathArena::scope(|a| {
                let _x = a.alloc_str("abc");
                let _y = a.bytes(64);
            });
        }
        ARENA.with(|a| {
            assert!(a.strings.borrow().len() <= POOL_CAP);
            assert!(a.bytes.borrow().len() <= POOL_CAP);
        });
    }
}
