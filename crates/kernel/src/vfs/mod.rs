//! Virtual filesystem: inodes, path resolution, mounts, and dynamic nodes.

pub mod arena;
mod fs;
mod inode;
pub mod intern;

pub use arena::{ArenaBytes, ArenaString, PathArena};
pub use fs::{DirChain, InodeMut, InodeRef, Mount, MountOptions, Resolved, Vfs};
pub use inode::{Access, Ino, Inode, InodeData, Mode, ProcHook};
pub use intern::Name;
