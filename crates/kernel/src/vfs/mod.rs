//! Virtual filesystem: inodes, path resolution, mounts, and dynamic nodes.

mod fs;
mod inode;

pub use fs::{InodeMut, InodeRef, Mount, MountOptions, Resolved, Vfs};
pub use inode::{Access, Ino, Inode, InodeData, Mode, ProcHook};
