//! Inodes, file modes, and file content for the simulated VFS.

use crate::cred::{Gid, Uid};
use crate::dev::DevId;
use crate::vfs::intern::Name;
use std::collections::BTreeMap;

/// An inode number: an index into the VFS inode arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Ino(pub usize);

/// A file mode: permission bits plus the setuid/setgid/sticky bits, in the
/// traditional octal encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mode(pub u32);

impl Mode {
    /// The setuid permission bit (04000) — the subject of the paper.
    pub const SETUID: u32 = 0o4000;
    /// The setgid permission bit (02000).
    pub const SETGID: u32 = 0o2000;
    /// The sticky bit (01000).
    pub const STICKY: u32 = 0o1000;

    /// Returns the permission bits (lower 12 bits).
    pub fn bits(self) -> u32 {
        self.0 & 0o7777
    }

    /// Whether the setuid bit is set.
    pub fn is_setuid(self) -> bool {
        self.0 & Mode::SETUID != 0
    }

    /// Whether the setgid bit is set.
    pub fn is_setgid(self) -> bool {
        self.0 & Mode::SETGID != 0
    }

    /// Owner permission triple (rwx as bits 2..0).
    pub fn owner_bits(self) -> u32 {
        (self.0 >> 6) & 0o7
    }

    /// Group permission triple.
    pub fn group_bits(self) -> u32 {
        (self.0 >> 3) & 0o7
    }

    /// Other permission triple.
    pub fn other_bits(self) -> u32 {
        self.0 & 0o7
    }

    /// Renders the mode like `ls -l`, e.g. `rwsr-xr-x` for 04755.
    pub fn render(self) -> String {
        let mut s = String::with_capacity(9);
        let triple = |s: &mut String, bits: u32, special: bool, special_ch: char| {
            s.push(if bits & 4 != 0 { 'r' } else { '-' });
            s.push(if bits & 2 != 0 { 'w' } else { '-' });
            s.push(match (bits & 1 != 0, special) {
                (true, true) => special_ch,
                (true, false) => 'x',
                (false, true) => special_ch.to_ascii_uppercase(),
                (false, false) => '-',
            });
        };
        triple(&mut s, self.owner_bits(), self.is_setuid(), 's');
        triple(&mut s, self.group_bits(), self.is_setgid(), 's');
        triple(&mut s, self.other_bits(), self.0 & Mode::STICKY != 0, 't');
        s
    }
}

/// Access request mask used by permission checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access(pub u32);

impl Access {
    /// Read access.
    pub const READ: Access = Access(4);
    /// Write access.
    pub const WRITE: Access = Access(2);
    /// Execute / directory-search access.
    pub const EXEC: Access = Access(1);

    /// Combines two access masks.
    pub fn and(self, other: Access) -> Access {
        Access(self.0 | other.0)
    }

    /// Whether the mask includes write access.
    pub fn wants_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether the mask includes read access.
    pub fn wants_read(self) -> bool {
        self.0 & 4 != 0
    }

    /// Whether the mask includes execute/search access.
    pub fn wants_exec(self) -> bool {
        self.0 & 1 != 0
    }
}

/// A dynamic (`/proc`- or `/sys`-style) node identity.
///
/// The VFS stores only the identity; the kernel dispatches reads and writes
/// of these nodes, forwarding LSM configuration files to the active
/// security module (the Protego `/proc` interface of Figure 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProcHook {
    /// `/proc/mounts` — the mount table, read-only.
    Mounts,
    /// `/proc/uptime` — the logical clock, read-only.
    Uptime,
    /// `/proc/<lsm>/<name>` — a security-module configuration file with an
    /// LSM-defined grammar (e.g. Protego's mount whitelist).
    LsmConfig(&'static str),
    /// `/proc/<lsm>/audit` — the structured audit ring, read-only.
    Audit,
    /// `/proc/<lsm>/metrics` — decision counters, read-only.
    Metrics,
    /// `/proc/kernel/histograms` — per-pathway latency histograms from
    /// the span-timing subsystem, read-only.
    Histograms,
    /// `/sys/...` attribute owned by a device, read-only; the string names
    /// the attribute (e.g. `dm/0/deps` for dm-crypt device topology).
    SysAttr(String),
    /// `/proc/seccomp/profiles` — loaded per-binary allowlists; root may
    /// write a full profile document to replace the table.
    SeccompProfiles,
    /// `/proc/seccomp/status` — mode and counters; root may write
    /// `off`/`complain`/`enforce` to switch modes.
    SeccompStatus,
    /// `/proc/seccomp/violations` — the out-of-profile call log; root may
    /// write `clear` to empty it.
    SeccompViolations,
}

/// What an inode contains.
#[derive(Clone, Debug)]
pub enum InodeData {
    /// A regular file with in-memory contents.
    Regular(Vec<u8>),
    /// A directory mapping interned names to child inode numbers. Keyed
    /// by [`Name`] symbol, so lookups are integer compares; note the map
    /// iterates in *symbol* order, not lexicographic — `readdir`-style
    /// callers sort the resolved strings.
    Directory(BTreeMap<Name, Ino>),
    /// A symbolic link to a path.
    Symlink(String),
    /// A character device.
    CharDev(DevId),
    /// A block device.
    BlockDev(DevId),
    /// A named pipe (contents managed by the pipe subsystem).
    Fifo,
    /// A dynamic kernel-backed node.
    Hook(ProcHook),
}

impl InodeData {
    /// Returns whether this is a directory.
    pub fn is_dir(&self) -> bool {
        matches!(self, InodeData::Directory(_))
    }
}

/// A simulated inode.
#[derive(Clone, Debug)]
pub struct Inode {
    /// This inode's number.
    pub ino: Ino,
    /// Parent directory inode (self for the root).
    pub parent: Ino,
    /// Permission and special bits.
    pub mode: Mode,
    /// Owning user.
    pub uid: Uid,
    /// Owning group.
    pub gid: Gid,
    /// Contents.
    pub data: InodeData,
    /// Bumped on every content or metadata change; the basis of the
    /// inotify-like change notification used by the monitoring daemon.
    pub version: u64,
    /// Number of live links (1 for regular files, >=2 for directories).
    pub nlink: u32,
    /// Open file descriptions referencing this inode. An unlinked inode
    /// stays allocated until the last open closes — classic in-core inode
    /// lifetime.
    pub opens: u32,
}

impl Inode {
    /// File size in bytes (0 for non-regular files).
    pub fn size(&self) -> usize {
        match &self.data {
            InodeData::Regular(d) => d.len(),
            _ => 0,
        }
    }

    /// Returns the directory entries, or `None` if not a directory.
    pub fn dir_entries(&self) -> Option<&BTreeMap<Name, Ino>> {
        match &self.data {
            InodeData::Directory(m) => Some(m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bit_extraction() {
        let m = Mode(0o4755);
        assert!(m.is_setuid());
        assert!(!m.is_setgid());
        assert_eq!(m.owner_bits(), 0o7);
        assert_eq!(m.group_bits(), 0o5);
        assert_eq!(m.other_bits(), 0o5);
    }

    #[test]
    fn mode_render_setuid_binary() {
        assert_eq!(Mode(0o4755).render(), "rwsr-xr-x");
        assert_eq!(Mode(0o755).render(), "rwxr-xr-x");
        assert_eq!(Mode(0o600).render(), "rw-------");
        assert_eq!(Mode(0o4644).render(), "rwSr--r--");
        assert_eq!(Mode(0o1777).render(), "rwxrwxrwt");
    }

    #[test]
    fn access_mask_composition() {
        let rw = Access::READ.and(Access::WRITE);
        assert!(rw.wants_read());
        assert!(rw.wants_write());
        assert!(!rw.wants_exec());
    }
}
