//! # sim-kernel
//!
//! A deterministic, user-space simulation of the Linux kernel subsystems
//! that the EuroSys 2014 paper *"Practical Techniques to Obviate
//! Setuid-to-Root Binaries"* (Protego) studies and modifies:
//!
//! * tasks, credentials, and the 36 Linux capabilities;
//! * a VFS with permission bits (including the setuid bit), mounts,
//!   symlinks, `/proc`, `/sys`, and inotify-style change tracking;
//! * sockets (TCP/UDP/raw/packet), a port table, a routing table with the
//!   conflict predicate of §4.1.2, and a netfilter OUTPUT chain;
//! * devices: block media, dm-crypt mappings, modem lines, and a KMS-era
//!   video adapter;
//! * an LSM hook framework mirroring the hook placement Protego adds, plus
//!   a kernel-launched trusted-authentication pathway (§4.3).
//!
//! The crate is pure mechanism plus *stock* Linux policy: every privileged
//! interface defaults to the capability checks of Linux 3.6. Security
//! modules (the `apparmor-lsm` baseline and `protego-core`) plug into
//! [`lsm::SecurityModule`] to change those decisions.
//!
//! # Examples
//!
//! ```
//! use sim_kernel::cred::{Credentials, Uid, Gid};
//! use sim_kernel::kernel::Kernel;
//! use sim_kernel::net::SimNet;
//!
//! let k = Kernel::new(SimNet::new());
//! k.install_standard_devices().unwrap();
//! let root = k.spawn_init();
//! k.vfs.mkdir_p("/mnt/cdrom").unwrap();
//! // Root can mount; an unprivileged user cannot (stock policy).
//! k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro").unwrap();
//! let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
//! assert!(k.sys_umount(user, "/mnt/cdrom").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps;
pub mod cred;
pub mod dev;
pub mod error;
pub mod kernel;
pub mod lsm;
pub mod net;
pub mod seccomp;
pub mod sync;
pub mod syscall;
pub mod task;
pub mod trace;
pub mod vfs;

pub use error::{Errno, KResult};
pub use kernel::{Kernel, SharedKernel};
pub use task::Pid;
