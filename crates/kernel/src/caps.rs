//! Linux file-system capabilities.
//!
//! Linux divides root privilege into roughly 36 capabilities (the paper's
//! §3.2). The simulated kernel reproduces the full set so that the study's
//! observations — e.g. that over 38% of checks use `CAP_SYS_ADMIN`, or that
//! changing a password transitively requires six capabilities — can be
//! exercised and measured rather than merely asserted.

use core::fmt;

/// A Linux capability, as defined in `include/uapi/linux/capability.h`
/// (Linux 3.6 era, the paper's baseline kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Cap {
    /// Override chown restrictions.
    Chown = 0,
    /// Bypass discretionary access control for read/write/execute.
    DacOverride = 1,
    /// Bypass DAC for read and directory search only.
    DacReadSearch = 2,
    /// Bypass file-owner checks (chmod, utime, ...).
    Fowner = 3,
    /// Bypass effective-uid checks on signals and setuid bits.
    Fsetid = 4,
    /// Bypass permission checks for sending signals.
    Kill = 5,
    /// Manipulate process GIDs.
    Setgid = 6,
    /// Manipulate process UIDs.
    Setuid = 7,
    /// Transfer/remove capabilities from other processes.
    Setpcap = 8,
    /// Modify immutable and append-only file attributes.
    LinuxImmutable = 9,
    /// Bind to ports below 1024.
    NetBindService = 10,
    /// Broadcast and listen to multicast.
    NetBroadcast = 11,
    /// Network administration (routing tables, interfaces, ...).
    NetAdmin = 12,
    /// Use raw and packet sockets.
    NetRaw = 13,
    /// Lock memory.
    IpcLock = 14,
    /// Bypass System V IPC ownership checks.
    IpcOwner = 15,
    /// Load and unload kernel modules.
    SysModule = 16,
    /// Use ioperm/iopl and raw I/O.
    SysRawio = 17,
    /// Use chroot.
    SysChroot = 18,
    /// Trace arbitrary processes.
    SysPtrace = 19,
    /// Configure process accounting.
    SysPacct = 20,
    /// Catch-all system administration capability ("the new root").
    SysAdmin = 21,
    /// Reboot the system.
    SysBoot = 22,
    /// Raise process priority.
    SysNice = 23,
    /// Override resource limits.
    SysResource = 24,
    /// Set the system clock.
    SysTime = 25,
    /// Configure tty devices.
    SysTtyConfig = 26,
    /// Create device special files.
    Mknod = 27,
    /// Establish leases on files.
    Lease = 28,
    /// Write to the audit log.
    AuditWrite = 29,
    /// Configure the audit subsystem.
    AuditControl = 30,
    /// Set file capabilities.
    Setfcap = 31,
    /// Override MAC policy (Smack).
    MacOverride = 32,
    /// Administer MAC policy (Smack).
    MacAdmin = 33,
    /// Configure syslog.
    Syslog = 34,
    /// Trigger wake alarms.
    WakeAlarm = 35,
}

impl Cap {
    /// All capabilities, in numeric order.
    pub const ALL: [Cap; 36] = [
        Cap::Chown,
        Cap::DacOverride,
        Cap::DacReadSearch,
        Cap::Fowner,
        Cap::Fsetid,
        Cap::Kill,
        Cap::Setgid,
        Cap::Setuid,
        Cap::Setpcap,
        Cap::LinuxImmutable,
        Cap::NetBindService,
        Cap::NetBroadcast,
        Cap::NetAdmin,
        Cap::NetRaw,
        Cap::IpcLock,
        Cap::IpcOwner,
        Cap::SysModule,
        Cap::SysRawio,
        Cap::SysChroot,
        Cap::SysPtrace,
        Cap::SysPacct,
        Cap::SysAdmin,
        Cap::SysBoot,
        Cap::SysNice,
        Cap::SysResource,
        Cap::SysTime,
        Cap::SysTtyConfig,
        Cap::Mknod,
        Cap::Lease,
        Cap::AuditWrite,
        Cap::AuditControl,
        Cap::Setfcap,
        Cap::MacOverride,
        Cap::MacAdmin,
        Cap::Syslog,
        Cap::WakeAlarm,
    ];

    /// The capability's bit index (its kernel numeric value).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// The conventional `CAP_*` name.
    pub fn name(self) -> &'static str {
        match self {
            Cap::Chown => "CAP_CHOWN",
            Cap::DacOverride => "CAP_DAC_OVERRIDE",
            Cap::DacReadSearch => "CAP_DAC_READ_SEARCH",
            Cap::Fowner => "CAP_FOWNER",
            Cap::Fsetid => "CAP_FSETID",
            Cap::Kill => "CAP_KILL",
            Cap::Setgid => "CAP_SETGID",
            Cap::Setuid => "CAP_SETUID",
            Cap::Setpcap => "CAP_SETPCAP",
            Cap::LinuxImmutable => "CAP_LINUX_IMMUTABLE",
            Cap::NetBindService => "CAP_NET_BIND_SERVICE",
            Cap::NetBroadcast => "CAP_NET_BROADCAST",
            Cap::NetAdmin => "CAP_NET_ADMIN",
            Cap::NetRaw => "CAP_NET_RAW",
            Cap::IpcLock => "CAP_IPC_LOCK",
            Cap::IpcOwner => "CAP_IPC_OWNER",
            Cap::SysModule => "CAP_SYS_MODULE",
            Cap::SysRawio => "CAP_SYS_RAWIO",
            Cap::SysChroot => "CAP_SYS_CHROOT",
            Cap::SysPtrace => "CAP_SYS_PTRACE",
            Cap::SysPacct => "CAP_SYS_PACCT",
            Cap::SysAdmin => "CAP_SYS_ADMIN",
            Cap::SysBoot => "CAP_SYS_BOOT",
            Cap::SysNice => "CAP_SYS_NICE",
            Cap::SysResource => "CAP_SYS_RESOURCE",
            Cap::SysTime => "CAP_SYS_TIME",
            Cap::SysTtyConfig => "CAP_SYS_TTY_CONFIG",
            Cap::Mknod => "CAP_MKNOD",
            Cap::Lease => "CAP_LEASE",
            Cap::AuditWrite => "CAP_AUDIT_WRITE",
            Cap::AuditControl => "CAP_AUDIT_CONTROL",
            Cap::Setfcap => "CAP_SETFCAP",
            Cap::MacOverride => "CAP_MAC_OVERRIDE",
            Cap::MacAdmin => "CAP_MAC_ADMIN",
            Cap::Syslog => "CAP_SYSLOG",
            Cap::WakeAlarm => "CAP_WAKE_ALARM",
        }
    }
}

impl fmt::Display for Cap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of capabilities, stored as a 64-bit bitmask.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CapSet(u64);

impl CapSet {
    /// The empty capability set.
    pub const EMPTY: CapSet = CapSet(0);

    /// The full capability set (what root holds by default on Linux).
    pub fn full() -> CapSet {
        let mut s = CapSet::EMPTY;
        for c in Cap::ALL {
            s.add(c);
        }
        s
    }

    /// Builds a set from a slice of capabilities.
    pub fn from_caps(caps: &[Cap]) -> CapSet {
        let mut s = CapSet::EMPTY;
        for &c in caps {
            s.add(c);
        }
        s
    }

    /// Returns whether the set contains `cap`.
    pub fn has(self, cap: Cap) -> bool {
        self.0 & (1u64 << cap.index()) != 0
    }

    /// Adds `cap` to the set.
    pub fn add(&mut self, cap: Cap) {
        self.0 |= 1u64 << cap.index();
    }

    /// Removes `cap` from the set.
    pub fn remove(&mut self, cap: Cap) {
        self.0 &= !(1u64 << cap.index());
    }

    /// Returns whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of capabilities in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Set intersection.
    pub fn intersect(self, other: CapSet) -> CapSet {
        CapSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: CapSet) -> CapSet {
        CapSet(self.0 | other.0)
    }

    /// Returns whether `self` is a subset of `other`.
    pub fn is_subset_of(self, other: CapSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over the capabilities contained in the set.
    pub fn iter(self) -> impl Iterator<Item = Cap> {
        Cap::ALL.into_iter().filter(move |c| self.has(*c))
    }
}

impl fmt::Debug for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for CapSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            f.write_str(c.name())?;
            first = false;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

impl FromIterator<Cap> for CapSet {
    fn from_iter<T: IntoIterator<Item = Cap>>(iter: T) -> Self {
        let mut s = CapSet::EMPTY;
        for c in iter {
            s.add(c);
        }
        s
    }
}

/// The capability set the paper reports as required to change a password on
/// stock Linux (§3.2) — six capabilities, illustrating how coarse the model
/// is relative to the actual task.
pub fn password_change_caps() -> CapSet {
    CapSet::from_caps(&[
        Cap::SysAdmin,
        Cap::Chown,
        Cap::DacOverride,
        Cap::Setuid,
        Cap::DacReadSearch,
        Cap::Fowner,
    ])
}

/// The capability set the X server requires to set the video mode on stock
/// Linux (§3.2) — four capabilities.
pub fn video_mode_caps() -> CapSet {
    CapSet::from_caps(&[Cap::Chown, Cap::DacOverride, Cap::SysRawio, Cap::SysAdmin])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_36_capabilities() {
        assert_eq!(Cap::ALL.len(), 36);
        assert_eq!(CapSet::full().len(), 36);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in Cap::ALL.iter().enumerate() {
            assert_eq!(c.index() as usize, i);
        }
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut s = CapSet::EMPTY;
        assert!(!s.has(Cap::SysAdmin));
        s.add(Cap::SysAdmin);
        assert!(s.has(Cap::SysAdmin));
        s.remove(Cap::SysAdmin);
        assert!(!s.has(Cap::SysAdmin));
        assert!(s.is_empty());
    }

    #[test]
    fn subset_semantics() {
        let small = CapSet::from_caps(&[Cap::NetRaw]);
        let big = CapSet::from_caps(&[Cap::NetRaw, Cap::NetAdmin]);
        assert!(small.is_subset_of(big));
        assert!(!big.is_subset_of(small));
        assert!(small.is_subset_of(CapSet::full()));
    }

    #[test]
    fn paper_capability_counts() {
        assert_eq!(password_change_caps().len(), 6);
        assert_eq!(video_mode_caps().len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Cap::SysAdmin.name(), "CAP_SYS_ADMIN");
        assert_eq!(Cap::NetBindService.to_string(), "CAP_NET_BIND_SERVICE");
        assert_eq!(CapSet::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn union_and_intersection() {
        let a = CapSet::from_caps(&[Cap::Chown, Cap::Kill]);
        let b = CapSet::from_caps(&[Cap::Kill, Cap::Setuid]);
        let u = a.union(b);
        let i = a.intersect(b);
        assert_eq!(u.len(), 3);
        assert_eq!(i.len(), 1);
        assert!(i.has(Cap::Kill));
    }
}
