//! Process system calls: fork, execve, exit, wait.
//!
//! `execve` is where the setuid *bit* acts (§3.1) and where Protego
//! resolves pending restricted transitions recorded at `setuid` time
//! (§4.3). The kernel performs the credential mathematics; running the new
//! program image is the caller's (userland runtime's) job.

use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{EnvPolicy, ExecCtx, ExecDecision};
use crate::task::{FdObject, Pid};
use crate::trace::{AuditObject, DecisionKind, Hook};
use crate::vfs::{Access, InodeData};

impl Kernel {
    /// `fork(2)`.
    pub fn sys_fork(&self, pid: Pid) -> KResult<Pid> {
        let parent = self.task(pid)?.clone();
        let child_pid = self.alloc_pid();
        let mut child = parent;
        child.pid = child_pid;
        child.ppid = pid;
        child.exit_status = None;
        // A pending setuid-on-exec is a property of the calling task, not
        // inheritable — otherwise a child could consume the delegation.
        child.pending_setuid = None;
        // Bump reference counts for duplicated descriptors.
        let mut open_inos = Vec::new();
        for fd in child.fds.iter().flatten() {
            match fd.object {
                FdObject::PipeRead(id) => self.pipes.dup_read(id),
                FdObject::PipeWrite(id) => self.pipes.dup_write(id),
                FdObject::File { ino, .. } => open_inos.push(ino),
                _ => {}
            }
        }
        for ino in open_inos {
            self.vfs.inc_open(ino);
        }
        self.insert_task(child);
        Ok(child_pid)
    }

    /// `execve(2)`. Returns the resolved absolute path of the new image.
    pub fn sys_execve(&self, pid: Pid, path: &str) -> KResult<String> {
        let r = self.walk(pid, path)?;
        {
            let inode = self.vfs.inode(r.ino);
            if inode.data.is_dir() {
                return Err(Errno::EISDIR);
            }
            if !matches!(inode.data, InodeData::Regular(_)) {
                return Err(Errno::EACCES);
            }
        }
        self.check_access(pid, r.ino, Access::EXEC)?;
        let abs = self.vfs.path_of(r.ino);

        // Mount flags covering the binary.
        let (nosuid, noexec) = self
            .vfs
            .mounts()
            .iter()
            .filter(|m| abs.starts_with(&format!("{}/", m.mountpoint)) || abs == m.mountpoint)
            .max_by_key(|m| m.mountpoint.len())
            .map(|m| (m.options.nosuid, m.options.noexec))
            .unwrap_or((false, false));
        if noexec {
            return Err(Errno::EACCES);
        }

        let (file_owner, file_group, setuid_bit, setgid_bit) = {
            let inode = self.vfs.inode(r.ino);
            (
                inode.uid,
                inode.gid,
                inode.mode.is_setuid() && !nosuid,
                inode.mode.is_setgid() && !nosuid,
            )
        };

        let pending = self.task_mut(pid)?.pending_setuid.take();

        let mut attempts = 0;
        let decision = loop {
            // Scoped: the task guard must drop before the arms below
            // emit events or re-run authentication.
            let ctx = {
                let t = self.task(pid)?;
                ExecCtx {
                    cred: t.cred.clone(),
                    binary: abs.clone(),
                    file_owner,
                    file_group,
                    setuid_bit,
                    setgid_bit,
                    pending: pending.clone(),
                    last_auth: t.last_auth,
                    last_auth_scope: t.last_auth_scope,
                    now: self.clock(),
                }
            };
            let hook_decision = self.lsm().bprm_check(&ctx);
            match hook_decision {
                ExecDecision::NeedAuth(scope) => {
                    attempts += 1;
                    if attempts > 1 || !self.run_auth(pid, scope) {
                        let msg = format!("exec: auth failed for {}", abs);
                        self.emit_lsm_event(
                            pid,
                            "exec",
                            Hook::BprmCheck,
                            DecisionKind::Deny,
                            Some(Errno::EACCES),
                            AuditObject::Binary(abs.clone()),
                            msg,
                        );
                        return Err(Errno::EACCES);
                    }
                }
                other => break other,
            }
        };

        match decision {
            ExecDecision::UseDefault => {
                let mut t = self.task_mut(pid)?;
                if setuid_bit {
                    t.cred.apply_setuid_bit(file_owner);
                }
                if setgid_bit {
                    t.cred.apply_setgid_bit(file_group);
                }
            }
            ExecDecision::Transition { cred, env } => {
                let new_euid = cred.euid;
                {
                    // Scoped: drop the task write guard before emitting
                    // (the emit path re-reads the task table).
                    let mut t = self.task_mut(pid)?;
                    t.cred = cred;
                    match env {
                        EnvPolicy::KeepAll => {}
                        EnvPolicy::ClearExcept(keep) => {
                            t.env.retain(|(k, _)| {
                                k == "PATH" || k == "TERM" || keep.iter().any(|x| x == k)
                            });
                        }
                    }
                }
                let msg = format!("exec: lsm transition {} -> euid {}", abs, new_euid);
                self.emit_lsm_event(
                    pid,
                    "execve",
                    Hook::BprmCheck,
                    DecisionKind::Allow,
                    None,
                    AuditObject::Binary(abs.clone()),
                    msg,
                );
            }
            ExecDecision::Deny(e) => {
                let msg = format!("exec: lsm denied {} ({})", abs, e.name());
                self.emit_lsm_event(
                    pid,
                    "execve",
                    Hook::BprmCheck,
                    DecisionKind::Deny,
                    Some(e),
                    AuditObject::Binary(abs.clone()),
                    msg,
                );
                return Err(e);
            }
            ExecDecision::NeedAuth(_) => unreachable!("resolved above"),
        }

        // Close-on-exec descriptors.
        let mut to_close = Vec::new();
        {
            let mut t = self.task_mut(pid)?;
            for (i, slot) in t.fds.iter_mut().enumerate() {
                if slot.as_ref().map(|f| f.cloexec).unwrap_or(false) {
                    if let Some(fd) = slot.take() {
                        to_close.push((i, fd));
                    }
                }
            }
        }
        for (_, fd) in to_close {
            self.release_fd_object(fd.object);
        }

        self.task_mut(pid)?.binary = abs.clone();
        // The task's image changed: drop its cached seccomp profile
        // selection so the next dispatched call re-selects by the new
        // binary (§15 exec re-selection).
        self.seccomp.forget_pid(pid);
        let msg = format!("exec: pid {} -> {}", pid.0, abs);
        self.emit_kernel_event(
            pid,
            "execve",
            Hook::BprmCheck,
            DecisionKind::Info,
            None,
            AuditObject::Binary(abs.clone()),
            msg,
        );
        Ok(abs)
    }

    /// `unshare(2)` — namespace creation (§4.6).
    ///
    /// Pre-3.8 semantics: every namespace kind requires CAP_SYS_ADMIN.
    /// With [`crate::kernel::Kernel::unprivileged_userns`] set (>= 3.8),
    /// anyone may create a *user* namespace, and a task inside one may
    /// unshare the other kinds — the change that deprivileged
    /// chromium-sandbox without any Protego mechanism.
    pub fn sys_unshare(&self, pid: Pid, kind: crate::task::NsKind) -> KResult<()> {
        use crate::caps::Cap;
        use crate::task::NsKind;
        let privileged = self.capable(pid, Cap::SysAdmin);
        let allowed = match kind {
            NsKind::User => privileged || self.unprivileged_userns,
            _ => {
                privileged
                    || (self.unprivileged_userns && self.task(pid)?.in_namespace(NsKind::User))
            }
        };
        if !allowed {
            return Err(Errno::EPERM);
        }
        let mut t = self.task_mut(pid)?;
        if !t.namespaces.contains(&kind) {
            t.namespaces.push(kind);
        }
        Ok(())
    }

    /// `exit(2)`.
    pub fn sys_exit(&self, pid: Pid, status: i32) -> KResult<()> {
        let fds: Vec<_> = {
            let mut t = self.task_mut(pid)?;
            t.exit_status = Some(status);
            t.fds.iter_mut().filter_map(|f| f.take()).collect()
        };
        for fd in fds {
            self.release_fd_object(fd.object);
        }
        Ok(())
    }

    /// `waitpid(2)` — reaps an exited child and returns its status.
    pub fn sys_wait(&self, pid: Pid, child: Pid) -> KResult<i32> {
        // Scoped: the read guard must drop before `reap` write-locks the
        // same shard.
        let status = {
            let c = self.task(child)?;
            if c.ppid != pid {
                return Err(Errno::ESRCH);
            }
            c.exit_status.ok_or(Errno::EAGAIN)?
        };
        self.reap(child)?;
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Credentials, Gid, Uid};
    use crate::net::SimNet;
    use crate::syscall::OpenFlags;
    use crate::vfs::Mode;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        k.vfs
            .install_file("/bin/sh", b"#!sim", Mode(0o755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/bin/passwd", b"#!sim", Mode(0o4755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/opt/private", b"#!sim", Mode(0o700), Uid::ROOT, Gid::ROOT)
            .unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        (k, root, user)
    }

    #[test]
    fn fork_copies_credentials() {
        let (k, _, user) = boot();
        let child = k.sys_fork(user).unwrap();
        assert_ne!(child, user);
        assert_eq!(k.task(child).unwrap().cred, k.task(user).unwrap().cred);
        assert_eq!(k.task(child).unwrap().ppid, user);
    }

    #[test]
    fn exec_plain_binary_keeps_cred() {
        let (k, _, user) = boot();
        let abs = k.sys_execve(user, "/bin/sh").unwrap();
        assert_eq!(abs, "/bin/sh");
        assert_eq!(k.task(user).unwrap().cred.euid, Uid(1000));
    }

    #[test]
    fn exec_setuid_root_binary_raises_euid() {
        let (k, _, user) = boot();
        k.sys_execve(user, "/bin/passwd").unwrap();
        let t = k.task(user).unwrap();
        let c = &t.cred;
        assert_eq!(c.ruid, Uid(1000));
        assert_eq!(c.euid, Uid::ROOT);
        assert!(c.has_cap(crate::caps::Cap::SysAdmin));
    }

    #[test]
    fn exec_requires_x_permission() {
        let (k, _, user) = boot();
        assert_eq!(
            k.sys_execve(user, "/opt/private").unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn exec_missing_is_enoent() {
        let (k, _, user) = boot();
        assert_eq!(k.sys_execve(user, "/bin/nope").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn nosuid_mount_suppresses_setuid_bit() {
        let (k, root, user) = boot();
        k.install_standard_devices().unwrap();
        k.vfs.mkdir_p("/mnt/usb").unwrap();
        k.sys_mount(root, "/dev/sdb1", "/mnt/usb", "vfat", "nosuid")
            .unwrap();
        // Drop a setuid-root binary onto the removable media.
        k.write_file(root, "/mnt/usb/evil", b"#!sim", Mode(0o755))
            .unwrap();
        k.sys_chmod(root, "/mnt/usb/evil", Mode(0o4755)).unwrap();
        k.sys_execve(user, "/mnt/usb/evil").unwrap();
        assert_eq!(k.task(user).unwrap().cred.euid, Uid(1000));
    }

    #[test]
    fn cloexec_fds_closed_on_exec() {
        let (k, _, user) = boot();
        k.vfs.mkdir_p("/tmp").unwrap();
        let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
        k.vfs.inode_mut(t).mode = Mode(0o1777);
        k.write_file(user, "/tmp/f", b"x", Mode(0o644)).unwrap();
        let mut fl = OpenFlags::read_only();
        fl.cloexec = true;
        let fd_c = k.sys_open(user, "/tmp/f", fl).unwrap();
        let fd_k = k.sys_open(user, "/tmp/f", OpenFlags::read_only()).unwrap();
        k.sys_execve(user, "/bin/sh").unwrap();
        assert!(k.task(user).unwrap().fd(fd_c).is_err());
        assert!(k.task(user).unwrap().fd(fd_k).is_ok());
    }

    #[test]
    fn exit_and_wait() {
        let (k, _, user) = boot();
        let child = k.sys_fork(user).unwrap();
        assert_eq!(k.sys_wait(user, child).unwrap_err(), Errno::EAGAIN);
        k.sys_exit(child, 7).unwrap();
        assert_eq!(k.sys_wait(user, child).unwrap(), 7);
        assert_eq!(k.task(child).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn wait_on_non_child_is_esrch() {
        let (k, root, user) = boot();
        let child = k.sys_fork(user).unwrap();
        k.sys_exit(child, 0).unwrap();
        assert_eq!(k.sys_wait(root, child).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn fork_bumps_pipe_refcounts() {
        let (k, _, user) = boot();
        let (r, w) = k.sys_pipe(user).unwrap();
        let child = k.sys_fork(user).unwrap();
        // Parent closes both ends; child's copies keep the pipe alive.
        k.sys_close(user, r).unwrap();
        k.sys_close(user, w).unwrap();
        k.sys_write(child, w, b"alive").unwrap();
        let mut buf = Vec::new();
        assert_eq!(k.sys_read(child, r, &mut buf, 16).unwrap(), 5);
    }
}
