//! Network system calls: socket, bind, listen/connect/accept, send/recv,
//! raw packet transmission, and routing-table ioctls.
//!
//! Three of the paper's eight privileged interfaces live here:
//!
//! * `socket` — raw/packet sockets require CAP_NET_RAW on stock Linux;
//!   Protego allows anyone but filters outgoing packets (§4.1.1).
//! * `bind` — ports <1024 require CAP_NET_BIND_SERVICE on stock Linux;
//!   Protego allocates each low port to a (binary, uid) pair (§4.1.3).
//! * routing ioctls — CAP_NET_ADMIN on stock Linux; Protego admits
//!   non-conflicting additions by unprivileged users (§4.1.2).
//!
//! Locking discipline: the socket table (`self.net`), netfilter chain, and
//! route table each sit behind their own [`crate::sync::Locked`] wrapper.
//! Guards are scoped so none is held across an audit emission, an LSM hook,
//! or a `simnet` delivery — see DESIGN.md §13 for the lock hierarchy.

use crate::caps::Cap;
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{BindRequest, Decision};
use crate::net::{
    Domain, IcmpKind, Ipv4, Packet, PacketMeta, PortProto, Route, SockId, SockType, StreamState,
    Verdict, L4,
};
use crate::syscall::abi::NetfilterRule;
use crate::task::{Fd, FdObject, Pid};
use crate::trace::{AuditObject, DecisionKind, Hook, Provenance};

/// Netfilter administration operations (the iptables backend).
#[derive(Clone, Debug)]
pub enum NetfilterOp {
    /// Append a rule to the OUTPUT chain.
    Append(crate::net::Rule),
    /// Insert a rule at the head of the chain.
    InsertFront(crate::net::Rule),
    /// Delete all rules with this name.
    DeleteByName(String),
    /// Remove every rule.
    Flush,
}

/// Routing-table operations carried by `SIOCADDRT`/`SIOCDELRT` ioctls.
#[derive(Clone, Debug)]
pub enum RouteOp {
    /// Add a route.
    Add(Route),
    /// Delete the route for (dest, prefix).
    Del {
        /// Destination network.
        dest: Ipv4,
        /// Prefix length.
        prefix: u8,
    },
}

impl Kernel {
    fn fd_socket(&self, pid: Pid, fd: i32) -> KResult<SockId> {
        match self.task(pid)?.fd(fd)?.object {
            FdObject::Socket(sid) => Ok(sid),
            _ => Err(Errno::ENOTCONN),
        }
    }

    /// `socket(2)`.
    pub fn sys_socket(
        &self,
        pid: Pid,
        domain: Domain,
        stype: SockType,
        protocol: u8,
    ) -> KResult<i32> {
        let cred = self.task(pid)?.cred.clone();
        let needs_raw_cap = matches!(stype, SockType::Raw) || matches!(domain, Domain::Packet);
        let decision = self.lsm().socket_create(&cred, domain, stype, protocol);
        match decision {
            Decision::UseDefault => {
                if needs_raw_cap && !self.capable(pid, Cap::NetRaw) {
                    let msg = format!(
                        "socket: raw socket denied for {} (no CAP_NET_RAW)",
                        cred.euid
                    );
                    self.emit_kernel_event(
                        pid,
                        "socket",
                        Hook::SocketCreate,
                        DecisionKind::Deny,
                        Some(Errno::EPERM),
                        AuditObject::None,
                        msg,
                    );
                    return Err(Errno::EPERM);
                }
            }
            Decision::Allow => {
                if needs_raw_cap {
                    let msg = format!(
                        "socket: lsm granted raw socket to {} (netfilter-scoped)",
                        cred.euid
                    );
                    self.emit_lsm_event(
                        pid,
                        "socket",
                        Hook::SocketCreate,
                        DecisionKind::Allow,
                        None,
                        AuditObject::None,
                        msg,
                    );
                }
            }
            Decision::Deny(e) => {
                let msg = format!("socket: lsm denied socket to {} ({})", cred.euid, e.name());
                self.emit_lsm_event(
                    pid,
                    "socket",
                    Hook::SocketCreate,
                    DecisionKind::Deny,
                    Some(e),
                    AuditObject::None,
                    msg,
                );
                return Err(e);
            }
        }
        let binary = self.task(pid)?.binary.clone();
        let sid = self
            .net
            .write()
            .alloc(domain, stype, protocol, pid.0, cred.euid, binary);
        self.task_mut(pid)?.fd_install(Fd {
            object: FdObject::Socket(sid),
            cloexec: false,
        })
    }

    /// `bind(2)`.
    pub fn sys_bind(&self, pid: Pid, fd: i32, addr: Ipv4, port: u16) -> KResult<()> {
        let sid = self.fd_socket(pid, fd)?;
        let stype = self.net.read().get(sid)?.stype;
        if port != 0 && port < 1024 && !matches!(stype, SockType::Raw) {
            let cred = self.task(pid)?.cred.clone();
            let req = BindRequest {
                port,
                binary: self.task(pid)?.binary.clone(),
                tcp: matches!(stype, SockType::Stream),
            };
            let object = AuditObject::Port { port, tcp: req.tcp };
            let decision = self.lsm().socket_bind(&cred, &req);
            match decision {
                Decision::UseDefault => {
                    if !self.capable(pid, Cap::NetBindService) {
                        let msg = format!(
                            "bind: port {} denied for {} (no CAP_NET_BIND_SERVICE)",
                            port, cred.euid
                        );
                        self.emit_kernel_event(
                            pid,
                            "bind",
                            Hook::SocketBind,
                            DecisionKind::Deny,
                            Some(Errno::EACCES),
                            object,
                            msg,
                        );
                        return Err(Errno::EACCES);
                    }
                }
                Decision::Allow => {
                    let msg = format!(
                        "bind: lsm granted port {} to ({}, {})",
                        port, req.binary, cred.euid
                    );
                    self.emit_lsm_event(
                        pid,
                        "bind",
                        Hook::SocketBind,
                        DecisionKind::Allow,
                        None,
                        object,
                        msg,
                    );
                }
                Decision::Deny(e) => {
                    let msg = format!(
                        "bind: lsm denied port {} to ({}, {})",
                        port, req.binary, cred.euid
                    );
                    self.emit_lsm_event(
                        pid,
                        "bind",
                        Hook::SocketBind,
                        DecisionKind::Deny,
                        Some(e),
                        object,
                        msg,
                    );
                    return Err(e);
                }
            }
        }
        self.net.write().bind(sid, addr, port)
    }

    /// `listen(2)`.
    pub fn sys_listen(&self, pid: Pid, fd: i32) -> KResult<()> {
        let sid = self.fd_socket(pid, fd)?;
        let mut net = self.net.write();
        let s = net.get_mut(sid)?;
        if !matches!(s.stype, SockType::Stream) {
            return Err(Errno::EOPNOTSUPP);
        }
        if s.bound.is_none() {
            return Err(Errno::EINVAL);
        }
        s.state = StreamState::Listening;
        Ok(())
    }

    /// `connect(2)`.
    pub fn sys_connect(&self, pid: Pid, fd: i32, addr: Ipv4, port: u16) -> KResult<()> {
        let sid = self.fd_socket(pid, fd)?;
        let stype = self.net.read().get(sid)?.stype;
        match stype {
            SockType::Dgram | SockType::Raw => {
                self.net.write().get_mut(sid)?.connected = Some((addr, port));
                Ok(())
            }
            SockType::Stream => {
                if self.simnet.is_local(addr) {
                    // Loopback connection to a local listener. The whole
                    // handshake mutates only the socket table, so one write
                    // guard covers it.
                    let mut net = self.net.write();
                    let listener = net
                        .port_owner(PortProto::Tcp, port)
                        .filter(|s| s.state == StreamState::Listening)
                        .map(|s| (s.id, s.owner_pid, s.owner_uid, s.owner_binary.clone()))
                        .ok_or(Errno::ECONNREFUSED)?;
                    let conn = net.alloc(
                        Domain::Inet,
                        SockType::Stream,
                        0,
                        listener.1,
                        listener.2,
                        listener.3,
                    );
                    net.get_mut(conn)?.bound = Some((addr, port));
                    net.make_pair(sid, conn)?;
                    net.get_mut(sid)?.connected = Some((addr, port));
                    net.get_mut(listener.0)?.backlog.push_back(conn);
                    Ok(())
                } else {
                    if self.routes.read().lookup(addr).is_none() {
                        return Err(Errno::ENETUNREACH);
                    }
                    if !self.simnet.tcp_accepts(addr, port) {
                        return Err(Errno::ECONNREFUSED);
                    }
                    let mut net = self.net.write();
                    let s = net.get_mut(sid)?;
                    s.connected = Some((addr, port));
                    s.state = StreamState::Connected;
                    Ok(())
                }
            }
        }
    }

    /// `accept(2)` — returns a new fd for the next pending connection.
    pub fn sys_accept(&self, pid: Pid, fd: i32) -> KResult<i32> {
        let sid = self.fd_socket(pid, fd)?;
        let conn = {
            let mut net = self.net.write();
            let s = net.get_mut(sid)?;
            if s.state != StreamState::Listening {
                return Err(Errno::EINVAL);
            }
            s.backlog.pop_front().ok_or(Errno::EAGAIN)?
        };
        self.task_mut(pid)?.fd_install(Fd {
            object: FdObject::Socket(conn),
            cloexec: false,
        })
    }

    /// `send(2)` on a connected socket.
    pub fn sys_send(&self, pid: Pid, fd: i32, data: &[u8]) -> KResult<usize> {
        let sid = self.fd_socket(pid, fd)?;
        let (stype, peer, connected, state) = {
            let net = self.net.read();
            let s = net.get(sid)?;
            (s.stype, s.peer, s.connected, s.state)
        };
        match stype {
            SockType::Stream => {
                if let Some(peer) = peer {
                    let mut net = self.net.write();
                    let p = net.get_mut(peer)?;
                    p.rx_bytes.extend(data.iter().copied());
                    Ok(data.len())
                } else if let Some((addr, port)) = connected {
                    if state != StreamState::Connected {
                        return Err(Errno::ENOTCONN);
                    }
                    // Remote echo service answers; other services consume.
                    if port == 7 {
                        let mut net = self.net.write();
                        let me = net.get_mut(sid)?;
                        me.rx_bytes.extend(data.iter().copied());
                    }
                    let _ = addr;
                    Ok(data.len())
                } else {
                    Err(Errno::ENOTCONN)
                }
            }
            SockType::Dgram => {
                let (addr, port) = connected.ok_or(Errno::ENOTCONN)?;
                self.sys_sendto(pid, fd, addr, port, data)
            }
            SockType::Raw => Err(Errno::EINVAL),
        }
    }

    /// `recv(2)` on a stream socket.
    pub fn sys_recv(&self, pid: Pid, fd: i32, max: usize) -> KResult<Vec<u8>> {
        let sid = self.fd_socket(pid, fd)?;
        let mut net = self.net.write();
        let s = net.get_mut(sid)?;
        match s.stype {
            SockType::Stream => {
                if s.rx_bytes.is_empty() {
                    return match s.state {
                        StreamState::Reset => Ok(Vec::new()),
                        _ => Err(Errno::EAGAIN),
                    };
                }
                let n = max.min(s.rx_bytes.len());
                Ok(s.rx_bytes.drain(..n).collect())
            }
            _ => Err(Errno::EOPNOTSUPP),
        }
    }

    /// `recvfrom(2)` on a datagram/raw socket: returns the next packet.
    pub fn sys_recv_packet(&self, pid: Pid, fd: i32) -> KResult<Packet> {
        let sid = self.fd_socket(pid, fd)?;
        let mut net = self.net.write();
        let s = net.get_mut(sid)?;
        s.rx_packets.pop_front().ok_or(Errno::EAGAIN)
    }

    /// `sendto(2)` on a UDP socket: the kernel builds the headers, so the
    /// source port cannot be forged.
    pub fn sys_sendto(
        &self,
        pid: Pid,
        fd: i32,
        addr: Ipv4,
        port: u16,
        data: &[u8],
    ) -> KResult<usize> {
        let sid = self.fd_socket(pid, fd)?;
        if self.net.read().get(sid)?.bound.is_none() {
            self.net.write().bind(sid, Ipv4::ANY, 0)?;
        }
        let src_port = {
            let net = self.net.read();
            let s = net.get(sid)?;
            if !matches!(s.stype, SockType::Dgram) {
                return Err(Errno::EOPNOTSUPP);
            }
            s.bound.map(|b| b.1).unwrap_or(0)
        };
        let cred_uid = self.task(pid)?.cred.euid;
        let pkt = Packet {
            src: self
                .simnet
                .local_ips
                .last()
                .copied()
                .unwrap_or(Ipv4::LOOPBACK),
            dst: addr,
            ttl: 64,
            l4: L4::Udp {
                src_port,
                dst_port: port,
            },
            payload: data.to_vec(),
            from_raw_socket: false,
            sender_uid: cred_uid,
        };
        self.transmit(pid, sid, pkt)?;
        Ok(data.len())
    }

    /// Raw transmission: the caller constructed all headers (§4.1.1). The
    /// packet is subject to the OUTPUT netfilter chain with spoof analysis.
    pub fn sys_send_packet(&self, pid: Pid, fd: i32, mut pkt: Packet) -> KResult<()> {
        let sid = self.fd_socket(pid, fd)?;
        {
            let net = self.net.read();
            let s = net.get(sid)?;
            if !matches!(s.stype, SockType::Raw) && !matches!(s.domain, Domain::Packet) {
                return Err(Errno::EOPNOTSUPP);
            }
        }
        pkt.from_raw_socket = true;
        pkt.sender_uid = self.task(pid)?.cred.euid;
        self.transmit(pid, sid, pkt)
    }

    /// Common output path: netfilter, then routing, then delivery; replies
    /// are queued on the sending socket.
    fn transmit(&self, pid: Pid, sid: SockId, pkt: Packet) -> KResult<()> {
        // Spoof analysis: does the claimed source port belong to a socket
        // of a different user?
        let spoofed = match (&pkt.l4, pkt.from_raw_socket) {
            (L4::Tcp { src_port, .. }, true) | (L4::Udp { src_port, .. }, true) => self
                .net
                .read()
                .port_owner(
                    if matches!(pkt.l4, L4::Tcp { .. }) {
                        PortProto::Tcp
                    } else {
                        PortProto::Udp
                    },
                    *src_port,
                )
                .map(|owner| owner.owner_uid != pkt.sender_uid)
                .unwrap_or(false),
            _ => false,
        };
        // The write guard is scoped to this one statement: `evaluate`
        // updates per-rule hit counters, and the guard must be gone before
        // the audit emission below.
        let eval = self.netfilter.write().evaluate(&PacketMeta {
            packet: &pkt,
            spoofed_src_port: spoofed,
        });
        if eval.verdict == Verdict::Drop {
            let msg = format!(
                "netfilter: dropped {:?} from {} (rule {:?})",
                pkt.l4, pkt.sender_uid, eval.rule
            );
            // The matched netfilter rule is the provenance here, so build
            // it explicitly rather than via the LSM rule channel.
            let provenance = Provenance::lsm(
                "netfilter",
                Hook::Netfilter,
                eval.rule.clone(),
                DecisionKind::Deny,
                Some(Errno::EPERM),
            );
            let object = AuditObject::Packet(format!("{:?} -> {}", pkt.l4, pkt.dst));
            self.emit_event(pid.0, "send", object, provenance, msg);
            return Err(Errno::EPERM);
        }

        if self.simnet.is_local(pkt.dst) {
            self.deliver_local(pkt);
            return Ok(());
        }
        if self.routes.read().lookup(pkt.dst).is_none() {
            return Err(Errno::ENETUNREACH);
        }
        let replies = self.simnet.deliver(&pkt);
        let mut net = self.net.write();
        for reply in replies {
            // Replies route back to the socket that sent the probe, unless
            // a bound UDP port matches more precisely.
            if let L4::Udp { dst_port, .. } = reply.l4 {
                if let Some(owner) = net.port_owner(PortProto::Udp, dst_port) {
                    let oid = owner.id;
                    net.get_mut(oid)?.rx_packets.push_back(reply);
                    continue;
                }
            }
            net.get_mut(sid)?.rx_packets.push_back(reply);
        }
        Ok(())
    }

    /// Delivers a packet addressed to this machine.
    fn deliver_local(&self, pkt: Packet) {
        match &pkt.l4 {
            L4::Udp { dst_port, .. } => {
                let mut net = self.net.write();
                if let Some(owner) = net.port_owner(PortProto::Udp, *dst_port) {
                    let oid = owner.id;
                    if let Ok(s) = net.get_mut(oid) {
                        s.rx_packets.push_back(pkt);
                    }
                }
            }
            L4::Icmp(IcmpKind::EchoRequest { id, seq }) => {
                // The local stack answers pings to itself.
                let reply = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ttl: 64,
                    l4: L4::Icmp(IcmpKind::EchoReply { id: *id, seq: *seq }),
                    payload: pkt.payload.clone(),
                    from_raw_socket: false,
                    sender_uid: crate::cred::Uid::ROOT,
                };
                // Deliver the reply to raw ICMP sockets of the original
                // sender's uid. One write guard covers scan and delivery.
                let mut net = self.net.write();
                let targets: Vec<SockId> = (0..)
                    .map_while(|i| {
                        net.get(SockId(i))
                            .ok()
                            .map(|s| (s.id, s.stype, s.owner_uid))
                    })
                    .filter(|(_, st, uid)| matches!(st, SockType::Raw) && *uid == pkt.sender_uid)
                    .map(|(id, _, _)| id)
                    .collect();
                for t in targets {
                    if let Ok(s) = net.get_mut(t) {
                        s.rx_packets.push_back(reply.clone());
                    }
                }
            }
            _ => {}
        }
    }

    /// `socketpair(2)` (AF_UNIX, SOCK_STREAM).
    pub fn sys_socketpair(&self, pid: Pid) -> KResult<(i32, i32)> {
        let cred = self.task(pid)?.cred.clone();
        let binary = self.task(pid)?.binary.clone();
        let (a, b) = {
            let mut net = self.net.write();
            let a = net.alloc(
                Domain::Unix,
                SockType::Stream,
                0,
                pid.0,
                cred.euid,
                binary.clone(),
            );
            let b = net.alloc(Domain::Unix, SockType::Stream, 0, pid.0, cred.euid, binary);
            net.make_pair(a, b)?;
            (a, b)
        };
        let mut t = self.task_mut(pid)?;
        let fa = t.fd_install(Fd {
            object: FdObject::Socket(a),
            cloexec: false,
        })?;
        let fb = t.fd_install(Fd {
            object: FdObject::Socket(b),
            cloexec: false,
        })?;
        Ok((fa, fb))
    }

    /// Netfilter administration (the iptables backend): appending,
    /// deleting, or flushing OUTPUT rules requires CAP_NET_ADMIN.
    pub fn sys_netfilter(&self, pid: Pid, op: NetfilterOp) -> KResult<()> {
        if !self.capable(pid, Cap::NetAdmin) {
            return Err(Errno::EPERM);
        }
        let mut nf = self.netfilter.write();
        match op {
            NetfilterOp::Append(rule) => nf.append(rule),
            NetfilterOp::InsertFront(rule) => nf.insert_front(rule),
            NetfilterOp::DeleteByName(name) => {
                if nf.delete_by_name(&name) == 0 {
                    return Err(Errno::ENOENT);
                }
            }
            NetfilterOp::Flush => nf.flush(),
        }
        Ok(())
    }

    /// Lists the OUTPUT chain (iptables -L). Readable by anyone, as rule
    /// listing discloses no secrets in this model.
    pub fn sys_netfilter_list(&self, pid: Pid) -> KResult<Vec<NetfilterRule>> {
        self.task(pid)?;
        Ok(self
            .netfilter
            .read()
            .rules()
            .iter()
            .map(NetfilterRule::from)
            .collect())
    }

    /// Routing-table ioctls (`SIOCADDRT` / `SIOCDELRT`).
    pub fn sys_ioctl_route(&self, pid: Pid, op: RouteOp) -> KResult<()> {
        match op {
            RouteOp::Add(mut route) => {
                let cred = self.task(pid)?.cred.clone();
                let object = AuditObject::Route(format!(
                    "{}/{} via {}",
                    route.dest, route.prefix, route.dev
                ));
                // The hook inspects the current table for conflicts
                // (§4.1.2); both guards drop before any emission below.
                let decision = {
                    let routes = self.routes.read();
                    self.lsm().ioctl_route_add(&cred, &route, &routes)
                };
                match decision {
                    Decision::UseDefault => {
                        if !self.capable(pid, Cap::NetAdmin) {
                            let msg = format!(
                                "route: add {}/{} denied for {} (no CAP_NET_ADMIN)",
                                route.dest, route.prefix, cred.ruid
                            );
                            self.emit_kernel_event(
                                pid,
                                "ioctl",
                                Hook::IoctlRoute,
                                DecisionKind::Deny,
                                Some(Errno::EPERM),
                                object,
                                msg,
                            );
                            return Err(Errno::EPERM);
                        }
                    }
                    Decision::Allow => {
                        let msg = format!(
                            "route: lsm granted {}/{} via {} to {}",
                            route.dest, route.prefix, route.dev, cred.ruid
                        );
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlRoute,
                            DecisionKind::Allow,
                            None,
                            object,
                            msg,
                        );
                    }
                    Decision::Deny(e) => {
                        let msg = format!(
                            "route: lsm denied {}/{} to {} ({})",
                            route.dest,
                            route.prefix,
                            cred.ruid,
                            e.name()
                        );
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlRoute,
                            DecisionKind::Deny,
                            Some(e),
                            object,
                            msg,
                        );
                        return Err(e);
                    }
                }
                route.created_by = self.task(pid)?.cred.ruid;
                self.routes.write().add(route)
            }
            RouteOp::Del { dest, prefix } => {
                let cred = self.task(pid)?.cred.clone();
                let owner = {
                    let routes = self.routes.read();
                    routes
                        .routes()
                        .iter()
                        .find(|r| {
                            r.dest.network(prefix) == dest.network(prefix) && r.prefix == prefix
                        })
                        .map(|r| r.created_by)
                        .ok_or(Errno::ENOENT)?
                };
                if owner != cred.ruid && !self.capable(pid, Cap::NetAdmin) {
                    let msg = format!(
                        "route: del {}/{} denied for {} (not owner, no CAP_NET_ADMIN)",
                        dest, prefix, cred.ruid
                    );
                    self.emit_kernel_event(
                        pid,
                        "ioctl",
                        Hook::IoctlRoute,
                        DecisionKind::Deny,
                        Some(Errno::EPERM),
                        AuditObject::Route(format!("{}/{}", dest, prefix)),
                        msg,
                    );
                    return Err(Errno::EPERM);
                }
                self.routes.write().remove(dest, prefix)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Credentials, Gid, Uid};
    use crate::net::SimNet;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::standard_topology());
        let root = k.spawn_init();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        // Default route so remote sends work.
        k.routes
            .write()
            .add(Route {
                dest: Ipv4::ANY,
                prefix: 0,
                gateway: Some(Ipv4::new(10, 0, 0, 1)),
                dev: "eth0".into(),
                created_by: Uid::ROOT,
            })
            .unwrap();
        (k, root, user)
    }

    #[test]
    fn user_udp_socket_ok_raw_denied() {
        let (k, _, user) = boot();
        assert!(k.sys_socket(user, Domain::Inet, SockType::Dgram, 0).is_ok());
        assert_eq!(
            k.sys_socket(user, Domain::Inet, SockType::Raw, 1)
                .unwrap_err(),
            Errno::EPERM
        );
        assert_eq!(
            k.sys_socket(user, Domain::Packet, SockType::Dgram, 0)
                .unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn root_raw_socket_ok() {
        let (k, root, _) = boot();
        assert!(k.sys_socket(root, Domain::Inet, SockType::Raw, 1).is_ok());
    }

    #[test]
    fn low_port_bind_requires_cap() {
        let (k, root, user) = boot();
        let fd_u = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        assert_eq!(
            k.sys_bind(user, fd_u, Ipv4::ANY, 80).unwrap_err(),
            Errno::EACCES
        );
        let fd_r = k
            .sys_socket(root, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        k.sys_bind(root, fd_r, Ipv4::ANY, 80).unwrap();
        // High ports are free for everyone.
        let fd_u2 = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        k.sys_bind(user, fd_u2, Ipv4::ANY, 8080).unwrap();
    }

    #[test]
    fn loopback_stream_roundtrip() {
        let (k, _, user) = boot();
        let srv = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        k.sys_bind(user, srv, Ipv4::ANY, 8080).unwrap();
        k.sys_listen(user, srv).unwrap();
        let cli = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        k.sys_connect(user, cli, Ipv4::LOOPBACK, 8080).unwrap();
        let conn = k.sys_accept(user, srv).unwrap();
        k.sys_send(user, cli, b"GET / HTTP/1.0\r\n").unwrap();
        let got = k.sys_recv(user, conn, 1024).unwrap();
        assert_eq!(got, b"GET / HTTP/1.0\r\n");
        k.sys_send(user, conn, b"200 OK").unwrap();
        assert_eq!(k.sys_recv(user, cli, 1024).unwrap(), b"200 OK");
    }

    #[test]
    fn connect_refused_without_listener() {
        let (k, _, user) = boot();
        let cli = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        assert_eq!(
            k.sys_connect(user, cli, Ipv4::LOOPBACK, 9999).unwrap_err(),
            Errno::ECONNREFUSED
        );
    }

    #[test]
    fn remote_tcp_connect() {
        let (k, _, user) = boot();
        let cli = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        k.sys_connect(user, cli, Ipv4::new(8, 8, 8, 8), 80).unwrap();
        let cli2 = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        assert_eq!(
            k.sys_connect(user, cli2, Ipv4::new(8, 8, 8, 8), 25)
                .unwrap_err(),
            Errno::ECONNREFUSED
        );
    }

    #[test]
    fn no_route_is_enetunreach() {
        let (k, _, user) = boot();
        k.routes.write().remove(Ipv4::ANY, 0).unwrap();
        let cli = k
            .sys_socket(user, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        assert_eq!(
            k.sys_connect(user, cli, Ipv4::new(8, 8, 8, 8), 80)
                .unwrap_err(),
            Errno::ENETUNREACH
        );
    }

    #[test]
    fn root_ping_roundtrip_via_raw_socket() {
        let (k, root, _) = boot();
        let fd = k.sys_socket(root, Domain::Inet, SockType::Raw, 1).unwrap();
        let pkt = Packet::echo_request(
            Ipv4::new(10, 0, 0, 100),
            Ipv4::new(8, 8, 8, 8),
            7,
            1,
            Uid::ROOT,
        );
        k.sys_send_packet(root, fd, pkt).unwrap();
        let reply = k.sys_recv_packet(root, fd).unwrap();
        assert_eq!(reply.l4, L4::Icmp(IcmpKind::EchoReply { id: 7, seq: 1 }));
    }

    #[test]
    fn udp_sendto_and_remote_echo() {
        let (k, _, user) = boot();
        let fd = k
            .sys_socket(user, Domain::Inet, SockType::Dgram, 0)
            .unwrap();
        // Port 7 on 8.8.8.8 echoes.
        k.sys_sendto(user, fd, Ipv4::new(8, 8, 8, 8), 7, b"hi")
            .unwrap();
        let reply = k.sys_recv_packet(user, fd).unwrap();
        assert_eq!(reply.payload, b"hi");
    }

    #[test]
    fn local_udp_delivery() {
        let (k, _, user) = boot();
        let rx = k
            .sys_socket(user, Domain::Inet, SockType::Dgram, 0)
            .unwrap();
        k.sys_bind(user, rx, Ipv4::ANY, 5000).unwrap();
        let tx = k
            .sys_socket(user, Domain::Inet, SockType::Dgram, 0)
            .unwrap();
        k.sys_sendto(user, tx, Ipv4::LOOPBACK, 5000, b"msg")
            .unwrap();
        let got = k.sys_recv_packet(user, rx).unwrap();
        assert_eq!(got.payload, b"msg");
    }

    #[test]
    fn socketpair_roundtrip() {
        let (k, _, user) = boot();
        let (a, b) = k.sys_socketpair(user).unwrap();
        k.sys_send(user, a, b"ping").unwrap();
        assert_eq!(k.sys_recv(user, b, 16).unwrap(), b"ping");
        k.sys_send(user, b, b"pong").unwrap();
        assert_eq!(k.sys_recv(user, a, 16).unwrap(), b"pong");
    }

    #[test]
    fn route_add_requires_cap_on_stock() {
        let (k, root, user) = boot();
        let r = Route {
            dest: Ipv4::new(192, 168, 7, 0),
            prefix: 24,
            gateway: None,
            dev: "ppp0".into(),
            created_by: Uid(1000),
        };
        assert_eq!(
            k.sys_ioctl_route(user, RouteOp::Add(r.clone()))
                .unwrap_err(),
            Errno::EPERM
        );
        k.sys_ioctl_route(root, RouteOp::Add(r)).unwrap();
        assert_eq!(k.routes.read().len(), 2);
    }

    #[test]
    fn route_del_owner_or_cap() {
        let (k, root, user) = boot();
        assert_eq!(
            k.sys_ioctl_route(
                user,
                RouteOp::Del {
                    dest: Ipv4::ANY,
                    prefix: 0
                }
            )
            .unwrap_err(),
            Errno::EPERM
        );
        k.sys_ioctl_route(
            root,
            RouteOp::Del {
                dest: Ipv4::ANY,
                prefix: 0,
            },
        )
        .unwrap();
        assert!(k.routes.read().is_empty());
    }

    #[test]
    fn recv_on_empty_socket_is_eagain() {
        let (k, _, user) = boot();
        let fd = k
            .sys_socket(user, Domain::Inet, SockType::Dgram, 0)
            .unwrap();
        assert_eq!(k.sys_recv_packet(user, fd).unwrap_err(), Errno::EAGAIN);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::cred::{Credentials, Gid, Uid};
    use crate::net::SimNet;

    fn boot() -> (Kernel, Pid) {
        let k = Kernel::new(SimNet::standard_topology());
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        (k, user)
    }

    #[test]
    fn accept_on_non_listener_is_einval() {
        let (k, u) = boot();
        let fd = k.sys_socket(u, Domain::Inet, SockType::Stream, 0).unwrap();
        assert_eq!(k.sys_accept(u, fd).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn listen_requires_bind() {
        let (k, u) = boot();
        let fd = k.sys_socket(u, Domain::Inet, SockType::Stream, 0).unwrap();
        assert_eq!(k.sys_listen(u, fd).unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn listen_on_dgram_is_eopnotsupp() {
        let (k, u) = boot();
        let fd = k.sys_socket(u, Domain::Inet, SockType::Dgram, 0).unwrap();
        assert_eq!(k.sys_listen(u, fd).unwrap_err(), Errno::EOPNOTSUPP);
    }

    #[test]
    fn send_on_unconnected_stream_is_enotconn() {
        let (k, u) = boot();
        let fd = k.sys_socket(u, Domain::Inet, SockType::Stream, 0).unwrap();
        assert_eq!(k.sys_send(u, fd, b"x").unwrap_err(), Errno::ENOTCONN);
    }

    #[test]
    fn recv_after_peer_close_is_eof() {
        let (k, u) = boot();
        let (a, b) = k.sys_socketpair(u).unwrap();
        k.sys_send(u, a, b"bye").unwrap();
        k.sys_close(u, a).unwrap();
        // Buffered data still drains...
        assert_eq!(k.sys_recv(u, b, 16).unwrap(), b"bye");
        // ...then EOF (empty read) rather than an error.
        assert_eq!(k.sys_recv(u, b, 16).unwrap(), b"");
    }

    #[test]
    fn socket_ops_on_file_fd_fail_cleanly() {
        let (k, u) = boot();
        k.vfs.mkdir_p("/tmp").unwrap();
        let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
        k.vfs.inode_mut(t).mode = crate::vfs::Mode(0o1777);
        k.write_file(u, "/tmp/f", b"", crate::vfs::Mode(0o644))
            .unwrap();
        let fd = k
            .sys_open(u, "/tmp/f", crate::syscall::OpenFlags::read_only())
            .unwrap();
        assert_eq!(k.sys_send(u, fd, b"x").unwrap_err(), Errno::ENOTCONN);
        assert_eq!(
            k.sys_bind(u, fd, Ipv4::ANY, 8080).unwrap_err(),
            Errno::ENOTCONN
        );
    }

    #[test]
    fn udp_connect_then_send_uses_sendto_path() {
        let (k, u) = boot();
        let rx = k.sys_socket(u, Domain::Inet, SockType::Dgram, 0).unwrap();
        k.sys_bind(u, rx, Ipv4::ANY, 7100).unwrap();
        let tx = k.sys_socket(u, Domain::Inet, SockType::Dgram, 0).unwrap();
        k.sys_connect(u, tx, Ipv4::LOOPBACK, 7100).unwrap();
        k.sys_send(u, tx, b"dgram").unwrap();
        assert_eq!(k.sys_recv_packet(u, rx).unwrap().payload, b"dgram");
    }
}
