//! Identity system calls: the `setuid`/`setgid` family (§4.3).
//!
//! Stock Linux allows an arbitrary transition iff the caller holds
//! CAP_SETUID (CAP_SETGID), else only transitions among {ruid, euid, suid}.
//! Protego's hook enforces the delegation rules mined from
//! `/etc/sudoers`: transitions may be granted outright, denied, gated on
//! recent authentication, or — when restricted to particular commands —
//! turned into a *pending* transition that resolves at `exec`.

use crate::caps::{Cap, CapSet};
use crate::cred::{Gid, Uid};
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{SetidCtx, SetuidDecision};
use crate::task::Pid;
use crate::trace::{AuditObject, DecisionKind, Hook};

impl Kernel {
    /// `setuid(2)`.
    pub fn sys_setuid(&self, pid: Pid, target: Uid) -> KResult<()> {
        let mut attempts = 0;
        loop {
            // The hook context borrows the task's credentials and binary
            // in place — no clones on the id fast path. Only the scalar
            // ruid survives the block for the audit messages.
            let (decision, ruid) = {
                let t = self.task(pid)?;
                let ctx = SetidCtx {
                    cred: &t.cred,
                    binary: &t.binary,
                    last_auth: t.last_auth,
                    last_auth_scope: t.last_auth_scope,
                    now: self.clock(),
                };
                (self.lsm().task_setuid(&ctx, target), t.cred.ruid)
            };
            match decision {
                SetuidDecision::UseDefault => return self.setuid_stock(pid, target),
                SetuidDecision::Allow => {
                    let msg = format!("setuid: lsm granted {} -> {}", ruid, target);
                    self.emit_lsm_event(
                        pid,
                        "setuid",
                        Hook::TaskSetuid,
                        DecisionKind::Allow,
                        None,
                        AuditObject::UidTarget(target.0),
                        msg,
                    );
                    let mut t = self.task_mut(pid)?;
                    t.cred.ruid = target;
                    t.cred.euid = target;
                    t.cred.suid = target;
                    t.cred.fsuid = target;
                    // Privilege is granted only *after* all checks pass
                    // (the paper's point about sudo-to-root).
                    t.cred.caps = if target.is_root() {
                        CapSet::full()
                    } else {
                        CapSet::EMPTY
                    };
                    return Ok(());
                }
                SetuidDecision::Deny(e) => {
                    let msg = format!("setuid: lsm denied {} -> {} ({})", ruid, target, e.name());
                    self.emit_lsm_event(
                        pid,
                        "setuid",
                        Hook::TaskSetuid,
                        DecisionKind::Deny,
                        Some(e),
                        AuditObject::UidTarget(target.0),
                        msg,
                    );
                    return Err(e);
                }
                SetuidDecision::Pending(p) => {
                    let msg = format!(
                        "setuid: pending transition {} -> {} restricted to {:?}",
                        ruid, target, p.allowed_binaries
                    );
                    self.emit_lsm_event(
                        pid,
                        "setuid",
                        Hook::TaskSetuid,
                        DecisionKind::Defer,
                        None,
                        AuditObject::UidTarget(target.0),
                        msg,
                    );
                    self.task_mut(pid)?.pending_setuid = Some(p);
                    // The call *reports* success; the credential change is
                    // deferred to exec (§4.3's change in error behaviour).
                    return Ok(());
                }
                SetuidDecision::NeedAuth(scope) => {
                    attempts += 1;
                    if attempts > 1 || !self.run_auth(pid, scope) {
                        let msg = format!("setuid: auth failed for {} -> {}", ruid, target);
                        self.emit_lsm_event(
                            pid,
                            "setuid",
                            Hook::TaskSetuid,
                            DecisionKind::Deny,
                            Some(Errno::EPERM),
                            AuditObject::UidTarget(target.0),
                            msg,
                        );
                        return Err(Errno::EPERM);
                    }
                }
            }
        }
    }

    /// Stock `setuid(2)` semantics.
    fn setuid_stock(&self, pid: Pid, target: Uid) -> KResult<()> {
        if self.capable(pid, Cap::Setuid) {
            let mut t = self.task_mut(pid)?;
            t.cred.ruid = target;
            t.cred.euid = target;
            t.cred.suid = target;
            t.cred.fsuid = target;
            if !target.is_root() {
                // Dropping root drops the capability set.
                t.cred.caps = CapSet::EMPTY;
            }
            return Ok(());
        }
        // The write guard is scoped so it is gone before the audit
        // emission (which re-reads the same task shard).
        let (allowed, ruid) = {
            let mut t = self.task_mut(pid)?;
            if target == t.cred.ruid || target == t.cred.suid {
                t.cred.euid = target;
                t.cred.fsuid = target;
                (true, t.cred.ruid)
            } else {
                (false, t.cred.ruid)
            }
        };
        if allowed {
            Ok(())
        } else {
            let msg = format!(
                "setuid: stock denied {} -> {} (no CAP_SETUID)",
                ruid, target
            );
            self.emit_kernel_event(
                pid,
                "setuid",
                Hook::TaskSetuid,
                DecisionKind::Deny,
                Some(Errno::EPERM),
                AuditObject::UidTarget(target.0),
                msg,
            );
            Err(Errno::EPERM)
        }
    }

    /// `seteuid(2)` — stock semantics only (no LSM hook needed: it cannot
    /// reach an identity the task does not already hold without
    /// CAP_SETUID).
    pub fn sys_seteuid(&self, pid: Pid, target: Uid) -> KResult<()> {
        if self.capable(pid, Cap::Setuid) {
            let mut t = self.task_mut(pid)?;
            t.cred.euid = target;
            t.cred.fsuid = target;
            return Ok(());
        }
        let mut t = self.task_mut(pid)?;
        if target == t.cred.ruid || target == t.cred.suid || target == t.cred.euid {
            t.cred.euid = target;
            t.cred.fsuid = target;
            Ok(())
        } else {
            Err(Errno::EPERM)
        }
    }

    /// `setgid(2)`.
    pub fn sys_setgid(&self, pid: Pid, target: Gid) -> KResult<()> {
        let mut attempts = 0;
        loop {
            // Clone-free hook context, as in sys_setuid; the scalar rgid
            // survives for the audit messages.
            let (decision, rgid) = {
                let t = self.task(pid)?;
                let ctx = SetidCtx {
                    cred: &t.cred,
                    binary: &t.binary,
                    last_auth: t.last_auth,
                    last_auth_scope: t.last_auth_scope,
                    now: self.clock(),
                };
                (self.lsm().task_setgid(&ctx, target), t.cred.rgid)
            };
            match decision {
                SetuidDecision::UseDefault => return self.setgid_stock(pid, target),
                SetuidDecision::Allow => {
                    let msg = format!("setgid: lsm granted {} -> {}", rgid.0, target.0);
                    self.emit_lsm_event(
                        pid,
                        "setgid",
                        Hook::TaskSetgid,
                        DecisionKind::Allow,
                        None,
                        AuditObject::GidTarget(target.0),
                        msg,
                    );
                    let mut t = self.task_mut(pid)?;
                    t.cred.rgid = target;
                    t.cred.egid = target;
                    t.cred.sgid = target;
                    if !t.cred.groups.contains(&target) {
                        t.cred.groups.push(target);
                    }
                    return Ok(());
                }
                SetuidDecision::Deny(e) => {
                    let msg = format!(
                        "setgid: lsm denied {} -> {} ({})",
                        rgid.0,
                        target.0,
                        e.name()
                    );
                    self.emit_lsm_event(
                        pid,
                        "setgid",
                        Hook::TaskSetgid,
                        DecisionKind::Deny,
                        Some(e),
                        AuditObject::GidTarget(target.0),
                        msg,
                    );
                    return Err(e);
                }
                SetuidDecision::Pending(_) => return Err(Errno::EINVAL),
                SetuidDecision::NeedAuth(scope) => {
                    attempts += 1;
                    if attempts > 1 || !self.run_auth(pid, scope) {
                        let msg = format!("setgid: auth failed for {} -> {}", rgid.0, target.0);
                        self.emit_lsm_event(
                            pid,
                            "setgid",
                            Hook::TaskSetgid,
                            DecisionKind::Deny,
                            Some(Errno::EPERM),
                            AuditObject::GidTarget(target.0),
                            msg,
                        );
                        return Err(Errno::EPERM);
                    }
                }
            }
        }
    }

    /// Stock `setgid(2)` semantics.
    fn setgid_stock(&self, pid: Pid, target: Gid) -> KResult<()> {
        if self.capable(pid, Cap::Setgid) {
            let mut t = self.task_mut(pid)?;
            t.cred.rgid = target;
            t.cred.egid = target;
            t.cred.sgid = target;
            return Ok(());
        }
        // Scoped as in setuid_stock: guard released before any emission.
        let (allowed, rgid) = {
            let mut t = self.task_mut(pid)?;
            if target == t.cred.rgid || target == t.cred.sgid {
                t.cred.egid = target;
                (true, t.cred.rgid)
            } else {
                (false, t.cred.rgid)
            }
        };
        if allowed {
            Ok(())
        } else {
            let msg = format!(
                "setgid: stock denied {} -> {} (no CAP_SETGID)",
                rgid.0, target.0
            );
            self.emit_kernel_event(
                pid,
                "setgid",
                Hook::TaskSetgid,
                DecisionKind::Deny,
                Some(Errno::EPERM),
                AuditObject::GidTarget(target.0),
                msg,
            );
            Err(Errno::EPERM)
        }
    }

    /// `setgroups(2)` — requires CAP_SETGID.
    pub fn sys_setgroups(&self, pid: Pid, groups: &[Gid]) -> KResult<()> {
        if !self.capable(pid, Cap::Setgid) {
            return Err(Errno::EPERM);
        }
        self.task_mut(pid)?.cred.groups = groups.to_vec();
        Ok(())
    }

    /// `getuid(2)`.
    pub fn sys_getuid(&self, pid: Pid) -> KResult<Uid> {
        Ok(self.task(pid)?.cred.ruid)
    }

    /// `geteuid(2)`.
    pub fn sys_geteuid(&self, pid: Pid) -> KResult<Uid> {
        Ok(self.task(pid)?.cred.euid)
    }

    /// `getgid(2)`.
    pub fn sys_getgid(&self, pid: Pid) -> KResult<Gid> {
        Ok(self.task(pid)?.cred.rgid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::net::SimNet;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        (k, root, user)
    }

    #[test]
    fn root_can_setuid_anywhere_and_drops_caps() {
        let (k, root, _) = boot();
        k.sys_setuid(root, Uid(1000)).unwrap();
        {
            // Scoped: the guard must drop before the next sys_setuid call
            // re-locks the same task shard.
            let t = k.task(root).unwrap();
            let c = &t.cred;
            assert_eq!(c.ruid, Uid(1000));
            assert_eq!(c.euid, Uid(1000));
            assert_eq!(c.suid, Uid(1000));
            assert!(c.caps.is_empty());
        }
        // Once dropped, cannot regain.
        assert_eq!(k.sys_setuid(root, Uid::ROOT).unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn user_setuid_to_stranger_is_eperm() {
        let (k, _, user) = boot();
        assert_eq!(k.sys_setuid(user, Uid(1001)).unwrap_err(), Errno::EPERM);
        assert_eq!(k.sys_setuid(user, Uid::ROOT).unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn user_setuid_to_self_ok() {
        let (k, _, user) = boot();
        k.sys_setuid(user, Uid(1000)).unwrap();
        assert_eq!(k.sys_geteuid(user).unwrap(), Uid(1000));
    }

    #[test]
    fn seteuid_among_held_ids() {
        let (k, _, user) = boot();
        // Simulate a setuid-nonroot binary: euid 38, ruid 1000, suid 38.
        {
            let mut t = k.task_mut(user).unwrap();
            t.cred.euid = Uid(38);
            t.cred.suid = Uid(38);
            t.cred.fsuid = Uid(38);
        }
        // Temporarily drop to the real uid...
        k.sys_seteuid(user, Uid(1000)).unwrap();
        assert_eq!(k.sys_geteuid(user).unwrap(), Uid(1000));
        // ...and regain the saved uid.
        k.sys_seteuid(user, Uid(38)).unwrap();
        assert_eq!(k.sys_geteuid(user).unwrap(), Uid(38));
        // But never an unrelated uid.
        assert_eq!(k.sys_seteuid(user, Uid(7)).unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn setgid_stock_semantics() {
        let (k, root, user) = boot();
        k.sys_setgid(root, Gid(1000)).unwrap();
        assert_eq!(k.task(root).unwrap().cred.egid, Gid(1000));
        assert_eq!(k.sys_setgid(user, Gid(24)).unwrap_err(), Errno::EPERM);
        k.sys_setgid(user, Gid(1000)).unwrap();
    }

    #[test]
    fn setgroups_requires_cap() {
        let (k, root, user) = boot();
        k.sys_setgroups(root, &[Gid(0), Gid(24)]).unwrap();
        assert_eq!(k.sys_setgroups(user, &[Gid(24)]).unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn getters() {
        let (k, root, user) = boot();
        assert_eq!(k.sys_getuid(root).unwrap(), Uid::ROOT);
        assert_eq!(k.sys_getuid(user).unwrap(), Uid(1000));
        assert_eq!(k.sys_getgid(user).unwrap(), Gid(1000));
    }
}
