//! `mount(2)` and `umount(2)` — the paper's running example (Figure 1).
//!
//! Stock Linux hard-codes `capable(CAP_SYS_ADMIN)` in both calls. Protego's
//! LSM hook runs *first* and may grant a whitelisted (device, mountpoint,
//! options) combination to an unprivileged caller, or deny a request root
//! itself shouldn't make. `UseDefault` preserves the stock check exactly.

use crate::caps::Cap;
use crate::dev::DeviceKind;
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{Decision, MountRequest, UmountRequest};
use crate::task::Pid;
use crate::trace::{AuditObject, DecisionKind, Hook};
use crate::vfs::{Access, InodeData, MountOptions};

impl Kernel {
    /// `mount(2)`.
    pub fn sys_mount(
        &self,
        pid: Pid,
        source: &str,
        target: &str,
        fstype: &str,
        options: &str,
    ) -> KResult<()> {
        let r = self.walk(pid, target)?;
        if !self.vfs.inode(r.ino).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        let mountpoint = self.vfs.path_of(r.ino);
        // The same device mounted again on the same mountpoint is busy
        // (as mount(8) reports: "already mounted").
        if self
            .vfs
            .find_mount(&mountpoint)
            .map(|m| m.source == source)
            .unwrap_or(false)
        {
            return Err(Errno::EBUSY);
        }
        let mut opts = MountOptions::parse(options);

        let cred = self.task(pid)?.cred.clone();
        let req = MountRequest {
            source: source.to_string(),
            target: mountpoint.clone(),
            fstype: fstype.to_string(),
            options: opts.clone(),
        };
        let object = AuditObject::Path(format!("{} -> {}", source, mountpoint));
        let decision = self.lsm().sb_mount(&cred, &req);
        match decision {
            Decision::UseDefault => {
                if !self.capable(pid, Cap::SysAdmin) {
                    let msg = format!(
                        "mount: {} -> {} denied (no CAP_SYS_ADMIN)",
                        source, mountpoint
                    );
                    self.emit_kernel_event(
                        pid,
                        "mount",
                        Hook::SbMount,
                        DecisionKind::Deny,
                        Some(Errno::EPERM),
                        object,
                        msg,
                    );
                    return Err(Errno::EPERM);
                }
                let msg = format!("mount: {} -> {} via CAP_SYS_ADMIN", source, mountpoint);
                self.emit_kernel_event(
                    pid,
                    "mount",
                    Hook::SbMount,
                    DecisionKind::UseDefault,
                    None,
                    object,
                    msg,
                );
            }
            Decision::Allow => {
                // User mounts are forced nosuid/nodev, as the mount
                // utilities (and the fstab "user" option) do.
                if !cred.euid.is_root() {
                    opts.nosuid = true;
                    opts.nodev = true;
                }
                let msg = format!(
                    "mount: lsm granted {} -> {} for {}",
                    source, mountpoint, cred.ruid
                );
                self.emit_lsm_event(
                    pid,
                    "mount",
                    Hook::SbMount,
                    DecisionKind::Allow,
                    None,
                    object,
                    msg,
                );
            }
            Decision::Deny(e) => {
                let msg = format!(
                    "mount: lsm denied {} -> {} ({})",
                    source,
                    mountpoint,
                    e.name()
                );
                self.emit_lsm_event(
                    pid,
                    "mount",
                    Hook::SbMount,
                    DecisionKind::Deny,
                    Some(e),
                    object,
                    msg,
                );
                return Err(e);
            }
        }

        // Locate the backing tree.
        let root_ino = match fstype {
            "proc" | "sysfs" | "tmpfs" | "fuse" => {
                // Pseudo filesystems get a fresh empty directory.
                let root = self.vfs.root();
                self.vfs.alloc(
                    root,
                    crate::vfs::Mode(0o755),
                    crate::cred::Uid::ROOT,
                    crate::cred::Gid::ROOT,
                    InodeData::Directory(Default::default()),
                )
            }
            _ => {
                let dev_res = self.walk(pid, source)?;
                let dev_id = match &self.vfs.inode(dev_res.ino).data {
                    InodeData::BlockDev(d) => *d,
                    _ => return Err(Errno::ENOTBLK),
                };
                {
                    let devices = self.devices.read();
                    match &devices.get(dev_id)?.kind {
                        DeviceKind::Block(b) => {
                            if !b.media_present || b.ejected {
                                return Err(Errno::ENXIO);
                            }
                        }
                        DeviceKind::DmCrypt(_) => {}
                        _ => return Err(Errno::ENOTBLK),
                    }
                }
                self.media_root(dev_id)?
            }
        };

        let ruid = self.task(pid)?.cred.ruid;
        self.vfs
            .add_mount(source, &mountpoint, fstype, opts, root_ino, r.ino, ruid)?;
        Ok(())
    }

    /// `umount(2)`.
    pub fn sys_umount(&self, pid: Pid, target: &str) -> KResult<()> {
        // Resolve the *mountpoint* (without crossing into the mount): we
        // look up the path string in the mount table.
        let cwd = self.task(pid)?.cwd;
        let r = self.vfs.resolve(cwd, target)?;
        for d in r.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        let mountpoint = self.vfs.path_of(r.ino);
        let m = self
            .vfs
            .find_mount(&mountpoint)
            .ok_or(Errno::EINVAL)?
            .clone();

        let cred = self.task(pid)?.cred.clone();
        let req = UmountRequest {
            target: mountpoint.clone(),
            source: m.source.clone(),
            fstype: m.fstype.clone(),
            mounted_by: m.mounted_by,
        };
        let object = AuditObject::Path(mountpoint.clone());
        let decision = self.lsm().sb_umount(&cred, &req);
        match decision {
            Decision::UseDefault => {
                if !self.capable(pid, Cap::SysAdmin) {
                    let msg = format!("umount: {} denied (no CAP_SYS_ADMIN)", mountpoint);
                    self.emit_kernel_event(
                        pid,
                        "umount",
                        Hook::SbUmount,
                        DecisionKind::Deny,
                        Some(Errno::EPERM),
                        object,
                        msg,
                    );
                    return Err(Errno::EPERM);
                }
                let msg = format!("umount: {} via CAP_SYS_ADMIN", mountpoint);
                self.emit_kernel_event(
                    pid,
                    "umount",
                    Hook::SbUmount,
                    DecisionKind::UseDefault,
                    None,
                    object,
                    msg,
                );
            }
            Decision::Allow => {
                let msg = format!("umount: lsm granted {} for {}", mountpoint, cred.ruid);
                self.emit_lsm_event(
                    pid,
                    "umount",
                    Hook::SbUmount,
                    DecisionKind::Allow,
                    None,
                    object,
                    msg,
                );
            }
            Decision::Deny(e) => {
                let msg = format!("umount: lsm denied {} ({})", mountpoint, e.name());
                self.emit_lsm_event(
                    pid,
                    "umount",
                    Hook::SbUmount,
                    DecisionKind::Deny,
                    Some(e),
                    object,
                    msg,
                );
                return Err(e);
            }
        }

        self.vfs.remove_mount(&mountpoint)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Credentials, Gid, Uid};
    use crate::net::SimNet;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        k.install_standard_devices().unwrap();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        k.vfs.mkdir_p("/media/usb").unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/mount");
        (k, root, user)
    }

    #[test]
    fn root_can_mount_and_umount() {
        let (k, root, _) = boot();
        k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
            .unwrap();
        assert!(k.read_file(root, "/mnt/cdrom/README").is_ok());
        k.sys_umount(root, "/mnt/cdrom").unwrap();
        assert_eq!(
            k.read_file(root, "/mnt/cdrom/README").unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn user_mount_denied_on_stock_kernel() {
        let (k, _, user) = boot();
        assert_eq!(
            k.sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn user_umount_denied_on_stock_kernel() {
        let (k, root, user) = boot();
        k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
            .unwrap();
        assert_eq!(k.sys_umount(user, "/mnt/cdrom").unwrap_err(), Errno::EPERM);
    }

    #[test]
    fn mount_nonexistent_device() {
        let (k, root, _) = boot();
        assert_eq!(
            k.sys_mount(root, "/dev/nope", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn mount_on_file_is_enotdir() {
        let (k, root, _) = boot();
        k.vfs
            .install_file(
                "/mnt/file",
                b"",
                crate::vfs::Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        assert_eq!(
            k.sys_mount(root, "/dev/cdrom", "/mnt/file", "iso9660", "ro")
                .unwrap_err(),
            Errno::ENOTDIR
        );
    }

    #[test]
    fn mount_non_block_source_is_enotblk() {
        let (k, root, _) = boot();
        assert_eq!(
            k.sys_mount(root, "/dev/null", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::ENOTBLK
        );
    }

    #[test]
    fn umount_of_unmounted_path_is_einval() {
        let (k, root, _) = boot();
        assert_eq!(k.sys_umount(root, "/mnt/cdrom").unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn proc_mounts_reflects_mount_table() {
        let (k, root, _) = boot();
        k.sys_mount(root, "/dev/sdb1", "/media/usb", "vfat", "rw")
            .unwrap();
        let s = k.read_to_string(root, "/proc/mounts").unwrap();
        assert!(s.contains("/dev/sdb1 /media/usb vfat rw"));
    }

    #[test]
    fn pseudo_fs_mount() {
        let (k, root, _) = boot();
        k.vfs.mkdir_p("/mnt/t").unwrap();
        k.sys_mount(root, "tmpfs", "/mnt/t", "tmpfs", "rw").unwrap();
        k.write_file(root, "/mnt/t/x", b"1", crate::vfs::Mode(0o644))
            .unwrap();
        k.sys_umount(root, "/mnt/t").unwrap();
        assert_eq!(k.read_file(root, "/mnt/t/x").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn ejected_media_is_enxio() {
        let (k, root, _) = boot();
        let dev = k.devices.read().id_by_path("/dev/cdrom").unwrap();
        {
            let mut devices = k.devices.write();
            if let DeviceKind::Block(b) = &mut devices.get_mut(dev).unwrap().kind {
                b.ejected = true;
            }
        }
        assert_eq!(
            k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::ENXIO
        );
    }
}
