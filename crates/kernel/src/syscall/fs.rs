//! Filesystem system calls: open, read, write, stat, directory and
//! metadata operations.

use crate::caps::Cap;
use crate::cred::{Gid, Uid};
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{FileDecision, FileOpenCtx};
use crate::syscall::abi::Whence;
use crate::task::{Fd, FdObject, Pid};
use crate::trace::{AuditObject, DecisionKind, Hook};
use crate::vfs::{Access, Ino, InodeData, Mode, Name, PathArena, ProcHook, Resolved};

/// Flags for [`Kernel::sys_open`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Append on every write.
    pub append: bool,
    /// Create if missing.
    pub create: bool,
    /// With `create`: fail if the file exists.
    pub excl: bool,
    /// Truncate on open.
    pub truncate: bool,
    /// Close on exec.
    pub cloexec: bool,
    /// Mode for newly created files.
    pub mode: Mode,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> OpenFlags {
        OpenFlags {
            read: true,
            write: false,
            append: false,
            create: false,
            excl: false,
            truncate: false,
            cloexec: false,
            mode: Mode(0o644),
        }
    }

    /// `O_WRONLY`.
    pub fn write_only() -> OpenFlags {
        OpenFlags {
            read: false,
            write: true,
            ..OpenFlags::read_only()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::read_only()
        }
    }

    /// `O_WRONLY|O_CREAT|O_TRUNC` with the given mode.
    pub fn create_trunc(mode: Mode) -> OpenFlags {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: true,
            mode,
            ..OpenFlags::read_only()
        }
    }

    /// `O_WRONLY|O_APPEND`.
    pub fn append_only() -> OpenFlags {
        OpenFlags {
            read: false,
            write: true,
            append: true,
            ..OpenFlags::read_only()
        }
    }

    fn access(&self) -> Access {
        let mut a = Access(0);
        if self.read {
            a = a.and(Access::READ);
        }
        if self.write || self.truncate || self.append {
            a = a.and(Access::WRITE);
        }
        a
    }
}

/// `stat(2)` result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// Mode bits.
    pub mode: Mode,
    /// Owner.
    pub uid: Uid,
    /// Group.
    pub gid: Gid,
    /// Size in bytes.
    pub size: usize,
    /// Link count.
    pub nlink: u32,
    /// Whether this is a directory.
    pub is_dir: bool,
}

impl Kernel {
    // ------------------------------------------------------------------
    // Permission helpers
    // ------------------------------------------------------------------

    /// Checks a DAC access on an inode, honouring the DAC-override
    /// capabilities through the (LSM-aware) `capable` path.
    ///
    /// Called once per traversed directory on every walk, so the
    /// credential snapshot stays on the stack: the scalars are copied
    /// out and supplementary groups land in an inline array (tasks with
    /// more than [`GROUPS_INLINE`] groups spill, which is cold).
    pub(crate) fn check_access(&self, pid: Pid, ino: Ino, want: Access) -> KResult<()> {
        /// Supplementary groups kept on the stack per check.
        const GROUPS_INLINE: usize = 8;
        let mut inline = [Gid(0); GROUPS_INLINE];
        let (fsuid, egid, ngroups, spill) = {
            let t = self.task(pid)?;
            let c = &t.cred;
            let n = c.groups.len().min(GROUPS_INLINE);
            inline[..n].copy_from_slice(&c.groups[..n]);
            let spill: Vec<Gid> = if c.groups.len() > GROUPS_INLINE {
                c.groups[GROUPS_INLINE..].to_vec()
            } else {
                Vec::new()
            };
            (c.fsuid, c.egid, n, spill)
        };
        let allowed = crate::vfs::Vfs::dac_allows(
            &self.vfs.inode(ino),
            fsuid,
            |g| egid == g || inline[..ngroups].contains(&g) || spill.contains(&g),
            want,
        );
        if allowed {
            return Ok(());
        }
        // CAP_DAC_READ_SEARCH covers read and directory search.
        let read_or_search =
            !want.wants_write() && (!want.wants_exec() || self.vfs.inode(ino).data.is_dir());
        if read_or_search && self.capable(pid, Cap::DacReadSearch) {
            return Ok(());
        }
        // CAP_DAC_OVERRIDE covers everything except exec of a file with no
        // exec bits at all. One scoped guard: taking the same inode's
        // shard lock twice in one expression invites a deadlock once
        // writers contend.
        let exec_plain_file = {
            let inode = self.vfs.inode(ino);
            want.wants_exec() && !inode.data.is_dir() && inode.mode.bits() & 0o111 == 0
        };
        if !exec_plain_file && self.capable(pid, Cap::DacOverride) {
            return Ok(());
        }
        Err(Errno::EACCES)
    }

    /// Resolves a path for task `pid`, checking search permission on every
    /// traversed directory.
    pub(crate) fn walk(&self, pid: Pid, path: &str) -> KResult<Resolved> {
        let cwd = self.task(pid)?.cwd;
        let r = self.vfs.resolve(cwd, path)?;
        for dir in r.dirs.iter() {
            self.check_access(pid, dir, Access::EXEC)?;
        }
        Ok(r)
    }

    /// Like [`Kernel::walk`] but stops at a trailing symlink.
    pub(crate) fn walk_nofollow(&self, pid: Pid, path: &str) -> KResult<Resolved> {
        let cwd = self.task(pid)?.cwd;
        let r = self.vfs.resolve_nofollow(cwd, path)?;
        for dir in r.dirs.iter() {
            self.check_access(pid, dir, Access::EXEC)?;
        }
        Ok(r)
    }

    // ------------------------------------------------------------------
    // open / close
    // ------------------------------------------------------------------

    /// `open(2)`.
    ///
    /// After DAC evaluation the LSM `file_open` hook runs; it may deny an
    /// access DAC would grant (AppArmor confinement), grant one DAC would
    /// refuse (Protego's binary-identity rules for ssh-keysign), demand
    /// re-authentication (Protego's shadow files), or force close-on-exec.
    pub fn sys_open(&self, pid: Pid, path: &str, flags: OpenFlags) -> KResult<i32> {
        let want = flags.access();
        let cwd = self.task(pid)?.cwd;

        // Creation path.
        let resolved = match self.walk(pid, path) {
            Ok(r) => {
                if flags.create && flags.excl {
                    return Err(Errno::EEXIST);
                }
                Some(r)
            }
            Err(Errno::ENOENT) if flags.create => None,
            Err(e) => return Err(e),
        };

        let ino = match resolved {
            Some(r) => r.ino,
            None => {
                let (parent, name) = self.vfs.resolve_parent(cwd, path)?;
                for d in parent.dirs.iter() {
                    self.check_access(pid, d, Access::EXEC)?;
                }
                self.check_access(pid, parent.ino, Access::WRITE.and(Access::EXEC))?;
                let cred = self.task(pid)?.cred.clone();
                let ino = self
                    .vfs
                    .create_file(parent.ino, &name, flags.mode, cred.fsuid, cred.egid, true)?;
                self.vfs.touch(ino);
                ino
            }
        };

        if self.vfs.inode(ino).data.is_dir() && want.wants_write() {
            return Err(Errno::EISDIR);
        }

        // DAC on the final object.
        let dac = self.check_access(pid, ino, want);
        let dac_ok = dac.is_ok();

        // LSM file-open hook, with one authentication retry. The
        // absolute path is reconstructed into the per-thread arena and
        // the hook context borrows it together with the task's
        // credentials, so the steady-state approve path (UseDefault with
        // DAC ok) allocates nothing.
        let file_owner = self.vfs.inode(ino).uid;
        let mut force_cloexec = false;
        let abs_name = PathArena::scope(|arena| -> KResult<Name> {
            let abs = self.vfs.path_of_in(arena, ino);
            let mut attempts = 0;
            loop {
                // Scoped: the task guard must drop before the arms below
                // emit events or re-run authentication (both re-enter
                // the task table). The hook itself runs with the guard
                // held — modules only read the borrowed context (same
                // discipline as the setuid/setgid hooks).
                let decision = {
                    let t = self.task(pid)?;
                    let ctx = FileOpenCtx {
                        cred: &t.cred,
                        path: &abs,
                        binary: &t.binary,
                        access: want,
                        dac_allows: dac_ok,
                        file_owner,
                        last_auth: t.last_auth,
                        last_auth_scope: t.last_auth_scope,
                        now: self.clock(),
                    };
                    self.lsm().file_open(&ctx)
                };
                match decision {
                    FileDecision::UseDefault => {
                        dac?;
                        break;
                    }
                    FileDecision::Allow => {
                        let msg = format!("open: lsm granted {}", abs);
                        self.emit_lsm_event(
                            pid,
                            "open",
                            Hook::FileOpen,
                            DecisionKind::Allow,
                            None,
                            AuditObject::Path(abs.to_string()),
                            msg,
                        );
                        break;
                    }
                    FileDecision::AllowCloexec => {
                        force_cloexec = true;
                        let msg = format!("open: lsm granted {} (cloexec forced)", abs);
                        self.emit_lsm_event(
                            pid,
                            "open",
                            Hook::FileOpen,
                            DecisionKind::Allow,
                            None,
                            AuditObject::Path(abs.to_string()),
                            msg,
                        );
                        break;
                    }
                    FileDecision::Deny(e) => {
                        let msg = format!("open: lsm denied {} ({})", abs, e.name());
                        self.emit_lsm_event(
                            pid,
                            "open",
                            Hook::FileOpen,
                            DecisionKind::Deny,
                            Some(e),
                            AuditObject::Path(abs.to_string()),
                            msg,
                        );
                        return Err(e);
                    }
                    FileDecision::NeedAuth(scope) => {
                        attempts += 1;
                        if attempts > 1 || !self.run_auth(pid, scope) {
                            let msg = format!("open: auth failed for {}", abs);
                            self.emit_lsm_event(
                                pid,
                                "open",
                                Hook::FileOpen,
                                DecisionKind::Deny,
                                Some(Errno::EACCES),
                                AuditObject::Path(abs.to_string()),
                                msg,
                            );
                            return Err(Errno::EACCES);
                        }
                    }
                }
            }
            // The fd table records the path as an interned symbol so the
            // descriptor stays `Copy`-cheap to clone on every read/write.
            Ok(Name::intern(&abs))
        })?;

        if flags.truncate && matches!(self.vfs.inode(ino).data, InodeData::Regular(_)) {
            self.vfs.write_all(ino, b"")?;
        }

        let fd = Fd {
            object: FdObject::File {
                ino,
                offset: 0,
                readable: flags.read,
                writable: flags.write || flags.append || flags.truncate,
                append: flags.append,
                path: abs_name,
            },
            cloexec: flags.cloexec || force_cloexec,
        };
        self.vfs.inc_open(ino);
        self.task_mut(pid)?.fd_install(fd)
    }

    /// `lseek(2)` — repositions the file offset relative to `whence`.
    pub fn sys_lseek(&self, pid: Pid, fd: i32, offset: i64, whence: Whence) -> KResult<usize> {
        let (ino, cur) = match &self.task(pid)?.fd(fd)?.object {
            FdObject::File { ino, offset, .. } => (*ino, *offset),
            _ => return Err(Errno::EINVAL),
        };
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => cur as i64,
            Whence::End => self.vfs.inode(ino).size() as i64,
        };
        let new = base.checked_add(offset).ok_or(Errno::EINVAL)?;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        match &mut self.task_mut(pid)?.fd_mut(fd)?.object {
            FdObject::File { offset, .. } => *offset = new as usize,
            _ => return Err(Errno::EINVAL),
        }
        Ok(new as usize)
    }

    /// `close(2)`.
    pub fn sys_close(&self, pid: Pid, fd: i32) -> KResult<()> {
        let taken = self.task_mut(pid)?.fd_take(fd)?;
        self.release_fd_object(taken.object);
        Ok(())
    }

    /// Drops kernel-side state backing an fd object.
    pub(crate) fn release_fd_object(&self, obj: FdObject) {
        match obj {
            FdObject::Socket(sid) => {
                let _ = self.net.write().close(sid);
            }
            FdObject::PipeRead(pid_) => {
                self.pipes.release_read(pid_);
            }
            FdObject::PipeWrite(pid_) => {
                self.pipes.release_write(pid_);
            }
            FdObject::File { ino, .. } => {
                self.vfs.dec_open(ino);
            }
        }
    }

    // ------------------------------------------------------------------
    // read / write
    // ------------------------------------------------------------------

    /// `read(2)`.
    pub fn sys_read(&self, pid: Pid, fd: i32, buf: &mut Vec<u8>, count: usize) -> KResult<usize> {
        let fdo = self.task(pid)?.fd(fd)?.clone();
        match fdo.object {
            FdObject::File {
                ino,
                offset,
                readable,
                ..
            } => {
                if !readable {
                    return Err(Errno::EBADF);
                }
                // Regular files copy straight out of the inode guard —
                // no intermediate content clone. Dynamic nodes (and the
                // EISDIR/EINVAL cases) fall through to `render_node`.
                let fast = {
                    let inode = self.vfs.inode(ino);
                    match &inode.data {
                        InodeData::Regular(d) => {
                            let end = (offset + count).min(d.len());
                            let slice = &d[offset.min(d.len())..end];
                            buf.extend_from_slice(slice);
                            Some(slice.len())
                        }
                        _ => None,
                    }
                };
                let n = match fast {
                    Some(n) => n,
                    None => {
                        let content = self.render_node(pid, ino)?;
                        let end = (offset + count).min(content.len());
                        let slice = &content[offset.min(content.len())..end];
                        buf.extend_from_slice(slice);
                        slice.len()
                    }
                };
                if let FdObject::File { offset, .. } = &mut self.task_mut(pid)?.fd_mut(fd)?.object {
                    *offset += n;
                }
                Ok(n)
            }
            FdObject::PipeRead(id) => self.pipes.with(id, |p| {
                if p.buf.is_empty() {
                    return if p.writers == 0 {
                        Ok(0)
                    } else {
                        Err(Errno::EAGAIN)
                    };
                }
                let n = count.min(p.buf.len());
                buf.extend(p.buf.drain(..n));
                Ok(n)
            }),
            FdObject::PipeWrite(_) => Err(Errno::EBADF),
            FdObject::Socket(_) => Err(Errno::EINVAL), // use recv
        }
    }

    /// Materializes the byte content of an inode for reading, dispatching
    /// dynamic `/proc` and `/sys` nodes.
    fn render_node(&self, _pid: Pid, ino: Ino) -> KResult<Vec<u8>> {
        // Copy the hook out before rendering: several hook renderers
        // re-enter VFS or LSM locks, which must not happen under this
        // inode's shard guard.
        let hook = {
            let inode = self.vfs.inode(ino);
            match &inode.data {
                InodeData::Regular(d) => return Ok(d.clone()),
                InodeData::Directory(_) => return Err(Errno::EISDIR),
                InodeData::CharDev(_) | InodeData::BlockDev(_) => return Ok(Vec::new()),
                InodeData::Symlink(t) => return Ok(t.clone().into_bytes()),
                InodeData::Fifo => return Err(Errno::EINVAL),
                InodeData::Hook(h) => h.clone(),
            }
        };
        match hook {
            ProcHook::Mounts => Ok(self.vfs.render_proc_mounts().into_bytes()),
            ProcHook::Uptime => Ok(format!("{}.00 0.00\n", self.clock()).into_bytes()),
            ProcHook::LsmConfig(name) => Ok(self.lsm().config_read(name)?.into_bytes()),
            ProcHook::Audit => Ok(self.audit.render().into_bytes()),
            ProcHook::Metrics => Ok(self.metrics_snapshot().render().into_bytes()),
            ProcHook::Histograms => Ok(crate::trace::span::render().into_bytes()),
            ProcHook::SysAttr(attr) => Ok(self.sys_attr_read(&attr)?.into_bytes()),
            ProcHook::SeccompProfiles => Ok(self.seccomp.render_profiles().into_bytes()),
            ProcHook::SeccompStatus => Ok(self.seccomp.render_status().into_bytes()),
            ProcHook::SeccompViolations => Ok(self.seccomp.render_violations().into_bytes()),
        }
    }

    /// `write(2)`.
    pub fn sys_write(&self, pid: Pid, fd: i32, data: &[u8]) -> KResult<usize> {
        let fdo = self.task(pid)?.fd(fd)?.clone();
        match fdo.object {
            FdObject::File {
                ino,
                offset,
                writable,
                append,
                ..
            } => {
                if !writable {
                    return Err(Errno::EBADF);
                }
                let hook = {
                    let inode = self.vfs.inode(ino);
                    match &inode.data {
                        InodeData::Hook(h) => Some(h.clone()),
                        InodeData::CharDev(_) => return Ok(data.len()), // /dev/null sink
                        _ => None,
                    }
                };
                if let Some(h) = hook {
                    return self.write_hook_node(pid, h, data);
                }
                if append {
                    self.vfs.append(ino, data)?;
                } else {
                    // Positional overwrite.
                    let mut content = self.vfs.read_all(ino)?.to_vec();
                    if offset + data.len() > content.len() {
                        content.resize(offset + data.len(), 0);
                    }
                    content[offset..offset + data.len()].copy_from_slice(data);
                    self.vfs.write_all(ino, &content)?;
                    if let FdObject::File { offset, .. } =
                        &mut self.task_mut(pid)?.fd_mut(fd)?.object
                    {
                        *offset += data.len();
                    }
                }
                Ok(data.len())
            }
            FdObject::PipeWrite(id) => self.pipes.with(id, |p| {
                if p.readers == 0 {
                    return Err(Errno::EPIPE);
                }
                p.buf.extend(data.iter().copied());
                Ok(data.len())
            }),
            FdObject::PipeRead(_) => Err(Errno::EBADF),
            FdObject::Socket(_) => Err(Errno::EINVAL), // use send
        }
    }

    /// Handles a write to a dynamic node. LSM configuration files accept
    /// writes only from root — the trusted daemon/administrator path of
    /// Figure 1.
    fn write_hook_node(&self, pid: Pid, hook: ProcHook, data: &[u8]) -> KResult<usize> {
        match hook {
            ProcHook::LsmConfig(name) => {
                let cred = self.task(pid)?.cred.clone();
                if !cred.euid.is_root() {
                    let msg = format!("lsm-config: non-root write to '{}' refused", name);
                    self.emit_kernel_event(
                        pid,
                        "write",
                        Hook::LsmConfig,
                        DecisionKind::Deny,
                        Some(Errno::EPERM),
                        AuditObject::Config(name.to_string()),
                        msg,
                    );
                    return Err(Errno::EPERM);
                }
                let content = String::from_utf8(data.to_vec()).map_err(|_| Errno::EINVAL)?;
                self.lsm_mut().config_write(name, &content)?;
                let msg = format!("lsm-config: '{}' updated", name);
                self.emit_kernel_event(
                    pid,
                    "write",
                    Hook::LsmConfig,
                    DecisionKind::Info,
                    None,
                    AuditObject::Config(name.to_string()),
                    msg,
                );
                Ok(data.len())
            }
            ProcHook::SeccompProfiles | ProcHook::SeccompStatus | ProcHook::SeccompViolations => {
                self.write_seccomp_node(pid, hook, data)
            }
            _ => Err(Errno::EACCES),
        }
    }

    /// Writes to the `/proc/seccomp/*` control plane. The nodes are 0600
    /// root-owned (non-root opens already fail `EACCES` at DAC); this
    /// re-checks euid like the LSM config path so an fd leaked across a
    /// credential drop still refuses, with an audited `EPERM`.
    fn write_seccomp_node(&self, pid: Pid, hook: ProcHook, data: &[u8]) -> KResult<usize> {
        let node = match hook {
            ProcHook::SeccompProfiles => "seccomp/profiles",
            ProcHook::SeccompStatus => "seccomp/status",
            _ => "seccomp/violations",
        };
        if !self.task(pid)?.cred.euid.is_root() {
            let msg = format!("seccomp: non-root write to '{}' refused", node);
            self.emit_kernel_event(
                pid,
                "write",
                Hook::LsmConfig,
                DecisionKind::Deny,
                Some(Errno::EPERM),
                AuditObject::Config(node.to_string()),
                msg,
            );
            return Err(Errno::EPERM);
        }
        let content = String::from_utf8(data.to_vec()).map_err(|_| Errno::EINVAL)?;
        let msg = match hook {
            ProcHook::SeccompProfiles => {
                let specs = crate::seccomp::Seccomp::parse_profiles_text(&content)
                    .map_err(|_| Errno::EINVAL)?;
                let n = self
                    .seccomp
                    .load_profiles(&specs)
                    .map_err(|_| Errno::EINVAL)?;
                format!("seccomp: loaded {} profiles", n)
            }
            ProcHook::SeccompStatus => {
                let mode = crate::seccomp::SeccompMode::parse(&content).ok_or(Errno::EINVAL)?;
                self.seccomp.set_mode(mode);
                format!("seccomp: mode -> {}", mode.name())
            }
            _ => {
                if content.trim() != "clear" {
                    return Err(Errno::EINVAL);
                }
                self.seccomp.clear_violations();
                "seccomp: violation log cleared".to_string()
            }
        };
        self.emit_kernel_event(
            pid,
            "write",
            Hook::LsmConfig,
            DecisionKind::Info,
            None,
            AuditObject::Config(node.to_string()),
            msg,
        );
        Ok(data.len())
    }

    // ------------------------------------------------------------------
    // Convenience wrappers (read_to_string / write_file) used heavily by
    // userland binaries; they go through the full open/read/write path so
    // every policy check applies.
    // ------------------------------------------------------------------

    /// Opens, reads fully, and closes.
    pub fn read_file(&self, pid: Pid, path: &str) -> KResult<Vec<u8>> {
        let fd = self.sys_open(pid, path, OpenFlags::read_only())?;
        let mut buf = Vec::new();
        loop {
            let n = self.sys_read(pid, fd, &mut buf, 65536)?;
            if n == 0 {
                break;
            }
            if n < 65536 {
                break;
            }
        }
        self.sys_close(pid, fd)?;
        Ok(buf)
    }

    /// Opens, reads fully as UTF-8, and closes.
    pub fn read_to_string(&self, pid: Pid, path: &str) -> KResult<String> {
        String::from_utf8(self.read_file(pid, path)?).map_err(|_| Errno::EINVAL)
    }

    /// Creates/truncates and writes a whole file.
    pub fn write_file(&self, pid: Pid, path: &str, data: &[u8], mode: Mode) -> KResult<()> {
        let fd = self.sys_open(pid, path, OpenFlags::create_trunc(mode))?;
        self.sys_write(pid, fd, data)?;
        self.sys_close(pid, fd)
    }

    /// Appends to an existing file.
    pub fn append_file(&self, pid: Pid, path: &str, data: &[u8]) -> KResult<()> {
        let fd = self.sys_open(pid, path, OpenFlags::append_only())?;
        self.sys_write(pid, fd, data)?;
        self.sys_close(pid, fd)
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// `stat(2)`.
    pub fn sys_stat(&self, pid: Pid, path: &str) -> KResult<Stat> {
        let r = self.walk(pid, path)?;
        let i = self.vfs.inode(r.ino);
        Ok(Stat {
            ino: i.ino,
            mode: i.mode,
            uid: i.uid,
            gid: i.gid,
            size: i.size(),
            nlink: i.nlink,
            is_dir: i.data.is_dir(),
        })
    }

    /// `lstat(2)` — like stat but does not follow a trailing symlink.
    pub fn sys_lstat(&self, pid: Pid, path: &str) -> KResult<Stat> {
        let r = self.walk_nofollow(pid, path)?;
        let i = self.vfs.inode(r.ino);
        Ok(Stat {
            ino: i.ino,
            mode: i.mode,
            uid: i.uid,
            gid: i.gid,
            size: i.size(),
            nlink: i.nlink,
            is_dir: i.data.is_dir(),
        })
    }

    /// `chmod(2)` — owner or CAP_FOWNER.
    pub fn sys_chmod(&self, pid: Pid, path: &str, mode: Mode) -> KResult<()> {
        let r = self.walk(pid, path)?;
        let cred = self.task(pid)?.cred.clone();
        let owner = self.vfs.inode(r.ino).uid;
        if cred.fsuid != owner && !self.capable(pid, Cap::Fowner) {
            return Err(Errno::EPERM);
        }
        // Setting setuid/setgid as non-root is allowed on own files (as on
        // Linux); the *power* of the bit depends on the owner.
        self.vfs.inode_mut(r.ino).mode = mode;
        self.vfs.touch(r.ino);
        // Mode changes alter what a path *means* to permission-aware
        // walkers, so conservatively invalidate cached resolutions.
        self.vfs.bump_namespace_gen();
        Ok(())
    }

    /// `chown(2)` — changing the owner requires CAP_CHOWN; changing the
    /// group requires ownership and membership, or CAP_CHOWN.
    pub fn sys_chown(
        &self,
        pid: Pid,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
    ) -> KResult<()> {
        let r = self.walk(pid, path)?;
        let cred = self.task(pid)?.cred.clone();
        let inode_uid = self.vfs.inode(r.ino).uid;
        if let Some(new_uid) = uid {
            if new_uid != inode_uid && !self.capable(pid, Cap::Chown) {
                return Err(Errno::EPERM);
            }
        }
        if let Some(new_gid) = gid {
            let owns = cred.fsuid == inode_uid;
            let group_change_ok = owns && cred.in_group(new_gid);
            if !group_change_ok && !self.capable(pid, Cap::Chown) {
                return Err(Errno::EPERM);
            }
        }
        // As on Linux, chown by an unprivileged principal clears setuid.
        let clearing = !self.capable(pid, Cap::Fsetid);
        {
            // Scoped: the guard must drop before `touch` relocks the shard.
            let mut inode = self.vfs.inode_mut(r.ino);
            if let Some(u) = uid {
                inode.uid = u;
            }
            if let Some(g) = gid {
                inode.gid = g;
            }
            if clearing {
                inode.mode = Mode(inode.mode.0 & !(Mode::SETUID | Mode::SETGID));
            }
        }
        self.vfs.touch(r.ino);
        self.vfs.bump_namespace_gen();
        Ok(())
    }

    /// `mkdir(2)`.
    pub fn sys_mkdir(&self, pid: Pid, path: &str, mode: Mode) -> KResult<()> {
        let cwd = self.task(pid)?.cwd;
        let (parent, name) = self.vfs.resolve_parent(cwd, path)?;
        for d in parent.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        self.check_access(pid, parent.ino, Access::WRITE.and(Access::EXEC))?;
        let cred = self.task(pid)?.cred.clone();
        self.vfs
            .mkdir(parent.ino, &name, mode, cred.fsuid, cred.egid)?;
        Ok(())
    }

    /// `unlink(2)`.
    pub fn sys_unlink(&self, pid: Pid, path: &str) -> KResult<()> {
        let cwd = self.task(pid)?.cwd;
        let (parent, name) = self.vfs.resolve_parent(cwd, path)?;
        for d in parent.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        self.check_access(pid, parent.ino, Access::WRITE.and(Access::EXEC))?;
        self.vfs.unlink(parent.ino, &name)
    }

    /// `rmdir(2)`.
    pub fn sys_rmdir(&self, pid: Pid, path: &str) -> KResult<()> {
        let cwd = self.task(pid)?.cwd;
        let (parent, name) = self.vfs.resolve_parent(cwd, path)?;
        for d in parent.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        self.check_access(pid, parent.ino, Access::WRITE.and(Access::EXEC))?;
        self.vfs.rmdir(parent.ino, &name)
    }

    /// `rename(2)` — both parents need write+search permission.
    pub fn sys_rename(&self, pid: Pid, from: &str, to: &str) -> KResult<()> {
        let cwd = self.task(pid)?.cwd;
        let (from_parent, from_name) = self.vfs.resolve_parent(cwd, from)?;
        for d in from_parent.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        self.check_access(pid, from_parent.ino, Access::WRITE.and(Access::EXEC))?;
        let (to_parent, to_name) = self.vfs.resolve_parent(cwd, to)?;
        for d in to_parent.dirs.iter() {
            self.check_access(pid, d, Access::EXEC)?;
        }
        self.check_access(pid, to_parent.ino, Access::WRITE.and(Access::EXEC))?;
        self.vfs
            .rename(from_parent.ino, &from_name, to_parent.ino, &to_name)
    }

    /// `symlink(2)`.
    pub fn sys_symlink(&self, pid: Pid, target: &str, linkpath: &str) -> KResult<()> {
        let cwd = self.task(pid)?.cwd;
        let (parent, name) = self.vfs.resolve_parent(cwd, linkpath)?;
        self.check_access(pid, parent.ino, Access::WRITE.and(Access::EXEC))?;
        let cred = self.task(pid)?.cred.clone();
        self.vfs
            .symlink(parent.ino, &name, target, cred.fsuid, cred.egid)?;
        Ok(())
    }

    /// `chdir(2)`.
    pub fn sys_chdir(&self, pid: Pid, path: &str) -> KResult<()> {
        let r = self.walk(pid, path)?;
        if !self.vfs.inode(r.ino).data.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        self.check_access(pid, r.ino, Access::EXEC)?;
        self.task_mut(pid)?.cwd = r.ino;
        Ok(())
    }

    /// Lists a directory's entry names.
    pub fn sys_readdir(&self, pid: Pid, path: &str) -> KResult<Vec<String>> {
        let r = self.walk(pid, path)?;
        self.check_access(pid, r.ino, Access::READ)?;
        let inode = self.vfs.inode(r.ino);
        let entries = inode.dir_entries().ok_or(Errno::ENOTDIR)?;
        let mut names: Vec<String> = entries.keys().map(|n| n.as_str().to_string()).collect();
        names.sort();
        Ok(names)
    }

    /// `pipe(2)` — returns (read fd, write fd).
    pub fn sys_pipe(&self, pid: Pid) -> KResult<(i32, i32)> {
        let id = self.pipes.alloc();
        let mut t = self.task_mut(pid)?;
        let r = t.fd_install(Fd {
            object: FdObject::PipeRead(id),
            cloexec: false,
        })?;
        let w = t.fd_install(Fd {
            object: FdObject::PipeWrite(id),
            cloexec: false,
        })?;
        Ok((r, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;
    use crate::net::SimNet;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        k.vfs.mkdir_p("/etc").unwrap();
        k.vfs.mkdir_p("/tmp").unwrap();
        // world-writable tmp
        let t = k.vfs.resolve(k.vfs.root(), "/tmp").unwrap().ino;
        k.vfs.inode_mut(t).mode = Mode(0o1777);
        k.vfs
            .install_file("/etc/motd", b"hello\n", Mode(0o644), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file(
                "/etc/shadow",
                b"root:$sim$xx$0:0:0\n",
                Mode(0o600),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        (k, root, user)
    }

    #[test]
    fn user_reads_world_readable() {
        let (k, _, u) = boot();
        assert_eq!(k.read_file(u, "/etc/motd").unwrap(), b"hello\n");
    }

    #[test]
    fn user_cannot_read_shadow() {
        let (k, _, u) = boot();
        assert_eq!(k.read_file(u, "/etc/shadow").unwrap_err(), Errno::EACCES);
    }

    #[test]
    fn root_reads_shadow_via_dac_override() {
        let (k, r, _) = boot();
        assert!(k.read_file(r, "/etc/shadow").is_ok());
    }

    #[test]
    fn user_cannot_write_etc() {
        let (k, _, u) = boot();
        assert_eq!(
            k.write_file(u, "/etc/evil", b"x", Mode(0o644)).unwrap_err(),
            Errno::EACCES
        );
        assert_eq!(
            k.append_file(u, "/etc/motd", b"x").unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn create_write_read_in_tmp() {
        let (k, _, u) = boot();
        k.write_file(u, "/tmp/a.txt", b"data", Mode(0o600)).unwrap();
        assert_eq!(k.read_file(u, "/tmp/a.txt").unwrap(), b"data");
        let st = k.sys_stat(u, "/tmp/a.txt").unwrap();
        assert_eq!(st.uid, Uid(1000));
        assert_eq!(st.mode, Mode(0o600));
        assert_eq!(st.size, 4);
    }

    #[test]
    fn append_and_offsets() {
        let (k, _, u) = boot();
        k.write_file(u, "/tmp/log", b"one\n", Mode(0o644)).unwrap();
        k.append_file(u, "/tmp/log", b"two\n").unwrap();
        assert_eq!(k.read_file(u, "/tmp/log").unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn excl_create() {
        let (k, _, u) = boot();
        let mut f = OpenFlags::create_trunc(Mode(0o600));
        f.excl = true;
        let fd = k.sys_open(u, "/tmp/x", f).unwrap();
        k.sys_close(u, fd).unwrap();
        assert_eq!(k.sys_open(u, "/tmp/x", f).unwrap_err(), Errno::EEXIST);
    }

    #[test]
    fn read_requires_read_flag() {
        let (k, _, u) = boot();
        k.write_file(u, "/tmp/y", b"secret", Mode(0o600)).unwrap();
        let fd = k.sys_open(u, "/tmp/y", OpenFlags::write_only()).unwrap();
        let mut buf = Vec::new();
        assert_eq!(k.sys_read(u, fd, &mut buf, 10).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn chmod_chown_rules() {
        let (k, r, u) = boot();
        k.write_file(u, "/tmp/own", b"", Mode(0o644)).unwrap();
        k.sys_chmod(u, "/tmp/own", Mode(0o600)).unwrap();
        // Non-owner cannot chmod.
        assert_eq!(
            k.sys_chmod(u, "/etc/motd", Mode(0o777)).unwrap_err(),
            Errno::EPERM
        );
        // User cannot give a file away.
        assert_eq!(
            k.sys_chown(u, "/tmp/own", Some(Uid::ROOT), None)
                .unwrap_err(),
            Errno::EPERM
        );
        // Root can.
        k.sys_chown(r, "/tmp/own", Some(Uid(1001)), None).unwrap();
        assert_eq!(k.sys_stat(r, "/tmp/own").unwrap().uid, Uid(1001));
    }

    #[test]
    fn chown_clears_setuid_bit() {
        let (k, r, _) = boot();
        k.write_file(r, "/tmp/suid", b"", Mode(0o4755)).unwrap();
        k.sys_chmod(r, "/tmp/suid", Mode(0o4755)).unwrap();
        // Root holds CAP_FSETID so the bit survives root's chown...
        k.sys_chown(r, "/tmp/suid", Some(Uid(1000)), None).unwrap();
        assert!(k.sys_stat(r, "/tmp/suid").unwrap().mode.is_setuid());
    }

    #[test]
    fn mkdir_unlink_rmdir() {
        let (k, _, u) = boot();
        k.sys_mkdir(u, "/tmp/d", Mode(0o755)).unwrap();
        k.write_file(u, "/tmp/d/f", b"x", Mode(0o644)).unwrap();
        assert_eq!(k.sys_rmdir(u, "/tmp/d").unwrap_err(), Errno::ENOTEMPTY);
        k.sys_unlink(u, "/tmp/d/f").unwrap();
        k.sys_rmdir(u, "/tmp/d").unwrap();
        assert_eq!(k.sys_stat(u, "/tmp/d").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn search_permission_enforced() {
        let (k, r, u) = boot();
        k.vfs.mkdir_p("/secret").unwrap();
        let s = k.vfs.resolve(k.vfs.root(), "/secret").unwrap().ino;
        k.vfs.inode_mut(s).mode = Mode(0o700);
        k.write_file(r, "/secret/f", b"x", Mode(0o644)).unwrap();
        assert_eq!(k.read_file(u, "/secret/f").unwrap_err(), Errno::EACCES);
        assert!(k.read_file(r, "/secret/f").is_ok());
    }

    #[test]
    fn chdir_and_relative_paths() {
        let (k, _, u) = boot();
        k.sys_chdir(u, "/tmp").unwrap();
        k.write_file(u, "rel.txt", b"r", Mode(0o644)).unwrap();
        assert_eq!(k.read_file(u, "/tmp/rel.txt").unwrap(), b"r");
        assert_eq!(k.sys_chdir(u, "/etc/motd").unwrap_err(), Errno::ENOTDIR);
    }

    #[test]
    fn readdir_lists_entries() {
        let (k, _, u) = boot();
        k.write_file(u, "/tmp/a", b"", Mode(0o644)).unwrap();
        k.write_file(u, "/tmp/b", b"", Mode(0o644)).unwrap();
        let names = k.sys_readdir(u, "/tmp").unwrap();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn pipe_roundtrip() {
        let (k, _, u) = boot();
        let (r, w) = k.sys_pipe(u).unwrap();
        k.sys_write(u, w, b"through the pipe").unwrap();
        let mut buf = Vec::new();
        let n = k.sys_read(u, r, &mut buf, 1024).unwrap();
        assert_eq!(&buf[..n], b"through the pipe");
        // Empty with live writer -> EAGAIN; after close -> EOF.
        assert_eq!(k.sys_read(u, r, &mut buf, 1).unwrap_err(), Errno::EAGAIN);
        k.sys_close(u, w).unwrap();
        assert_eq!(k.sys_read(u, r, &mut buf, 1).unwrap(), 0);
    }

    #[test]
    fn write_to_closed_pipe_is_epipe() {
        let (k, _, u) = boot();
        let (r, w) = k.sys_pipe(u).unwrap();
        k.sys_close(u, r).unwrap();
        assert_eq!(k.sys_write(u, w, b"x").unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn proc_uptime_readable() {
        let (k, _, u) = boot();
        k.install_standard_devices().unwrap();
        let s = k.read_to_string(u, "/proc/uptime").unwrap();
        assert!(s.contains(".00"));
    }

    #[test]
    fn dev_null_swallows_writes() {
        let (k, _, u) = boot();
        k.install_standard_devices().unwrap();
        let fd = k.sys_open(u, "/dev/null", OpenFlags::write_only()).unwrap();
        assert_eq!(k.sys_write(u, fd, b"gone").unwrap(), 4);
    }
}
