//! Device ioctls: modem configuration (pppd), dm-crypt metadata, video
//! mode setting (KMS), and block-device eject.
//!
//! These are the "calls with privileged options" of the paper's taxonomy
//! (§3.1, after Hecht et al.): the operation family is exported to
//! everyone, but particular options are hard-gated on capabilities in
//! stock Linux even when system policy would allow them.

use crate::caps::Cap;
use crate::dev::{claim_modem, DeviceKind, DmFullStatus, ModemOpt};
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::lsm::{Decision, KmsOp};
use crate::task::{FdObject, Pid};
use crate::trace::{AuditObject, DecisionKind, Hook};
use crate::vfs::InodeData;

/// Ioctl commands dispatched by [`Kernel::sys_ioctl`].
#[derive(Clone, Debug)]
pub enum IoctlCmd {
    /// Configure a modem line (pppd).
    Modem(ModemOpt),
    /// Claim the modem line for this process.
    ModemClaim,
    /// Release the modem line.
    ModemRelease,
    /// dm-crypt full table status — discloses topology **and keys**.
    DmStatus,
    /// Video operations (mode set, VT switch, raw register access).
    Kms(KmsOp),
    /// Eject removable media.
    Eject,
    /// Load media (close the tray).
    LoadMedia,
}

/// Ioctl results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoctlOut {
    /// Nothing to return.
    None,
    /// dm-crypt full status.
    Dm(DmFullStatus),
    /// Current video mode.
    Mode(u32, u32, u32),
}

impl Kernel {
    fn fd_device(&self, pid: Pid, fd: i32) -> KResult<crate::dev::DevId> {
        match self.task(pid)?.fd(fd)?.object {
            FdObject::File { ino, .. } => match self.vfs.inode(ino).data {
                InodeData::CharDev(d) | InodeData::BlockDev(d) => Ok(d),
                _ => Err(Errno::ENOTTY),
            },
            _ => Err(Errno::ENOTTY),
        }
    }

    /// `ioctl(2)` on a device fd.
    pub fn sys_ioctl(&self, pid: Pid, fd: i32, cmd: IoctlCmd) -> KResult<IoctlOut> {
        let dev = self.fd_device(pid, fd)?;
        // Snapshot path + kind so the registry guard is not held across the
        // LSM hooks and audit emissions below.
        let (dev_path, kind) = {
            let devices = self.devices.read();
            let rec = devices.get(dev)?;
            (rec.path.clone(), rec.kind.clone())
        };
        match (cmd, kind) {
            (IoctlCmd::ModemClaim, DeviceKind::Modem(_)) => {
                let pidn = pid.0;
                let mut devices = self.devices.write();
                if let DeviceKind::Modem(m) = &mut devices.get_mut(dev)?.kind {
                    claim_modem(m, pidn)?;
                }
                Ok(IoctlOut::None)
            }
            (IoctlCmd::ModemRelease, DeviceKind::Modem(_)) => {
                let pidn = pid.0;
                let mut devices = self.devices.write();
                if let DeviceKind::Modem(m) = &mut devices.get_mut(dev)?.kind {
                    crate::dev::release_modem(m, pidn);
                }
                Ok(IoctlOut::None)
            }
            (IoctlCmd::Modem(opt), DeviceKind::Modem(state)) => {
                let cred = self.task(pid)?.cred.clone();
                let decision = self.lsm().ioctl_modem(&cred, opt, &state);
                match decision {
                    Decision::UseDefault => {
                        if !self.capable(pid, Cap::NetAdmin) {
                            let msg = format!(
                                "ioctl: modem {:?} denied for {} (no CAP_NET_ADMIN)",
                                opt, cred.ruid
                            );
                            self.emit_kernel_event(
                                pid,
                                "ioctl",
                                Hook::IoctlModem,
                                DecisionKind::Deny,
                                Some(Errno::EPERM),
                                AuditObject::Device(dev_path),
                                msg,
                            );
                            return Err(Errno::EPERM);
                        }
                    }
                    Decision::Allow => {
                        let msg = format!("ioctl: lsm granted modem {:?} to {}", opt, cred.ruid);
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlModem,
                            DecisionKind::Allow,
                            None,
                            AuditObject::Device(dev_path),
                            msg,
                        );
                    }
                    Decision::Deny(e) => {
                        let msg = format!(
                            "ioctl: lsm denied modem {:?} to {} ({})",
                            opt,
                            cred.ruid,
                            e.name()
                        );
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlModem,
                            DecisionKind::Deny,
                            Some(e),
                            AuditObject::Device(dev_path),
                            msg,
                        );
                        return Err(e);
                    }
                }
                let mut devices = self.devices.write();
                if let DeviceKind::Modem(m) = &mut devices.get_mut(dev)?.kind {
                    match opt {
                        ModemOpt::Baud(b) => m.baud = b,
                        ModemOpt::Compression(c) => m.compression = c,
                        ModemOpt::FlowControl(f) => m.flow_control = f,
                        ModemOpt::HardwareReset => {
                            *m = crate::dev::ModemState::default();
                        }
                    }
                }
                Ok(IoctlOut::None)
            }
            (IoctlCmd::DmStatus, DeviceKind::DmCrypt(state)) => {
                let cred = self.task(pid)?.cred.clone();
                let decision = self.lsm().ioctl_dmcrypt(&cred);
                match decision {
                    Decision::UseDefault => {
                        if !self.capable(pid, Cap::SysAdmin) {
                            let msg = format!(
                                "ioctl: dm status denied for {} (no CAP_SYS_ADMIN)",
                                cred.ruid
                            );
                            self.emit_kernel_event(
                                pid,
                                "ioctl",
                                Hook::IoctlDmcrypt,
                                DecisionKind::Deny,
                                Some(Errno::EPERM),
                                AuditObject::Device(dev_path),
                                msg,
                            );
                            return Err(Errno::EPERM);
                        }
                    }
                    Decision::Allow => {}
                    Decision::Deny(e) => {
                        let msg = format!(
                            "ioctl: lsm denied dm status to {} ({})",
                            cred.ruid,
                            e.name()
                        );
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlDmcrypt,
                            DecisionKind::Deny,
                            Some(e),
                            AuditObject::Device(dev_path),
                            msg,
                        );
                        return Err(e);
                    }
                }
                // All-or-nothing disclosure: this is the interface flaw the
                // paper highlights (Table 4) — the same ioctl returns keys.
                Ok(IoctlOut::Dm(DmFullStatus {
                    name: state.name.clone(),
                    physical_device: state.physical_device.clone(),
                    cipher: state.cipher.clone(),
                    key_material: state.key_material.clone(),
                }))
            }
            (IoctlCmd::Kms(op), DeviceKind::Video(state)) => {
                let cred = self.task(pid)?.cred.clone();
                let decision = self.lsm().ioctl_kms(&cred, op);
                match decision {
                    Decision::UseDefault => {
                        // Stock policy: with KMS the kernel manages mode
                        // setting and VT switching for any console owner;
                        // raw register access (the pre-KMS path) requires
                        // CAP_SYS_RAWIO + CAP_SYS_ADMIN. On a non-KMS card
                        // every operation needs the capabilities — this is
                        // why pre-KMS X must be setuid root (§4.5).
                        let privileged_ok =
                            self.capable(pid, Cap::SysRawio) && self.capable(pid, Cap::SysAdmin);
                        let need_priv =
                            matches!(op, KmsOp::RawRegisterAccess) || !state.kms_capable;
                        if need_priv && !privileged_ok {
                            let msg = format!(
                                "ioctl: kms {:?} denied for {} (needs CAP_SYS_RAWIO+CAP_SYS_ADMIN)",
                                op, cred.ruid
                            );
                            self.emit_kernel_event(
                                pid,
                                "ioctl",
                                Hook::IoctlKms,
                                DecisionKind::Deny,
                                Some(Errno::EPERM),
                                AuditObject::Device(dev_path),
                                msg,
                            );
                            return Err(Errno::EPERM);
                        }
                    }
                    Decision::Allow => {}
                    Decision::Deny(e) => {
                        let msg = format!(
                            "ioctl: lsm denied kms {:?} to {} ({})",
                            op,
                            cred.ruid,
                            e.name()
                        );
                        self.emit_lsm_event(
                            pid,
                            "ioctl",
                            Hook::IoctlKms,
                            DecisionKind::Deny,
                            Some(e),
                            AuditObject::Device(dev_path),
                            msg,
                        );
                        return Err(e);
                    }
                }
                let mut devices = self.devices.write();
                if let DeviceKind::Video(v) = &mut devices.get_mut(dev)?.kind {
                    match op {
                        KmsOp::SetMode {
                            width,
                            height,
                            refresh,
                        } => {
                            v.mode = (width, height, refresh);
                        }
                        KmsOp::VtSwitch { vt } => {
                            // The kernel saves and restores per-VT state —
                            // the division of labour KMS introduced.
                            let old = v.active_vt;
                            let old_mode = v.mode;
                            v.saved_states.retain(|(svt, _)| *svt != old);
                            v.saved_states.push((old, old_mode));
                            if let Some((_, m)) = v.saved_states.iter().find(|(svt, _)| *svt == vt)
                            {
                                v.mode = *m;
                            }
                            v.active_vt = vt;
                        }
                        KmsOp::RawRegisterAccess => {}
                    }
                    return Ok(IoctlOut::Mode(v.mode.0, v.mode.1, v.mode.2));
                }
                Ok(IoctlOut::None)
            }
            (IoctlCmd::Eject, DeviceKind::Block(_)) => {
                // Ejecting is permitted to the device-node owner/group (the
                // classic cdrom group) — our DAC check happened at open.
                let mut devices = self.devices.write();
                if let DeviceKind::Block(b) = &mut devices.get_mut(dev)?.kind {
                    b.ejected = true;
                }
                Ok(IoctlOut::None)
            }
            (IoctlCmd::LoadMedia, DeviceKind::Block(_)) => {
                let mut devices = self.devices.write();
                if let DeviceKind::Block(b) = &mut devices.get_mut(dev)?.kind {
                    b.ejected = false;
                }
                Ok(IoctlOut::None)
            }
            _ => Err(Errno::ENOTTY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Credentials, Gid, Uid};
    use crate::net::SimNet;
    use crate::syscall::OpenFlags;

    fn boot() -> (Kernel, Pid, Pid) {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        k.install_standard_devices().unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/pppd");
        (k, root, user)
    }

    fn open_dev(k: &Kernel, pid: Pid, path: &str) -> i32 {
        k.sys_open(pid, path, OpenFlags::read_write()).unwrap()
    }

    #[test]
    fn modem_config_requires_cap_on_stock() {
        let (k, root, user) = boot();
        let fd_u = open_dev(&k, user, "/dev/ttyS0");
        assert_eq!(
            k.sys_ioctl(user, fd_u, IoctlCmd::Modem(ModemOpt::Baud(57600)))
                .unwrap_err(),
            Errno::EPERM
        );
        let fd_r = open_dev(&k, root, "/dev/ttyS0");
        k.sys_ioctl(root, fd_r, IoctlCmd::Modem(ModemOpt::Baud(57600)))
            .unwrap();
    }

    #[test]
    fn modem_claim_exclusive() {
        let (k, root, user) = boot();
        let fd_u = open_dev(&k, user, "/dev/ttyS0");
        k.sys_ioctl(user, fd_u, IoctlCmd::ModemClaim).unwrap();
        let fd_r = open_dev(&k, root, "/dev/ttyS0");
        assert_eq!(
            k.sys_ioctl(root, fd_r, IoctlCmd::ModemClaim).unwrap_err(),
            Errno::EBUSY
        );
        k.sys_ioctl(user, fd_u, IoctlCmd::ModemRelease).unwrap();
        k.sys_ioctl(root, fd_r, IoctlCmd::ModemClaim).unwrap();
    }

    #[test]
    fn dm_ioctl_discloses_keys_to_root_only() {
        let (k, root, user) = boot();
        // The node is 0660 root:root — user can't even open it; loosen to
        // demonstrate that the *ioctl* check also protects it.
        let r = k
            .vfs
            .resolve(k.vfs.root(), "/dev/mapper/cryptohome")
            .unwrap()
            .ino;
        k.vfs.inode_mut(r).mode = crate::vfs::Mode(0o666);
        let fd_u = open_dev(&k, user, "/dev/mapper/cryptohome");
        assert_eq!(
            k.sys_ioctl(user, fd_u, IoctlCmd::DmStatus).unwrap_err(),
            Errno::EPERM
        );
        let fd_r = open_dev(&k, root, "/dev/mapper/cryptohome");
        match k.sys_ioctl(root, fd_r, IoctlCmd::DmStatus).unwrap() {
            IoctlOut::Dm(s) => {
                assert_eq!(s.physical_device, "/dev/sda3");
                assert!(!s.key_material.is_empty());
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn kms_mode_set_unprivileged() {
        let (k, _, user) = boot();
        let fd = open_dev(&k, user, "/dev/dri/card0");
        let out = k
            .sys_ioctl(
                user,
                fd,
                IoctlCmd::Kms(KmsOp::SetMode {
                    width: 1920,
                    height: 1080,
                    refresh: 60,
                }),
            )
            .unwrap();
        assert_eq!(out, IoctlOut::Mode(1920, 1080, 60));
    }

    #[test]
    fn kms_vt_switch_saves_and_restores() {
        let (k, _, user) = boot();
        let fd = open_dev(&k, user, "/dev/dri/card0");
        k.sys_ioctl(
            user,
            fd,
            IoctlCmd::Kms(KmsOp::SetMode {
                width: 1920,
                height: 1080,
                refresh: 60,
            }),
        )
        .unwrap();
        k.sys_ioctl(user, fd, IoctlCmd::Kms(KmsOp::VtSwitch { vt: 2 }))
            .unwrap();
        k.sys_ioctl(
            user,
            fd,
            IoctlCmd::Kms(KmsOp::SetMode {
                width: 800,
                height: 600,
                refresh: 75,
            }),
        )
        .unwrap();
        let out = k
            .sys_ioctl(user, fd, IoctlCmd::Kms(KmsOp::VtSwitch { vt: 1 }))
            .unwrap();
        // The kernel restored VT 1's mode.
        assert_eq!(out, IoctlOut::Mode(1920, 1080, 60));
    }

    #[test]
    fn raw_register_access_requires_privilege() {
        let (k, root, user) = boot();
        let fd_u = open_dev(&k, user, "/dev/dri/card0");
        assert_eq!(
            k.sys_ioctl(user, fd_u, IoctlCmd::Kms(KmsOp::RawRegisterAccess))
                .unwrap_err(),
            Errno::EPERM
        );
        let fd_r = open_dev(&k, root, "/dev/dri/card0");
        k.sys_ioctl(root, fd_r, IoctlCmd::Kms(KmsOp::RawRegisterAccess))
            .unwrap();
    }

    #[test]
    fn pre_kms_card_needs_root_for_everything() {
        let (k, _, user) = boot();
        let dev = k.devices.read().id_by_path("/dev/dri/card0").unwrap();
        {
            let mut devices = k.devices.write();
            if let DeviceKind::Video(v) = &mut devices.get_mut(dev).unwrap().kind {
                v.kms_capable = false;
            }
        }
        let fd = open_dev(&k, user, "/dev/dri/card0");
        assert_eq!(
            k.sys_ioctl(
                user,
                fd,
                IoctlCmd::Kms(KmsOp::SetMode {
                    width: 640,
                    height: 480,
                    refresh: 60
                })
            )
            .unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn eject_and_reload() {
        let (k, root, _) = boot();
        let fd = open_dev(&k, root, "/dev/cdrom");
        k.sys_ioctl(root, fd, IoctlCmd::Eject).unwrap();
        let dev = k.devices.read().id_by_path("/dev/cdrom").unwrap();
        {
            let devices = k.devices.read();
            match &devices.get(dev).unwrap().kind {
                DeviceKind::Block(b) => assert!(b.ejected),
                _ => unreachable!(),
            }
        }
        k.sys_ioctl(root, fd, IoctlCmd::LoadMedia).unwrap();
    }

    #[test]
    fn ioctl_on_regular_file_is_enotty() {
        let (k, root, _) = boot();
        k.vfs.mkdir_p("/tmp").unwrap();
        k.write_file(root, "/tmp/f", b"", crate::vfs::Mode(0o644))
            .unwrap();
        let fd = k.sys_open(root, "/tmp/f", OpenFlags::read_only()).unwrap();
        assert_eq!(
            k.sys_ioctl(root, fd, IoctlCmd::Eject).unwrap_err(),
            Errno::ENOTTY
        );
    }

    #[test]
    fn mismatched_cmd_device_is_enotty() {
        let (k, root, _) = boot();
        let fd = open_dev(&k, root, "/dev/ttyS0");
        assert_eq!(
            k.sys_ioctl(root, fd, IoctlCmd::DmStatus).unwrap_err(),
            Errno::ENOTTY
        );
    }
}
