//! The system-call surface, implemented as `impl Kernel` blocks.
//!
//! Eight system calls carry the privilege requirements the paper studies
//! (Table 4): `socket`, `ioctl`, `bind`, `mount`, `umount`, `setuid`,
//! `setgid`, and (credential-database) `open`. Each consults the active
//! LSM at the same decision point Protego hooks in Linux.
//!
//! Every entry point is also reachable through the typed ABI in [`abi`]:
//! [`Kernel::dispatch`](crate::kernel::Kernel::dispatch) maps a
//! [`Syscall`] request onto the matching `sys_*` method and threads it
//! through the registered [`Interceptor`] chain (fault injection, trace
//! record/replay, per-class metering).

pub mod abi;
mod fs;
mod id;
pub mod interceptor;
mod ioctl;
mod mount;
mod net;
mod process;

pub use abi::{NetfilterRule, SysRet, Syscall, SyscallClass, Whence};
pub use fs::{OpenFlags, Stat};
pub use interceptor::{
    FaultConfig, FaultInjector, FaultStats, Interceptor, OneShot, SysCtx, SyscallMeter, Verdict,
};
pub use ioctl::{IoctlCmd, IoctlOut};
pub use net::{NetfilterOp, RouteOp};
