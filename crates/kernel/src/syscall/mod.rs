//! The system-call surface, implemented as `impl Kernel` blocks.
//!
//! Eight system calls carry the privilege requirements the paper studies
//! (Table 4): `socket`, `ioctl`, `bind`, `mount`, `umount`, `setuid`,
//! `setgid`, and (credential-database) `open`. Each consults the active
//! LSM at the same decision point Protego hooks in Linux.

mod fs;
mod id;
mod ioctl;
mod mount;
mod net;
mod process;

pub use fs::{OpenFlags, Stat};
pub use ioctl::{IoctlCmd, IoctlOut};
pub use net::{NetfilterOp, RouteOp};
