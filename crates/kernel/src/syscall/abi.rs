//! The unified syscall ABI: a typed request/response boundary over the
//! `sys_*` entry points.
//!
//! Every kernel entry point in the [`crate::syscall`] modules can be
//! invoked in two equivalent ways: directly (`kernel.sys_open(pid, ..)`)
//! or through [`Kernel::dispatch`] with a [`Syscall`] request value. The
//! dispatcher is a thin, total mapping — it calls the very same `sys_*`
//! method — but it gives the simulation one boundary at which to perturb,
//! record, and replay a run:
//!
//! * [`crate::syscall::Interceptor`]s registered on the kernel see every
//!   dispatched call before and after execution. A `before` hook may
//!   short-circuit the call with an injected errno (fault injection); an
//!   `after` hook observes the full `(pid, Syscall, SysRet)` triple
//!   (trace recording, replay checking, metering).
//! * Because the whole simulation is deterministic, the dispatched stream
//!   of a run replays byte-identically under the same seed, which turns
//!   behavioural comparisons (the paper's §5.3 legacy-vs-Protego
//!   divergence suite) into diffs over recorded traces.
//!
//! The request enum owns its arguments (`String`/`Vec` rather than
//! borrows) so a recorded call is self-contained.

use crate::cred::{Gid, Uid};
use crate::error::{Errno, KResult};
use crate::kernel::Kernel;
use crate::net::{Domain, Ipv4, Packet, SockType};
use crate::syscall::interceptor::{SysCtx, Verdict};
use crate::syscall::{Interceptor, IoctlCmd, IoctlOut, NetfilterOp, OpenFlags, RouteOp, Stat};
use crate::task::{NsKind, Pid};
use crate::trace;
use crate::trace::{AuditObject, DecisionKind, Hook, Provenance};
use crate::vfs::Mode;
use std::sync::Arc;

/// The class a syscall belongs to — the granularity at which the fault
/// injector targets errno storms and the meter aggregates counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SyscallClass {
    /// Filesystem calls (open/read/write/stat/...).
    Fs,
    /// Credential calls (setuid/setgid/...).
    Id,
    /// Device ioctls.
    Ioctl,
    /// mount/umount.
    Mount,
    /// Sockets, packets, netfilter, and routing.
    Net,
    /// fork/execve/unshare/exit/wait.
    Process,
}

impl SyscallClass {
    /// Number of syscall classes ([`SyscallClass::ALL`] length).
    pub const COUNT: usize = 6;

    /// Fixed array index for this class (discriminant order, which is
    /// also the [`SyscallClass::ALL`] / alphabetical-name order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// All classes, in stable order.
    pub const ALL: [SyscallClass; 6] = [
        SyscallClass::Fs,
        SyscallClass::Id,
        SyscallClass::Ioctl,
        SyscallClass::Mount,
        SyscallClass::Net,
        SyscallClass::Process,
    ];

    /// Stable lower-case name (metrics keys).
    pub fn name(self) -> &'static str {
        match self {
            SyscallClass::Fs => "fs",
            SyscallClass::Id => "id",
            SyscallClass::Ioctl => "ioctl",
            SyscallClass::Mount => "mount",
            SyscallClass::Net => "net",
            SyscallClass::Process => "process",
        }
    }
}

/// `lseek(2)` origin selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Whence {
    /// `SEEK_SET` — from the start of the file.
    Set,
    /// `SEEK_CUR` — from the current offset.
    Cur,
    /// `SEEK_END` — from the end of the file.
    End,
}

/// A netfilter OUTPUT-chain rule as reported by
/// [`Kernel::sys_netfilter_list`] — the public view of the kernel's
/// internal rule representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetfilterRule {
    /// Rule name (iptables comment).
    pub name: String,
    /// Matches only packets sent through raw/packet sockets.
    pub raw_socket_only: bool,
    /// Protocol match, rendered (`"icmp"`, `"tcp"`, `"udp"`, `"arp"`,
    /// `"ip"`), or `None` for any protocol.
    pub proto: Option<String>,
    /// ICMP type whitelist, when the rule carries one.
    pub icmp_types: Option<Vec<u8>>,
    /// Destination-port range match, when the rule carries one.
    pub dst_ports: Option<(u16, u16)>,
    /// Spoof-analysis match (`Some(true)` = spoofed only).
    pub spoofed: Option<bool>,
    /// Whether the rule accepts (vs drops) matching packets.
    pub accept: bool,
}

impl From<&crate::net::Rule> for NetfilterRule {
    fn from(r: &crate::net::Rule) -> NetfilterRule {
        use crate::net::{ProtoMatch, Verdict};
        NetfilterRule {
            name: r.name.clone(),
            raw_socket_only: r.raw_socket_only,
            proto: r.proto.map(|p| {
                match p {
                    ProtoMatch::Icmp => "icmp",
                    ProtoMatch::Tcp => "tcp",
                    ProtoMatch::Udp => "udp",
                    ProtoMatch::Arp => "arp",
                    ProtoMatch::OtherIp => "ip",
                }
                .to_string()
            }),
            icmp_types: r.icmp_types.clone(),
            dst_ports: r.dst_ports,
            spoofed: r.spoofed,
            accept: r.verdict == Verdict::Accept,
        }
    }
}

impl std::fmt::Display for NetfilterRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}",
            self.name,
            if self.accept { "ACCEPT" } else { "DROP" }
        )?;
        if self.raw_socket_only {
            write!(f, " raw")?;
        }
        if let Some(p) = &self.proto {
            write!(f, " proto={}", p)?;
        }
        if let Some(t) = &self.icmp_types {
            write!(f, " icmp-types={:?}", t)?;
        }
        if let Some((lo, hi)) = self.dst_ports {
            write!(f, " dports={}-{}", lo, hi)?;
        }
        if let Some(s) = self.spoofed {
            write!(f, " spoofed={}", s)?;
        }
        Ok(())
    }
}

/// A typed syscall request: one variant per `sys_*` entry point, owning
/// its arguments so a recorded call is self-contained.
#[derive(Clone, Debug)]
pub enum Syscall {
    // ------------------------------------------------------------- fs --
    /// `open(2)`.
    Open {
        /// Path to open.
        path: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// `close(2)`.
    Close {
        /// Descriptor to close.
        fd: i32,
    },
    /// `read(2)` — the response carries the bytes read.
    Read {
        /// Descriptor to read from.
        fd: i32,
        /// Maximum byte count.
        count: usize,
    },
    /// `write(2)`.
    Write {
        /// Descriptor to write to.
        fd: i32,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// `lseek(2)`.
    Lseek {
        /// Descriptor to seek.
        fd: i32,
        /// Signed displacement from `whence`.
        offset: i64,
        /// Seek origin.
        whence: Whence,
    },
    /// `stat(2)`.
    Stat {
        /// Path to inspect.
        path: String,
    },
    /// `lstat(2)`.
    Lstat {
        /// Path to inspect (not following a trailing symlink).
        path: String,
    },
    /// `chmod(2)`.
    Chmod {
        /// Path to change.
        path: String,
        /// New mode bits.
        mode: Mode,
    },
    /// `chown(2)`.
    Chown {
        /// Path to change.
        path: String,
        /// New owner, if changing.
        uid: Option<Uid>,
        /// New group, if changing.
        gid: Option<Gid>,
    },
    /// `mkdir(2)`.
    Mkdir {
        /// Directory to create.
        path: String,
        /// Mode bits.
        mode: Mode,
    },
    /// `unlink(2)`.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// `rmdir(2)`.
    Rmdir {
        /// Directory to remove.
        path: String,
    },
    /// `rename(2)`.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `symlink(2)`.
    Symlink {
        /// Link target.
        target: String,
        /// Path of the new link.
        linkpath: String,
    },
    /// `chdir(2)`.
    Chdir {
        /// New working directory.
        path: String,
    },
    /// `readdir(3)`.
    Readdir {
        /// Directory to list.
        path: String,
    },
    /// `pipe(2)`.
    Pipe,
    // ------------------------------------------------------------- id --
    /// `setuid(2)`.
    Setuid {
        /// Target uid.
        uid: Uid,
    },
    /// `seteuid(2)`.
    Seteuid {
        /// Target effective uid.
        uid: Uid,
    },
    /// `setgid(2)`.
    Setgid {
        /// Target gid.
        gid: Gid,
    },
    /// `setgroups(2)`.
    Setgroups {
        /// New supplementary group list.
        groups: Vec<Gid>,
    },
    /// `getuid(2)`.
    Getuid,
    /// `geteuid(2)`.
    Geteuid,
    /// `getgid(2)`.
    Getgid,
    // ---------------------------------------------------------- ioctl --
    /// `ioctl(2)` on a device fd.
    Ioctl {
        /// Device descriptor.
        fd: i32,
        /// Command.
        cmd: IoctlCmd,
    },
    // ---------------------------------------------------------- mount --
    /// `mount(2)`.
    Mount {
        /// Device or pseudo-fs source.
        source: String,
        /// Mountpoint path.
        target: String,
        /// Filesystem type.
        fstype: String,
        /// Comma-separated options.
        options: String,
    },
    /// `umount(2)`.
    Umount {
        /// Mountpoint path.
        target: String,
    },
    // ------------------------------------------------------------ net --
    /// `socket(2)`.
    Socket {
        /// Address family.
        domain: Domain,
        /// Socket type.
        stype: SockType,
        /// Protocol number.
        protocol: u8,
    },
    /// `bind(2)`.
    Bind {
        /// Socket descriptor.
        fd: i32,
        /// Local address.
        addr: Ipv4,
        /// Local port.
        port: u16,
    },
    /// `listen(2)`.
    Listen {
        /// Socket descriptor.
        fd: i32,
    },
    /// `connect(2)`.
    Connect {
        /// Socket descriptor.
        fd: i32,
        /// Remote address.
        addr: Ipv4,
        /// Remote port.
        port: u16,
    },
    /// `accept(2)`.
    Accept {
        /// Listening descriptor.
        fd: i32,
    },
    /// `send(2)` on a connected socket.
    Send {
        /// Socket descriptor.
        fd: i32,
        /// Payload.
        data: Vec<u8>,
    },
    /// `recv(2)` on a connected socket.
    Recv {
        /// Socket descriptor.
        fd: i32,
        /// Maximum byte count.
        max: usize,
    },
    /// Raw packet reception.
    RecvPacket {
        /// Raw/packet socket descriptor.
        fd: i32,
    },
    /// `sendto(2)` on a UDP socket.
    Sendto {
        /// Socket descriptor.
        fd: i32,
        /// Destination address.
        addr: Ipv4,
        /// Destination port.
        port: u16,
        /// Payload.
        data: Vec<u8>,
    },
    /// Raw packet transmission (caller-built headers).
    SendPacket {
        /// Raw/packet socket descriptor.
        fd: i32,
        /// The packet, headers included.
        pkt: Packet,
    },
    /// `socketpair(2)`.
    Socketpair,
    /// Netfilter administration (the iptables backend).
    Netfilter {
        /// Chain operation.
        op: NetfilterOp,
    },
    /// Lists the OUTPUT-chain rules.
    NetfilterList,
    /// Routing-table ioctls (`SIOCADDRT`/`SIOCDELRT`).
    IoctlRoute {
        /// Route operation.
        op: RouteOp,
    },
    // -------------------------------------------------------- process --
    /// `fork(2)`.
    Fork,
    /// `execve(2)`.
    Execve {
        /// Program path.
        path: String,
    },
    /// `unshare(2)`.
    Unshare {
        /// Namespace kind to unshare.
        kind: NsKind,
    },
    /// `exit(2)`.
    Exit {
        /// Exit status.
        status: i32,
    },
    /// `waitpid(2)`.
    Wait {
        /// Child to reap.
        child: Pid,
    },
}

impl Syscall {
    /// Stable syscall name (matches the audit-event `syscall` field where
    /// the call emits events).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Read { .. } => "read",
            Syscall::Write { .. } => "write",
            Syscall::Lseek { .. } => "lseek",
            Syscall::Stat { .. } => "stat",
            Syscall::Lstat { .. } => "lstat",
            Syscall::Chmod { .. } => "chmod",
            Syscall::Chown { .. } => "chown",
            Syscall::Mkdir { .. } => "mkdir",
            Syscall::Unlink { .. } => "unlink",
            Syscall::Rmdir { .. } => "rmdir",
            Syscall::Rename { .. } => "rename",
            Syscall::Symlink { .. } => "symlink",
            Syscall::Chdir { .. } => "chdir",
            Syscall::Readdir { .. } => "readdir",
            Syscall::Pipe => "pipe",
            Syscall::Setuid { .. } => "setuid",
            Syscall::Seteuid { .. } => "seteuid",
            Syscall::Setgid { .. } => "setgid",
            Syscall::Setgroups { .. } => "setgroups",
            Syscall::Getuid => "getuid",
            Syscall::Geteuid => "geteuid",
            Syscall::Getgid => "getgid",
            Syscall::Ioctl { .. } => "ioctl",
            Syscall::Mount { .. } => "mount",
            Syscall::Umount { .. } => "umount",
            Syscall::Socket { .. } => "socket",
            Syscall::Bind { .. } => "bind",
            Syscall::Listen { .. } => "listen",
            Syscall::Connect { .. } => "connect",
            Syscall::Accept { .. } => "accept",
            Syscall::Send { .. } => "send",
            Syscall::Recv { .. } => "recv",
            Syscall::RecvPacket { .. } => "recv_packet",
            Syscall::Sendto { .. } => "sendto",
            Syscall::SendPacket { .. } => "send_packet",
            Syscall::Socketpair => "socketpair",
            Syscall::Netfilter { .. } => "netfilter",
            Syscall::NetfilterList => "netfilter_list",
            Syscall::IoctlRoute { .. } => "ioctl_route",
            Syscall::Fork => "fork",
            Syscall::Execve { .. } => "execve",
            Syscall::Unshare { .. } => "unshare",
            Syscall::Exit { .. } => "exit",
            Syscall::Wait { .. } => "wait",
        }
    }

    /// Number of syscall variants (the fixed-counter table size).
    pub const COUNT: usize = 46;

    /// Every ABI syscall name, in variant-declaration order. The index of
    /// a name here matches [`Syscall::name_index`], so metrics can use a
    /// fixed `[T; Syscall::COUNT]` table instead of a map on the dispatch
    /// fast path.
    pub const NAMES: [&'static str; Syscall::COUNT] = [
        "open",
        "close",
        "read",
        "write",
        "lseek",
        "stat",
        "lstat",
        "chmod",
        "chown",
        "mkdir",
        "unlink",
        "rmdir",
        "rename",
        "symlink",
        "chdir",
        "readdir",
        "pipe",
        "setuid",
        "seteuid",
        "setgid",
        "setgroups",
        "getuid",
        "geteuid",
        "getgid",
        "ioctl",
        "mount",
        "umount",
        "socket",
        "bind",
        "listen",
        "connect",
        "accept",
        "send",
        "recv",
        "recv_packet",
        "sendto",
        "send_packet",
        "socketpair",
        "netfilter",
        "netfilter_list",
        "ioctl_route",
        "fork",
        "execve",
        "unshare",
        "exit",
        "wait",
    ];

    /// Fixed table index for an ABI syscall name (a compiler-optimised
    /// string match — no allocation, no map). `None` for names that are
    /// not ABI syscalls (kernel-internal audit pathways like `"auth"`).
    pub fn name_index(name: &str) -> Option<usize> {
        let idx = match name {
            "open" => 0,
            "close" => 1,
            "read" => 2,
            "write" => 3,
            "lseek" => 4,
            "stat" => 5,
            "lstat" => 6,
            "chmod" => 7,
            "chown" => 8,
            "mkdir" => 9,
            "unlink" => 10,
            "rmdir" => 11,
            "rename" => 12,
            "symlink" => 13,
            "chdir" => 14,
            "readdir" => 15,
            "pipe" => 16,
            "setuid" => 17,
            "seteuid" => 18,
            "setgid" => 19,
            "setgroups" => 20,
            "getuid" => 21,
            "geteuid" => 22,
            "getgid" => 23,
            "ioctl" => 24,
            "mount" => 25,
            "umount" => 26,
            "socket" => 27,
            "bind" => 28,
            "listen" => 29,
            "connect" => 30,
            "accept" => 31,
            "send" => 32,
            "recv" => 33,
            "recv_packet" => 34,
            "sendto" => 35,
            "send_packet" => 36,
            "socketpair" => 37,
            "netfilter" => 38,
            "netfilter_list" => 39,
            "ioctl_route" => 40,
            "fork" => 41,
            "execve" => 42,
            "unshare" => 43,
            "exit" => 44,
            "wait" => 45,
            _ => return None,
        };
        Some(idx)
    }

    /// Fixed table index of this call — the position of its name in
    /// [`Syscall::NAMES`], computed by a direct variant match so per-call
    /// table lookups (seccomp action arrays, per-syscall counters) cost a
    /// jump, not a string comparison. Invariant `Syscall::NAMES[c.index()]
    /// == c.name()` is locked by a test.
    pub fn index(&self) -> usize {
        match self {
            Syscall::Open { .. } => 0,
            Syscall::Close { .. } => 1,
            Syscall::Read { .. } => 2,
            Syscall::Write { .. } => 3,
            Syscall::Lseek { .. } => 4,
            Syscall::Stat { .. } => 5,
            Syscall::Lstat { .. } => 6,
            Syscall::Chmod { .. } => 7,
            Syscall::Chown { .. } => 8,
            Syscall::Mkdir { .. } => 9,
            Syscall::Unlink { .. } => 10,
            Syscall::Rmdir { .. } => 11,
            Syscall::Rename { .. } => 12,
            Syscall::Symlink { .. } => 13,
            Syscall::Chdir { .. } => 14,
            Syscall::Readdir { .. } => 15,
            Syscall::Pipe => 16,
            Syscall::Setuid { .. } => 17,
            Syscall::Seteuid { .. } => 18,
            Syscall::Setgid { .. } => 19,
            Syscall::Setgroups { .. } => 20,
            Syscall::Getuid => 21,
            Syscall::Geteuid => 22,
            Syscall::Getgid => 23,
            Syscall::Ioctl { .. } => 24,
            Syscall::Mount { .. } => 25,
            Syscall::Umount { .. } => 26,
            Syscall::Socket { .. } => 27,
            Syscall::Bind { .. } => 28,
            Syscall::Listen { .. } => 29,
            Syscall::Connect { .. } => 30,
            Syscall::Accept { .. } => 31,
            Syscall::Send { .. } => 32,
            Syscall::Recv { .. } => 33,
            Syscall::RecvPacket { .. } => 34,
            Syscall::Sendto { .. } => 35,
            Syscall::SendPacket { .. } => 36,
            Syscall::Socketpair => 37,
            Syscall::Netfilter { .. } => 38,
            Syscall::NetfilterList => 39,
            Syscall::IoctlRoute { .. } => 40,
            Syscall::Fork => 41,
            Syscall::Execve { .. } => 42,
            Syscall::Unshare { .. } => 43,
            Syscall::Exit { .. } => 44,
            Syscall::Wait { .. } => 45,
        }
    }

    /// The class this call belongs to.
    pub fn class(&self) -> SyscallClass {
        match self {
            Syscall::Open { .. }
            | Syscall::Close { .. }
            | Syscall::Read { .. }
            | Syscall::Write { .. }
            | Syscall::Lseek { .. }
            | Syscall::Stat { .. }
            | Syscall::Lstat { .. }
            | Syscall::Chmod { .. }
            | Syscall::Chown { .. }
            | Syscall::Mkdir { .. }
            | Syscall::Unlink { .. }
            | Syscall::Rmdir { .. }
            | Syscall::Rename { .. }
            | Syscall::Symlink { .. }
            | Syscall::Chdir { .. }
            | Syscall::Readdir { .. }
            | Syscall::Pipe => SyscallClass::Fs,
            Syscall::Setuid { .. }
            | Syscall::Seteuid { .. }
            | Syscall::Setgid { .. }
            | Syscall::Setgroups { .. }
            | Syscall::Getuid
            | Syscall::Geteuid
            | Syscall::Getgid => SyscallClass::Id,
            Syscall::Ioctl { .. } => SyscallClass::Ioctl,
            Syscall::Mount { .. } | Syscall::Umount { .. } => SyscallClass::Mount,
            Syscall::Socket { .. }
            | Syscall::Bind { .. }
            | Syscall::Listen { .. }
            | Syscall::Connect { .. }
            | Syscall::Accept { .. }
            | Syscall::Send { .. }
            | Syscall::Recv { .. }
            | Syscall::RecvPacket { .. }
            | Syscall::Sendto { .. }
            | Syscall::SendPacket { .. }
            | Syscall::Socketpair
            | Syscall::Netfilter { .. }
            | Syscall::NetfilterList
            | Syscall::IoctlRoute { .. } => SyscallClass::Net,
            Syscall::Fork
            | Syscall::Execve { .. }
            | Syscall::Unshare { .. }
            | Syscall::Exit { .. }
            | Syscall::Wait { .. } => SyscallClass::Process,
        }
    }
}

/// A typed syscall response. [`Kernel::dispatch`] returns the variant
/// matching the request (never a mismatched one), or [`SysRet::Err`].
#[derive(Clone, Debug, PartialEq)]
pub enum SysRet {
    /// Success with no payload.
    Unit,
    /// A new file descriptor.
    Fd(i32),
    /// A descriptor pair (pipe, socketpair).
    FdPair(i32, i32),
    /// A byte count (write, send, sendto) or resulting offset (lseek).
    Size(usize),
    /// Bytes read/received.
    Data(Vec<u8>),
    /// Directory entry names.
    Names(Vec<String>),
    /// File metadata.
    Stat(Stat),
    /// An ioctl result.
    Ioctl(IoctlOut),
    /// A received raw packet.
    Packet(Packet),
    /// A uid (getuid/geteuid).
    Uid(Uid),
    /// A gid (getgid).
    Gid(Gid),
    /// A child pid (fork).
    Pid(Pid),
    /// A resolved path (execve).
    Path(String),
    /// A child exit status (wait).
    Status(i32),
    /// The netfilter rule list.
    Rules(Vec<NetfilterRule>),
    /// The call failed (or an interceptor injected a fault).
    Err(Errno),
}

/// Typed accessors. Each converts the response into the `KResult` the
/// matching direct `sys_*` call would have produced; the mismatched-variant
/// arms are unreachable through [`Kernel::dispatch`].
impl SysRet {
    /// Whether the response is an errno.
    pub fn is_err(&self) -> bool {
        matches!(self, SysRet::Err(_))
    }

    /// The errno, if the call failed.
    pub fn err(&self) -> Option<Errno> {
        match self {
            SysRet::Err(e) => Some(*e),
            _ => None,
        }
    }

    /// Unit result.
    pub fn unit(self) -> KResult<()> {
        match self {
            SysRet::Unit => Ok(()),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Unit, got {:?}", other),
        }
    }

    /// File-descriptor result.
    pub fn fd(self) -> KResult<i32> {
        match self {
            SysRet::Fd(n) => Ok(n),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Fd, got {:?}", other),
        }
    }

    /// Descriptor-pair result.
    pub fn fd_pair(self) -> KResult<(i32, i32)> {
        match self {
            SysRet::FdPair(a, b) => Ok((a, b)),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected FdPair, got {:?}", other),
        }
    }

    /// Byte-count/offset result.
    pub fn size(self) -> KResult<usize> {
        match self {
            SysRet::Size(n) => Ok(n),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Size, got {:?}", other),
        }
    }

    /// Byte-payload result.
    pub fn data(self) -> KResult<Vec<u8>> {
        match self {
            SysRet::Data(d) => Ok(d),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Data, got {:?}", other),
        }
    }

    /// Name-list result.
    pub fn names(self) -> KResult<Vec<String>> {
        match self {
            SysRet::Names(n) => Ok(n),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Names, got {:?}", other),
        }
    }

    /// Stat result.
    pub fn stat(self) -> KResult<Stat> {
        match self {
            SysRet::Stat(s) => Ok(s),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Stat, got {:?}", other),
        }
    }

    /// Ioctl result.
    pub fn ioctl(self) -> KResult<IoctlOut> {
        match self {
            SysRet::Ioctl(o) => Ok(o),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Ioctl, got {:?}", other),
        }
    }

    /// Packet result.
    pub fn packet(self) -> KResult<Packet> {
        match self {
            SysRet::Packet(p) => Ok(p),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Packet, got {:?}", other),
        }
    }

    /// Uid result.
    pub fn uid(self) -> KResult<Uid> {
        match self {
            SysRet::Uid(u) => Ok(u),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Uid, got {:?}", other),
        }
    }

    /// Gid result.
    pub fn gid(self) -> KResult<Gid> {
        match self {
            SysRet::Gid(g) => Ok(g),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Gid, got {:?}", other),
        }
    }

    /// Pid result.
    pub fn pid(self) -> KResult<Pid> {
        match self {
            SysRet::Pid(p) => Ok(p),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Pid, got {:?}", other),
        }
    }

    /// Path result.
    pub fn path(self) -> KResult<String> {
        match self {
            SysRet::Path(p) => Ok(p),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Path, got {:?}", other),
        }
    }

    /// Exit-status result.
    pub fn status(self) -> KResult<i32> {
        match self {
            SysRet::Status(s) => Ok(s),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Status, got {:?}", other),
        }
    }

    /// Netfilter rule-list result.
    pub fn rules(self) -> KResult<Vec<NetfilterRule>> {
        match self {
            SysRet::Rules(r) => Ok(r),
            SysRet::Err(e) => Err(e),
            other => unreachable!("ABI mismatch: expected Rules, got {:?}", other),
        }
    }
}

fn wrap<T>(r: KResult<T>, f: impl FnOnce(T) -> SysRet) -> SysRet {
    match r {
        Ok(v) => f(v),
        Err(e) => SysRet::Err(e),
    }
}

impl Kernel {
    /// Dispatches a typed syscall through the interceptor chain.
    ///
    /// Interceptor `before` hooks run in registration order; the first to
    /// return an errno short-circuits the call (the kernel entry point is
    /// never reached and an `interceptor`-provenance audit event records
    /// the injection). `after` hooks run in reverse order and always see
    /// the final response, injected or real.
    pub fn dispatch(&self, pid: Pid, call: Syscall) -> SysRet {
        let _dispatch_span = trace::span(trace::Pathway::Dispatch);
        // Snapshot the chain's shared handles under a brief read lock, so
        // hooks run without holding any kernel lock (an interceptor may
        // itself consult kernel state) and concurrent dispatches do not
        // serialize on the chain. Only enabled slots are snapshotted, in
        // registration order. Short chains (the overwhelmingly common
        // case) snapshot into a stack array so dispatch entry touches no
        // heap; longer chains spill to a clone.
        const IC_INLINE: usize = 4;
        let mut inline: [Option<Arc<dyn Interceptor>>; IC_INLINE] = [None, None, None, None];
        let mut spill: Vec<Arc<dyn Interceptor>> = Vec::new();
        {
            let guard = self.interceptors.read();
            if guard.enabled_len() <= IC_INLINE {
                for (slot, ic) in inline.iter_mut().zip(guard.enabled()) {
                    *slot = Some(ic.clone());
                }
            } else {
                spill = guard.enabled().cloned().collect();
            }
        }
        let chain = || {
            inline
                .iter()
                .filter_map(|s| s.as_deref())
                .chain(spill.iter().map(|a| &**a))
        };
        // One identity snapshot per dispatch — a single task-shard read —
        // shared (it is `Copy`) by every hook of this dispatch.
        let task = self.task_identity(pid);
        let mut injected = None;
        // Complain-mode notes filed by hooks via `Verdict::Note`; empty on
        // the fast path (`Vec::new` does not allocate until first push).
        let mut notes: Vec<(&'static str, Errno, String)> = Vec::new();
        {
            let _before_span = trace::span(trace::Pathway::InterceptBefore);
            for ic in chain() {
                let mut ctx = SysCtx {
                    clock: self.clock(),
                    metrics: &self.metrics,
                    task,
                };
                match ic.before(pid, &call, &mut ctx) {
                    Verdict::Continue => {}
                    Verdict::Deny(e) => {
                        injected = Some((e, ic.name()));
                        break;
                    }
                    Verdict::Note { errno, note } => notes.push((ic.name(), errno, note)),
                }
            }
        }
        for (who, errno, note) in notes {
            self.emit_event(
                pid.0,
                call.name(),
                AuditObject::None,
                Provenance {
                    module: who,
                    hook: Hook::Interceptor,
                    rule: Some(format!("{}:{}:{}", who, call.name(), call.class().name())),
                    decision: DecisionKind::Info,
                    errno: Some(errno),
                },
                note,
            );
        }
        let ret = match injected {
            Some((e, who)) => {
                let msg = format!("{}: injected {} by interceptor '{}'", call.name(), e, who);
                self.emit_event(
                    pid.0,
                    call.name(),
                    AuditObject::None,
                    Provenance {
                        module: "interceptor",
                        hook: Hook::Interceptor,
                        // `rule` carries interceptor, syscall, and class, so
                        // Table-6-style provenance assertions can key on what
                        // was denied, not just who denied it.
                        rule: Some(format!("{}:{}:{}", who, call.name(), call.class().name())),
                        decision: DecisionKind::Deny,
                        errno: Some(e),
                    },
                    msg,
                );
                SysRet::Err(e)
            }
            None => {
                let _body_span = trace::span(trace::Pathway::for_class(call.class()));
                // Bracket the entry point in an arena scope so any pooled
                // path buffers borrowed below are trimmed back to bounds
                // when the dispatch exits (§14 reset discipline).
                crate::vfs::PathArena::scope(|_| self.dispatch_inner(pid, &call))
            }
        };
        {
            let _after_span = trace::span(trace::Pathway::InterceptAfter);
            for ic in chain().rev() {
                let mut ctx = SysCtx {
                    clock: self.clock(),
                    metrics: &self.metrics,
                    task,
                };
                ic.after(pid, &call, &ret, &mut ctx);
            }
        }
        ret
    }

    /// The total request→entry-point mapping behind [`Kernel::dispatch`].
    fn dispatch_inner(&self, pid: Pid, call: &Syscall) -> SysRet {
        match call {
            Syscall::Open { path, flags } => wrap(self.sys_open(pid, path, *flags), SysRet::Fd),
            Syscall::Close { fd } => wrap(self.sys_close(pid, *fd), |()| SysRet::Unit),
            Syscall::Read { fd, count } => {
                let mut buf = Vec::new();
                wrap(self.sys_read(pid, *fd, &mut buf, *count), |_| {
                    SysRet::Data(buf)
                })
            }
            Syscall::Write { fd, data } => wrap(self.sys_write(pid, *fd, data), SysRet::Size),
            Syscall::Lseek { fd, offset, whence } => {
                wrap(self.sys_lseek(pid, *fd, *offset, *whence), SysRet::Size)
            }
            Syscall::Stat { path } => wrap(self.sys_stat(pid, path), SysRet::Stat),
            Syscall::Lstat { path } => wrap(self.sys_lstat(pid, path), SysRet::Stat),
            Syscall::Chmod { path, mode } => {
                wrap(self.sys_chmod(pid, path, *mode), |()| SysRet::Unit)
            }
            Syscall::Chown { path, uid, gid } => {
                wrap(self.sys_chown(pid, path, *uid, *gid), |()| SysRet::Unit)
            }
            Syscall::Mkdir { path, mode } => {
                wrap(self.sys_mkdir(pid, path, *mode), |()| SysRet::Unit)
            }
            Syscall::Unlink { path } => wrap(self.sys_unlink(pid, path), |()| SysRet::Unit),
            Syscall::Rmdir { path } => wrap(self.sys_rmdir(pid, path), |()| SysRet::Unit),
            Syscall::Rename { from, to } => wrap(self.sys_rename(pid, from, to), |()| SysRet::Unit),
            Syscall::Symlink { target, linkpath } => {
                wrap(self.sys_symlink(pid, target, linkpath), |()| SysRet::Unit)
            }
            Syscall::Chdir { path } => wrap(self.sys_chdir(pid, path), |()| SysRet::Unit),
            Syscall::Readdir { path } => wrap(self.sys_readdir(pid, path), SysRet::Names),
            Syscall::Pipe => wrap(self.sys_pipe(pid), |(r, w)| SysRet::FdPair(r, w)),
            Syscall::Setuid { uid } => wrap(self.sys_setuid(pid, *uid), |()| SysRet::Unit),
            Syscall::Seteuid { uid } => wrap(self.sys_seteuid(pid, *uid), |()| SysRet::Unit),
            Syscall::Setgid { gid } => wrap(self.sys_setgid(pid, *gid), |()| SysRet::Unit),
            Syscall::Setgroups { groups } => {
                wrap(self.sys_setgroups(pid, groups), |()| SysRet::Unit)
            }
            Syscall::Getuid => wrap(self.sys_getuid(pid), SysRet::Uid),
            Syscall::Geteuid => wrap(self.sys_geteuid(pid), SysRet::Uid),
            Syscall::Getgid => wrap(self.sys_getgid(pid), SysRet::Gid),
            Syscall::Ioctl { fd, cmd } => {
                wrap(self.sys_ioctl(pid, *fd, cmd.clone()), SysRet::Ioctl)
            }
            Syscall::Mount {
                source,
                target,
                fstype,
                options,
            } => wrap(self.sys_mount(pid, source, target, fstype, options), |()| {
                SysRet::Unit
            }),
            Syscall::Umount { target } => wrap(self.sys_umount(pid, target), |()| SysRet::Unit),
            Syscall::Socket {
                domain,
                stype,
                protocol,
            } => wrap(self.sys_socket(pid, *domain, *stype, *protocol), SysRet::Fd),
            Syscall::Bind { fd, addr, port } => {
                wrap(self.sys_bind(pid, *fd, *addr, *port), |()| SysRet::Unit)
            }
            Syscall::Listen { fd } => wrap(self.sys_listen(pid, *fd), |()| SysRet::Unit),
            Syscall::Connect { fd, addr, port } => {
                wrap(self.sys_connect(pid, *fd, *addr, *port), |()| SysRet::Unit)
            }
            Syscall::Accept { fd } => wrap(self.sys_accept(pid, *fd), SysRet::Fd),
            Syscall::Send { fd, data } => wrap(self.sys_send(pid, *fd, data), SysRet::Size),
            Syscall::Recv { fd, max } => wrap(self.sys_recv(pid, *fd, *max), SysRet::Data),
            Syscall::RecvPacket { fd } => wrap(self.sys_recv_packet(pid, *fd), SysRet::Packet),
            Syscall::Sendto {
                fd,
                addr,
                port,
                data,
            } => wrap(self.sys_sendto(pid, *fd, *addr, *port, data), SysRet::Size),
            Syscall::SendPacket { fd, pkt } => {
                wrap(self.sys_send_packet(pid, *fd, pkt.clone()), |()| {
                    SysRet::Unit
                })
            }
            Syscall::Socketpair => wrap(self.sys_socketpair(pid), |(a, b)| SysRet::FdPair(a, b)),
            Syscall::Netfilter { op } => {
                wrap(self.sys_netfilter(pid, op.clone()), |()| SysRet::Unit)
            }
            Syscall::NetfilterList => wrap(self.sys_netfilter_list(pid), SysRet::Rules),
            Syscall::IoctlRoute { op } => {
                wrap(self.sys_ioctl_route(pid, op.clone()), |()| SysRet::Unit)
            }
            Syscall::Fork => wrap(self.sys_fork(pid), SysRet::Pid),
            Syscall::Execve { path } => wrap(self.sys_execve(pid, path), SysRet::Path),
            Syscall::Unshare { kind } => wrap(self.sys_unshare(pid, *kind), |()| SysRet::Unit),
            Syscall::Exit { status } => wrap(self.sys_exit(pid, *status), |()| SysRet::Unit),
            Syscall::Wait { child } => wrap(self.sys_wait(pid, *child), SysRet::Status),
        }
    }
}
