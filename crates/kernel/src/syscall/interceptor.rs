//! Dispatch-chain interceptors: fault injection, per-class metering,
//! trace capture/replay, and seccomp enforcement.
//!
//! An [`Interceptor`] registered with
//! [`crate::kernel::Kernel::register_interceptor`] (which returns an
//! [`InterceptorSlot`](crate::kernel::InterceptorSlot) handle for later
//! enable/disable/replace) sees every call that flows through
//! [`crate::kernel::Kernel::dispatch`]. `before` hooks run in
//! registration order and return a [`Verdict`]; `after` hooks run in
//! reverse order and observe the final `(pid, Syscall, SysRet)` triple —
//! injected faults included — which is what the trace recorder and
//! replayer consume (see [`crate::trace::TraceRecorder`]).

use crate::error::Errno;
use crate::sync::{lock, PerThread};
use crate::syscall::abi::{SysRet, Syscall, SyscallClass};
use crate::task::{Pid, TaskIdentity};
use crate::trace::ShardedMetrics;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The dispatch context: kernel state an interceptor may consult or
/// update while the dispatcher holds the chain.
///
/// This is the *extensible* surface between the dispatcher and its
/// interceptors: hooks receive `&mut SysCtx` rather than positional
/// arguments precisely so new fields can be added here without another
/// breaking change to every [`Interceptor`] implementor. Current fields:
///
/// - [`clock`](SysCtx::clock) — the logical clock at hook time;
/// - [`metrics`](SysCtx::metrics) — the kernel-wide metrics sink;
/// - [`task`](SysCtx::task) — a [`TaskIdentity`] snapshot of the calling
///   task (uid/euid/binary), taken **once per dispatch** with a single
///   task-shard read and shared by every hook of that dispatch, so
///   identity-aware interceptors (seccomp) pay no per-hook lookup.
pub struct SysCtx<'a> {
    /// The kernel's logical clock at hook time.
    pub clock: u64,
    /// The kernel-wide metrics sink (per-worker shards; see
    /// [`ShardedMetrics`]).
    pub metrics: &'a ShardedMetrics,
    /// Identity of the dispatching task, snapshotted at dispatch entry.
    /// For pids without a live task this is [`TaskIdentity::unknown`]
    /// (the entry point itself will fail with `ESRCH`).
    pub task: TaskIdentity,
}

/// What a `before` hook decided about a dispatched call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Let the call proceed; later hooks and the entry point run.
    Continue,
    /// Short-circuit the call with `errno`: the entry point is never
    /// reached, the caller sees `SysRet::Err(errno)`, and the dispatcher
    /// emits a `Deny` audit event whose `rule` records the interceptor,
    /// the syscall name, and its class.
    Deny(Errno),
    /// Let the call proceed but have the dispatcher emit an
    /// informational audit event on the interceptor's behalf — the
    /// complain-mode primitive: `errno` is what a denying configuration
    /// *would* have returned, `note` the human-readable explanation.
    /// (Informational events reach the ring only while
    /// [`Kernel::trace`](crate::kernel::Kernel::trace) is on, like every
    /// other `Info` event.)
    Note {
        /// The errno an enforcing configuration would have injected.
        errno: Errno,
        /// Human-readable explanation, becomes the audit message.
        note: String,
    },
}

/// A hook pair around every dispatched syscall.
///
/// The kernel stores interceptors as shared handles and many worker
/// threads may dispatch concurrently, so hooks take `&self` and
/// implementations keep mutable state behind a mutex (or [`PerThread`]
/// for values scoped to one dispatch on one thread); they interact with
/// kernel state only through [`SysCtx`] — never by re-entering
/// [`Kernel::dispatch`](crate::kernel::Kernel::dispatch), which does not
/// nest on a thread.
pub trait Interceptor: Send + Sync {
    /// Stable name, recorded in the audit `rule` field when this
    /// interceptor injects a fault or files a complain-mode note.
    fn name(&self) -> &'static str;

    /// Runs before the kernel entry point; the first hook to return
    /// [`Verdict::Deny`] short-circuits the call. [`Verdict::Note`] lets
    /// the call proceed while the dispatcher records an informational
    /// audit event attributed to this interceptor.
    fn before(&self, _pid: Pid, _call: &Syscall, _ctx: &mut SysCtx<'_>) -> Verdict {
        Verdict::Continue
    }

    /// Runs after the response is known (real or injected).
    fn after(&self, _pid: Pid, _call: &Syscall, _ret: &SysRet, _ctx: &mut SysCtx<'_>) {}
}

/// A deterministic xorshift64 generator — the simulation must not pull in
/// a randomness crate, and the fault stream has to be reproducible from
/// the seed alone.
#[derive(Clone, Debug)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            // xorshift has a fixed point at 0; displace it.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

/// A scheduled one-shot fault: fail the `k`-th dispatched call of a named
/// syscall with a chosen errno, exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneShot {
    /// Syscall name to target (e.g. `"mount"`; see [`Syscall::name`]).
    pub syscall: &'static str,
    /// 1-based occurrence to fail.
    pub k: u64,
    /// The errno to inject.
    pub errno: Errno,
}

/// Configuration for the [`FaultInjector`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// PRNG seed; the full fault stream is a function of this value and
    /// the dispatched call sequence.
    pub seed: u64,
    /// Injection rate as "1 in `rate`" per eligible call; `0` disables
    /// random injection (one-shots still fire).
    pub rate: u64,
    /// Classes eligible for random injection. The default deliberately
    /// excludes [`SyscallClass::Process`] so fork/exec/exit/wait — the
    /// harness spine — always runs; fs/net/id calls are where userland
    /// must degrade gracefully.
    pub classes: Vec<SyscallClass>,
    /// Errnos drawn from (uniformly) when a random injection fires.
    pub palette: Vec<Errno>,
    /// Scheduled one-shot faults, checked before the random draw.
    pub one_shots: Vec<OneShot>,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xC0FFEE,
            rate: 0,
            classes: vec![SyscallClass::Fs, SyscallClass::Net, SyscallClass::Id],
            palette: vec![Errno::EINTR, Errno::ENOMEM, Errno::EACCES],
            one_shots: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A 1-in-`rate` random-injection config with the default class set
    /// and palette.
    pub fn storm(seed: u64, rate: u64) -> FaultConfig {
        FaultConfig {
            seed,
            rate,
            ..FaultConfig::default()
        }
    }

    /// Adds a one-shot "fail the `k`-th `syscall`" fault.
    pub fn with_one_shot(mut self, syscall: &'static str, k: u64, errno: Errno) -> FaultConfig {
        self.one_shots.push(OneShot { syscall, k, errno });
        self
    }
}

/// Counters describing what a [`FaultInjector`] actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls inspected.
    pub seen: u64,
    /// Faults injected (random + one-shot).
    pub injected: u64,
    /// Injections keyed by syscall class name.
    pub per_class: BTreeMap<&'static str, u64>,
    /// Injections keyed by errno name.
    pub per_errno: BTreeMap<&'static str, u64>,
    /// Per-one-shot consumption flags, indexed like
    /// [`FaultConfig::one_shots`]. These live in the *shared* stats — not
    /// in injector-private state — so a consumed one-shot stays consumed
    /// even when the injector object is rebuilt and re-registered (the
    /// exec re-selection pattern): pass the old handle to
    /// [`FaultInjector::resuming`] and the replacement cannot re-fire it.
    pub one_shots_fired: Vec<bool>,
}

/// The seeded fault injector (tentpole interceptor #1).
///
/// Decides per dispatched call — deterministically from the seed and the
/// call sequence — whether to short-circuit it with an errno from the
/// palette. One-shot faults ("fail the 2nd mount with `EBUSY`") fire
/// before the random draw and exactly once.
pub struct FaultInjector {
    config: FaultConfig,
    /// PRNG, one-shot bookkeeping, and per-name dispatch counts; a single
    /// mutex keeps (count, draw, fire) decisions atomic per call so the
    /// fault stream stays a deterministic function of arrival order.
    inner: Mutex<FaultState>,
    stats: Arc<Mutex<FaultStats>>,
}

#[derive(Debug)]
struct FaultState {
    rng: XorShift64,
    /// 1-based dispatch counts per syscall name, driving one-shots.
    counts: BTreeMap<&'static str, u64>,
}

impl FaultInjector {
    /// Builds an injector from `config` with fresh stats.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector::resuming(config, Arc::new(Mutex::new(FaultStats::default())))
    }

    /// Builds an injector from `config` that *resumes* an earlier
    /// injector's [`FaultStats`]: counters keep accumulating, and —
    /// critically — one-shots the predecessor already consumed stay
    /// consumed. Use this when exec re-selection (or any interceptor
    /// replace/rebuild cycle) swaps the injector object mid-run:
    /// rebuilding with fresh stats would silently re-arm every one-shot,
    /// so "fail the 2nd mount" could fire again after umount/remount
    /// churn crosses the replacement boundary.
    ///
    /// Occurrence *counting* is injector-local by design (a fresh
    /// injector counts "the k-th mount" from its own registration), but
    /// consumption is a property of the fault plan, so it rides with the
    /// shared stats handle.
    pub fn resuming(config: FaultConfig, stats: Arc<Mutex<FaultStats>>) -> FaultInjector {
        let rng = XorShift64::new(config.seed);
        lock(&stats)
            .one_shots_fired
            .resize(config.one_shots.len(), false);
        FaultInjector {
            config,
            inner: Mutex::new(FaultState {
                rng,
                counts: BTreeMap::new(),
            }),
            stats,
        }
    }

    /// A shared handle onto the injector's counters, usable after the
    /// injector has been boxed into the kernel.
    pub fn stats(&self) -> Arc<Mutex<FaultStats>> {
        Arc::clone(&self.stats)
    }

    fn record(s: &mut FaultStats, call: &Syscall, errno: Errno) {
        s.injected += 1;
        *s.per_class.entry(call.class().name()).or_insert(0) += 1;
        *s.per_errno.entry(errno.name()).or_insert(0) += 1;
    }
}

impl Interceptor for FaultInjector {
    fn name(&self) -> &'static str {
        "fault_injector"
    }

    fn before(&self, _pid: Pid, call: &Syscall, _ctx: &mut SysCtx<'_>) -> Verdict {
        // Lock order: stats before inner, everywhere — the consumption
        // flags live in stats (see `FaultStats::one_shots_fired`) while
        // the PRNG and occurrence counts live in injector-private state.
        let mut s = lock(&self.stats);
        s.seen += 1;
        let mut st = lock(&self.inner);
        let n = st.counts.entry(call.name()).or_insert(0);
        *n += 1;
        let nth = *n;
        for (i, shot) in self.config.one_shots.iter().enumerate() {
            if !s.one_shots_fired[i] && shot.syscall == call.name() && shot.k == nth {
                s.one_shots_fired[i] = true;
                FaultInjector::record(&mut s, call, shot.errno);
                return Verdict::Deny(shot.errno);
            }
        }
        if self.config.rate == 0
            || self.config.palette.is_empty()
            || !self.config.classes.contains(&call.class())
        {
            return Verdict::Continue;
        }
        // Getters are infallible reads; injecting there models nothing.
        if matches!(call, Syscall::Getuid | Syscall::Geteuid | Syscall::Getgid) {
            return Verdict::Continue;
        }
        if st.rng.next().is_multiple_of(self.config.rate) {
            let pick = (st.rng.next() % self.config.palette.len() as u64) as usize;
            let errno = self.config.palette[pick];
            FaultInjector::record(&mut s, call, errno);
            return Verdict::Deny(errno);
        }
        Verdict::Continue
    }
}

/// The per-class latency/count meter (tentpole interceptor #3): folds
/// every dispatched call into [`Metrics::observe_class`](crate::trace::Metrics::observe_class), surfacing
/// `syscall_class_<class>` lines in `/proc/<lsm>/metrics`.
#[derive(Debug, Default)]
pub struct SyscallMeter {
    /// Clock at `before` time. Dispatch never re-enters itself on a
    /// thread, so one pending slot per dispatching thread suffices.
    start: PerThread<Option<u64>>,
}

impl SyscallMeter {
    /// Builds a meter.
    pub fn new() -> SyscallMeter {
        SyscallMeter::default()
    }
}

impl Interceptor for SyscallMeter {
    fn name(&self) -> &'static str {
        "syscall_meter"
    }

    fn before(&self, _pid: Pid, _call: &Syscall, ctx: &mut SysCtx<'_>) -> Verdict {
        self.start.replace(Some(ctx.clock));
        Verdict::Continue
    }

    fn after(&self, _pid: Pid, call: &Syscall, ret: &SysRet, ctx: &mut SysCtx<'_>) {
        let start = self.start.take().unwrap_or(ctx.clock);
        let delta = ctx.clock.saturating_sub(start);
        ctx.metrics.observe_class(call.class(), delta, ret.is_err());
    }
}
