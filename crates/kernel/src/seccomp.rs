//! Trace-derived per-binary syscall allowlists — "auto-seccomp"
//! (DESIGN.md §15).
//!
//! The paper's thesis is that ambient root authority should be replaced
//! by narrow, checkable mechanisms; this module applies the same logic
//! one layer down, to the syscall surface each *binary* may reach. A
//! profiling pass (`tables seccomp-derive`) runs the functional battery
//! and the web/mail workloads under a [`ProfileRecorder`], attributes
//! every dispatched call to the calling task's binary (via the
//! [`TaskIdentity`] snapshot in [`SysCtx`]), and emits one allowlist per
//! binary. At enforcement time each profile is compiled into a flat
//! `[Action; Syscall::COUNT]` array indexed by [`Syscall::index`], so the
//! per-call check is an array load — no maps, no string compares.
//!
//! Lifecycle: profiles and the global mode live in a [`Seccomp`] control
//! block owned by the kernel (`kernel.seccomp`) and shared with the
//! [`SeccompInterceptor`] on the dispatch chain. Userland drives it
//! through `/proc/seccomp/{profiles,status,violations}` (root-only
//! nodes) or directly through this API. Three modes:
//!
//! * **off** — the interceptor passes everything through;
//! * **complain** — out-of-profile calls run, but each files a
//!   [`Violation`] and a typed informational `AuditEvent` (via
//!   [`Verdict::Note`]);
//! * **enforce** — out-of-profile calls are denied with the profile's
//!   deny action; [`Action::Kill`] is modelled as `EPERM` plus a
//!   kill-flagged violation (the simulation has no signal delivery, see
//!   DESIGN.md §17).
//!
//! Profile selection is per-pid: the first dispatch after `fork`/`execve`
//! resolves the task's binary to a profile and caches the choice; the
//! cache entry is invalidated on `execve` (the kernel calls
//! [`Seccomp::forget_pid`]) and when the profile table is reloaded, so a
//! task is always judged by its current image. Binaries without a profile
//! are unconfined — deriving must therefore cover every binary that
//! should be confined. In front of the shared per-pid cache sits a
//! lock-free thread-local memo of the last selection, validated by
//! `(table generation, binary)` — the enforcing hot path is two integer
//! compares plus a shift on a packed allow mask (see `SelMemo`).

use crate::error::Errno;
use crate::sync::{lock, read, write};
use crate::syscall::abi::{SysRet, Syscall};
use crate::syscall::interceptor::{Interceptor, SysCtx, Verdict};
use crate::task::{Pid, TaskIdentity};
use crate::vfs::Name;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// What a profile slot says about one syscall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The call is in the allowlist; let it through.
    Allow,
    /// Refuse the call with this errno (Linux `SECCOMP_RET_ERRNO`).
    Deny(Errno),
    /// Refuse the call and flag the violation as a kill (Linux
    /// `SECCOMP_RET_KILL`). The simulated task is *not* torn down — the
    /// caller sees `EPERM` — but the violation record and audit note
    /// carry the kill disposition.
    Kill,
}

impl Action {
    /// Stable render used by `/proc/seccomp/profiles` and the violation
    /// log: `allow`, `deny(EPERM)`, `kill`.
    pub fn render(self) -> String {
        match self {
            Action::Allow => "allow".to_string(),
            Action::Deny(e) => format!("deny({})", e.name()),
            Action::Kill => "kill".to_string(),
        }
    }

    /// The errno an enforcing kernel injects for this action (`None` for
    /// [`Action::Allow`]).
    pub fn errno(self) -> Option<Errno> {
        match self {
            Action::Allow => None,
            Action::Deny(e) => Some(e),
            Action::Kill => Some(Errno::EPERM),
        }
    }
}

/// Global seccomp disposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeccompMode {
    /// No checking at all.
    Off,
    /// Check and log, never deny.
    Complain,
    /// Check and deny.
    Enforce,
}

impl SeccompMode {
    /// Stable lower-case name (`/proc/seccomp/status`).
    pub fn name(self) -> &'static str {
        match self {
            SeccompMode::Off => "off",
            SeccompMode::Complain => "complain",
            SeccompMode::Enforce => "enforce",
        }
    }

    /// Parses a mode name as written to `/proc/seccomp/status`.
    pub fn parse(s: &str) -> Option<SeccompMode> {
        match s.trim() {
            "off" => Some(SeccompMode::Off),
            "complain" => Some(SeccompMode::Complain),
            "enforce" => Some(SeccompMode::Enforce),
            _ => None,
        }
    }
}

/// An uncompiled profile: a binary, its allowlisted syscall names, and
/// the action for everything else. This is the exchange format between
/// the deriver, `/proc/seccomp/profiles`, and [`Seccomp::load_profiles`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Absolute path of the binary this profile confines.
    pub binary: String,
    /// Allowlisted syscall names (must all be ABI names from
    /// [`Syscall::NAMES`]).
    pub allow: Vec<String>,
    /// Action for every syscall *not* in `allow`.
    pub deny_action: Action,
}

impl ProfileSpec {
    /// An allow-list profile denying everything else with `EPERM`.
    pub fn allowing(binary: &str, allow: &[&str]) -> ProfileSpec {
        ProfileSpec {
            binary: binary.to_string(),
            allow: allow.iter().map(|s| s.to_string()).collect(),
            deny_action: Action::Deny(Errno::EPERM),
        }
    }
}

/// A compiled profile: the flat per-discriminant action table.
#[derive(Clone, Debug)]
pub struct CompiledProfile {
    /// Interned binary path (the selection key).
    pub binary: Name,
    /// One action per [`Syscall`] variant, indexed by [`Syscall::index`].
    pub actions: [Action; Syscall::COUNT],
}

impl CompiledProfile {
    /// Compiles a spec. Fails with the offending name if any allowlist
    /// entry is not an ABI syscall name.
    pub fn compile(spec: &ProfileSpec) -> Result<CompiledProfile, String> {
        let mut actions = [spec.deny_action; Syscall::COUNT];
        for name in &spec.allow {
            let idx = Syscall::name_index(name)
                .ok_or_else(|| format!("unknown syscall name '{}'", name))?;
            actions[idx] = Action::Allow;
        }
        Ok(CompiledProfile {
            binary: Name::intern(&spec.binary),
            actions,
        })
    }

    /// How many of the ABI's variants this profile lets through.
    pub fn allowed_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Allow))
            .count()
    }

    /// Back to the exchange form (allow names in ABI order).
    pub fn spec(&self) -> ProfileSpec {
        let mut allow = Vec::new();
        let mut deny_action = Action::Deny(Errno::EPERM);
        for (i, a) in self.actions.iter().enumerate() {
            match a {
                Action::Allow => allow.push(Syscall::NAMES[i].to_string()),
                other => deny_action = *other,
            }
        }
        ProfileSpec {
            binary: self.binary.as_str().to_string(),
            allow,
            deny_action,
        }
    }
}

/// One out-of-profile call, as recorded in `/proc/seccomp/violations`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Logical clock when the call was dispatched.
    pub clock: u64,
    /// The dispatching pid.
    pub pid: Pid,
    /// The binary the pid was executing.
    pub binary: Name,
    /// Name of the refused (or would-be-refused) syscall.
    pub syscall: &'static str,
    /// The profile's action for it.
    pub action: Action,
    /// `true` if the call was actually denied (enforce), `false` if it
    /// was let through under complain.
    pub enforced: bool,
}

/// Bound on the retained violation log; older entries are dropped and
/// counted, like the audit ring.
const MAX_VIOLATIONS: usize = 4096;

struct ProfileTable {
    profiles: Vec<Arc<CompiledProfile>>,
    by_binary: HashMap<Name, usize>,
}

#[derive(Clone, Copy)]
struct PidSel {
    binary: Name,
    generation: u64,
    profile: Option<u32>,
}

/// Process-global source for table generations. Every (re)load of *any*
/// [`Seccomp`] instance draws a fresh stamp, so a nonzero generation
/// identifies exactly one table state across the whole process — which is
/// what lets the thread-local [`SelMemo`] below validate itself with an
/// integer compare instead of holding a reference to its control block.
/// Generation 0 is reserved for "never loaded": every instance at 0 has
/// an empty table, so a gen-0 memo ("unconfined") is right for all of
/// them.
static GENERATION_SOURCE: AtomicU64 = AtomicU64::new(1);

// The memo packs the allowlist into one u64; the ABI must fit.
const _: () = assert!(Syscall::COUNT <= 64);

/// Thread-local memo of the last profile selection: the dispatch fast
/// path. Selection is a pure function of `(table generation, binary)` —
/// the per-pid cache only ever re-derives it — so a memo hit needs two
/// integer compares and no locks, and a profiled binary's action check is
/// a shift on the packed allow mask. Filled on the slow path; never
/// explicitly invalidated (a reload changes the generation, an `execve`
/// changes the binary, and both fail the compare).
#[derive(Clone, Copy)]
struct SelMemo {
    generation: u64,
    binary: Name,
    /// `false`: no profile for `binary` (unconfined); mask/deny unused.
    confined: bool,
    /// `false`: the profile mixes distinct deny actions, which the single
    /// `deny` slot cannot represent — always take the slow path.
    uniform: bool,
    /// Bit `i` set ⇔ `actions[i] == Allow` (valid when `confined`).
    allow_mask: u64,
    /// The profile's action for every cleared bit.
    deny: Action,
}

impl SelMemo {
    fn new(generation: u64, binary: Name, profile: Option<&CompiledProfile>) -> SelMemo {
        let (confined, uniform, allow_mask, deny) = match profile {
            None => (false, true, 0, Action::Deny(Errno::EPERM)),
            Some(cp) => {
                let mut mask = 0u64;
                let mut deny = None;
                let mut uniform = true;
                for (i, a) in cp.actions.iter().enumerate() {
                    match a {
                        Action::Allow => mask |= 1 << i,
                        other => match deny {
                            None => deny = Some(*other),
                            Some(d) if d == *other => {}
                            Some(_) => uniform = false,
                        },
                    }
                }
                (
                    true,
                    uniform,
                    mask,
                    deny.unwrap_or(Action::Deny(Errno::EPERM)),
                )
            }
        };
        SelMemo {
            generation,
            binary,
            confined,
            uniform,
            allow_mask,
            deny,
        }
    }
}

thread_local! {
    static SEL_MEMO: Cell<Option<SelMemo>> = const { Cell::new(None) };
}

struct SeccompState {
    mode: AtomicU8,
    /// Restamped from [`GENERATION_SOURCE`] on every (re)load; stale
    /// [`PidSel`] and [`SelMemo`] entries self-invalidate by comparison.
    generation: AtomicU64,
    table: RwLock<ProfileTable>,
    pid_sel: RwLock<HashMap<u32, PidSel>>,
    violations: Mutex<Vec<Violation>>,
    total_violations: AtomicU64,
    dropped_violations: AtomicU64,
}

/// The kernel's seccomp control block — a cheap cloneable handle onto
/// shared state (the kernel holds one as `kernel.seccomp`, the
/// [`SeccompInterceptor`] on the dispatch chain another).
#[derive(Clone)]
pub struct Seccomp {
    inner: Arc<SeccompState>,
}

impl Default for Seccomp {
    fn default() -> Seccomp {
        Seccomp::new()
    }
}

impl Seccomp {
    /// An empty control block: no profiles, mode `off`.
    pub fn new() -> Seccomp {
        Seccomp {
            inner: Arc::new(SeccompState {
                mode: AtomicU8::new(0),
                generation: AtomicU64::new(0),
                table: RwLock::new(ProfileTable {
                    profiles: Vec::new(),
                    by_binary: HashMap::new(),
                }),
                pid_sel: RwLock::new(HashMap::new()),
                violations: Mutex::new(Vec::new()),
                total_violations: AtomicU64::new(0),
                dropped_violations: AtomicU64::new(0),
            }),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SeccompMode {
        match self.inner.mode.load(Ordering::Relaxed) {
            1 => SeccompMode::Complain,
            2 => SeccompMode::Enforce,
            _ => SeccompMode::Off,
        }
    }

    /// Switches mode (takes effect on the next dispatched call).
    pub fn set_mode(&self, mode: SeccompMode) {
        let v = match mode {
            SeccompMode::Off => 0,
            SeccompMode::Complain => 1,
            SeccompMode::Enforce => 2,
        };
        self.inner.mode.store(v, Ordering::Relaxed);
    }

    /// Replaces the whole profile table. Compilation is all-or-nothing:
    /// on any bad spec the previous table survives untouched. Loading
    /// bumps the selection generation, so every pid re-resolves its
    /// profile on its next call.
    pub fn load_profiles(&self, specs: &[ProfileSpec]) -> Result<usize, String> {
        let mut profiles = Vec::with_capacity(specs.len());
        let mut by_binary = HashMap::with_capacity(specs.len());
        for spec in specs {
            let compiled = Arc::new(CompiledProfile::compile(spec)?);
            if by_binary.insert(compiled.binary, profiles.len()).is_some() {
                return Err(format!("duplicate profile for '{}'", spec.binary));
            }
            profiles.push(compiled);
        }
        let n = profiles.len();
        {
            let mut t = write(&self.inner.table);
            t.profiles = profiles;
            t.by_binary = by_binary;
        }
        self.bump_generation();
        Ok(n)
    }

    /// Removes every profile (pids become unconfined).
    pub fn clear_profiles(&self) {
        {
            let mut t = write(&self.inner.table);
            t.profiles.clear();
            t.by_binary.clear();
        }
        self.bump_generation();
    }

    /// Stamps this table state with a process-globally unique generation
    /// (see [`GENERATION_SOURCE`]), invalidating stale [`PidSel`] and
    /// [`SelMemo`] entries by compare failure.
    fn bump_generation(&self) {
        self.inner.generation.store(
            GENERATION_SOURCE.fetch_add(1, Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Number of loaded profiles.
    pub fn profile_count(&self) -> usize {
        read(&self.inner.table).profiles.len()
    }

    /// Snapshot of the loaded profiles as exchange specs, sorted by
    /// binary path.
    pub fn profiles(&self) -> Vec<ProfileSpec> {
        let mut specs: Vec<ProfileSpec> = read(&self.inner.table)
            .profiles
            .iter()
            .map(|p| p.spec())
            .collect();
        specs.sort_by(|a, b| a.binary.cmp(&b.binary));
        specs
    }

    /// Drops the cached profile selection for `pid` — called by the
    /// kernel on `execve` (the image changed) and on reap.
    pub fn forget_pid(&self, pid: Pid) {
        // Skip the write lock entirely when nothing is loaded (the
        // common case for kernels that never enable seccomp).
        if self.inner.generation.load(Ordering::Relaxed) == 0 {
            return;
        }
        write(&self.inner.pid_sel).remove(&pid.0);
    }

    /// The core per-call check: resolves the caller's profile (cached
    /// per pid, re-resolved when the binary or table generation changed)
    /// and maps the profile action plus the global mode onto a dispatch
    /// [`Verdict`].
    pub fn check(&self, task: &TaskIdentity, call: &Syscall, clock: u64) -> Verdict {
        let mode = self.mode();
        if mode == SeccompMode::Off {
            return Verdict::Continue;
        }
        let action = match self.action_for(task, call.index()) {
            Some(a) => a,
            None => return Verdict::Continue, // unprofiled binary: unconfined
        };
        if action == Action::Allow {
            return Verdict::Continue;
        }
        let enforced = mode == SeccompMode::Enforce;
        self.record_violation(Violation {
            clock,
            pid: task.pid,
            binary: task.binary,
            syscall: call.name(),
            action,
            enforced,
        });
        if enforced {
            Verdict::Deny(action.errno().unwrap_or(Errno::EPERM))
        } else {
            Verdict::Note {
                errno: action.errno().unwrap_or(Errno::EPERM),
                note: format!(
                    "seccomp complain: {} outside profile for {} (would {})",
                    call.name(),
                    task.binary,
                    action.render()
                ),
            }
        }
    }

    /// Profile action for (task, syscall-index): the dispatch fast path.
    /// A warm hit is the thread-local [`SelMemo`] — two integer compares
    /// and a shift on the packed allow mask, no locks. Misses fall back
    /// to the shared per-pid cache and the profile table, then refill the
    /// memo.
    fn action_for(&self, task: &TaskIdentity, idx: usize) -> Option<Action> {
        let generation = self.inner.generation.load(Ordering::Relaxed);
        if let Some(m) = SEL_MEMO.with(Cell::get) {
            if m.generation == generation && m.binary == task.binary && m.uniform {
                if !m.confined {
                    return None;
                }
                return Some(if m.allow_mask >> idx & 1 == 1 {
                    Action::Allow
                } else {
                    m.deny
                });
            }
        }
        self.action_for_slow(task, idx, generation)
    }

    /// Memo-miss path: first call on this thread for the task's binary,
    /// or its image / the table changed since. One read lock + hash probe
    /// on the shared per-pid cache when that is warm; a table lookup and
    /// cache fill otherwise.
    fn action_for_slow(&self, task: &TaskIdentity, idx: usize, generation: u64) -> Option<Action> {
        let cached = {
            let sel = read(&self.inner.pid_sel);
            sel.get(&task.pid.0)
                .filter(|s| s.generation == generation && s.binary == task.binary)
                .map(|s| s.profile)
        };
        let profile_idx = match cached {
            Some(p) => p,
            None => {
                // First call of this pid, or invalidated: resolve the
                // binary against the table and refill the shared cache.
                let p = {
                    let t = read(&self.inner.table);
                    t.by_binary.get(&task.binary).map(|&i| i as u32)
                };
                write(&self.inner.pid_sel).insert(
                    task.pid.0,
                    PidSel {
                        binary: task.binary,
                        generation,
                        profile: p,
                    },
                );
                p
            }
        };
        let profile = profile_idx.and_then(|p| {
            let t = read(&self.inner.table);
            t.profiles.get(p as usize).cloned()
        });
        SEL_MEMO.with(|c| {
            c.set(Some(SelMemo::new(
                generation,
                task.binary,
                profile.as_deref(),
            )))
        });
        profile.map(|cp| cp.actions[idx])
    }

    fn record_violation(&self, v: Violation) {
        self.inner.total_violations.fetch_add(1, Ordering::Relaxed);
        let mut log = lock(&self.inner.violations);
        if log.len() >= MAX_VIOLATIONS {
            self.inner
                .dropped_violations
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        log.push(v);
    }

    /// The retained violation log (oldest first).
    pub fn violations(&self) -> Vec<Violation> {
        lock(&self.inner.violations).clone()
    }

    /// Violations recorded since boot (including dropped ones).
    pub fn total_violations(&self) -> u64 {
        self.inner.total_violations.load(Ordering::Relaxed)
    }

    /// Empties the violation log and counters.
    pub fn clear_violations(&self) {
        lock(&self.inner.violations).clear();
        self.inner.total_violations.store(0, Ordering::Relaxed);
        self.inner.dropped_violations.store(0, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // /proc renders and parsers
    // ------------------------------------------------------------------

    /// `/proc/seccomp/status` content.
    pub fn render_status(&self) -> String {
        format!(
            "mode: {}\nprofiles: {}\ngeneration: {}\nviolations: {} (dropped {})\n",
            self.mode().name(),
            self.profile_count(),
            self.inner.generation.load(Ordering::Relaxed),
            self.total_violations(),
            self.inner.dropped_violations.load(Ordering::Relaxed),
        )
    }

    /// `/proc/seccomp/profiles` content — one `profile` line per binary,
    /// sorted, in the same grammar [`Seccomp::parse_profiles_text`]
    /// accepts, so a round-trip through the node is the identity.
    pub fn render_profiles(&self) -> String {
        let mut out = String::from("# seccomp profiles: one per line\n");
        out.push_str("# profile <binary> default=<deny(ERRNO)|kill> allow=<name,...>\n");
        for spec in self.profiles() {
            out.push_str(&render_profile_line(&spec));
            out.push('\n');
        }
        out
    }

    /// `/proc/seccomp/violations` content.
    pub fn render_violations(&self) -> String {
        let mut out = String::from("# clock pid binary syscall action disposition\n");
        for v in self.violations() {
            out.push_str(&format!(
                "{} {} {} {} {} {}\n",
                v.clock,
                v.pid.0,
                v.binary,
                v.syscall,
                v.action.render(),
                if v.enforced { "denied" } else { "complain" },
            ));
        }
        let dropped = self.inner.dropped_violations.load(Ordering::Relaxed);
        if dropped > 0 {
            out.push_str(&format!("# dropped {}\n", dropped));
        }
        out
    }

    /// Parses the `/proc/seccomp/profiles` write grammar into specs.
    /// Blank lines and `#` comments are ignored; any malformed line or
    /// unknown syscall name rejects the whole write.
    pub fn parse_profiles_text(text: &str) -> Result<Vec<ProfileSpec>, String> {
        let mut specs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            specs
                .push(parse_profile_line(line).map_err(|e| format!("line {}: {}", lineno + 1, e))?);
        }
        Ok(specs)
    }
}

/// Renders one `profile` line of the exchange grammar.
pub fn render_profile_line(spec: &ProfileSpec) -> String {
    let default = match spec.deny_action {
        Action::Kill => "kill".to_string(),
        Action::Deny(e) => format!("deny({})", e.name()),
        Action::Allow => "allow".to_string(), // degenerate, but renderable
    };
    format!(
        "profile {} default={} allow={}",
        spec.binary,
        default,
        spec.allow.join(",")
    )
}

fn parse_deny_action(s: &str) -> Result<Action, String> {
    if s == "kill" {
        return Ok(Action::Kill);
    }
    if let Some(rest) = s.strip_prefix("deny(").and_then(|r| r.strip_suffix(')')) {
        for e in [Errno::EPERM, Errno::EACCES, Errno::ENOSYS, Errno::EINVAL] {
            if rest == e.name() {
                return Ok(Action::Deny(e));
            }
        }
        return Err(format!("unsupported deny errno '{}'", rest));
    }
    Err(format!("bad default action '{}'", s))
}

fn parse_profile_line(line: &str) -> Result<ProfileSpec, String> {
    let rest = line
        .strip_prefix("profile ")
        .ok_or_else(|| "expected 'profile <binary> ...'".to_string())?;
    let mut parts = rest.split_whitespace();
    let binary = parts
        .next()
        .ok_or_else(|| "missing binary path".to_string())?;
    let mut deny_action = Action::Deny(Errno::EPERM);
    let mut allow = Vec::new();
    for field in parts {
        if let Some(v) = field.strip_prefix("default=") {
            deny_action = parse_deny_action(v)?;
        } else if let Some(v) = field.strip_prefix("allow=") {
            for name in v.split(',').filter(|n| !n.is_empty()) {
                if Syscall::name_index(name).is_none() {
                    return Err(format!("unknown syscall name '{}'", name));
                }
                allow.push(name.to_string());
            }
        } else {
            return Err(format!("unknown field '{}'", field));
        }
    }
    Ok(ProfileSpec {
        binary: binary.to_string(),
        allow,
        deny_action,
    })
}

/// The enforcement interceptor: delegates every `before` hook to
/// [`Seccomp::check`] against the [`TaskIdentity`] snapshot in the
/// dispatch context.
///
/// Ordering: register it *before* any [`FaultInjector`](crate::syscall::FaultInjector)
/// (`crate::syscall::FaultInjector`) so an injected fault cannot mask a
/// profile violation, and before the [`TraceRecorder`](crate::trace::TraceRecorder)
/// (`crate::trace::TraceRecorder`) `after` hooks observe the denied
/// result like any other errno.
pub struct SeccompInterceptor {
    state: Seccomp,
}

impl SeccompInterceptor {
    /// Builds an interceptor sharing `state` (usually
    /// `kernel.seccomp.clone()`).
    pub fn new(state: Seccomp) -> SeccompInterceptor {
        SeccompInterceptor { state }
    }
}

impl Interceptor for SeccompInterceptor {
    fn name(&self) -> &'static str {
        "seccomp"
    }

    fn before(&self, _pid: Pid, call: &Syscall, ctx: &mut SysCtx<'_>) -> Verdict {
        self.state.check(&ctx.task, call, ctx.clock)
    }
}

/// The derivation recorder: accumulates the set of `(binary, syscall)`
/// pairs actually dispatched, keyed by the [`TaskIdentity`] snapshot —
/// the raw material `tables seccomp-derive` turns into [`ProfileSpec`]s.
/// Cloning shares the underlying set (the [`FaultInjector`](crate::syscall::FaultInjector)`::stats`
/// pattern), so a clone can be registered while the original keeps read
/// access.
#[derive(Clone, Default)]
pub struct ProfileRecorder {
    seen: Arc<Mutex<BTreeMap<String, [bool; Syscall::COUNT]>>>,
}

impl ProfileRecorder {
    /// An empty recorder.
    pub fn new() -> ProfileRecorder {
        ProfileRecorder::default()
    }

    /// The recorded reach sets: binary → syscall indices seen, sorted by
    /// binary path (BTreeMap order) and index.
    pub fn reach_sets(&self) -> Vec<(String, Vec<usize>)> {
        lock(&self.seen)
            .iter()
            .map(|(bin, seen)| {
                let idxs = seen
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &s)| if s { Some(i) } else { None })
                    .collect();
                (bin.clone(), idxs)
            })
            .collect()
    }

    /// The recorded sets as allow-list [`ProfileSpec`]s (deny action
    /// `EPERM`), sorted by binary path.
    pub fn specs(&self) -> Vec<ProfileSpec> {
        self.reach_sets()
            .into_iter()
            .map(|(binary, idxs)| ProfileSpec {
                binary,
                allow: idxs
                    .iter()
                    .map(|&i| Syscall::NAMES[i].to_string())
                    .collect(),
                deny_action: Action::Deny(Errno::EPERM),
            })
            .collect()
    }
}

impl Interceptor for ProfileRecorder {
    fn name(&self) -> &'static str {
        "seccomp_profile_recorder"
    }

    fn before(&self, _pid: Pid, call: &Syscall, ctx: &mut SysCtx<'_>) -> Verdict {
        if ctx.task.alive {
            let mut seen = lock(&self.seen);
            seen.entry(ctx.task.binary.as_str().to_string())
                .or_insert([false; Syscall::COUNT])[call.index()] = true;
        }
        Verdict::Continue
    }

    fn after(&self, _pid: Pid, _call: &Syscall, _ret: &SysRet, _ctx: &mut SysCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(pid: u32, binary: &str) -> TaskIdentity {
        TaskIdentity {
            pid: Pid(pid),
            uid: crate::cred::Uid(1000),
            euid: crate::cred::Uid(1000),
            binary: Name::intern(binary),
            alive: true,
        }
    }

    #[test]
    fn compile_rejects_unknown_names() {
        let spec = ProfileSpec::allowing("/bin/x", &["open", "frobnicate"]);
        assert!(CompiledProfile::compile(&spec).is_err());
    }

    #[test]
    fn compiled_profile_roundtrips_through_spec() {
        let spec = ProfileSpec::allowing("/bin/x", &["open", "close", "exit"]);
        let compiled = CompiledProfile::compile(&spec).unwrap();
        let back = compiled.spec();
        assert_eq!(back.binary, "/bin/x");
        assert_eq!(back.allow, vec!["open", "close", "exit"]);
        assert_eq!(compiled.allowed_count(), 3);
    }

    #[test]
    fn off_mode_is_transparent() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["open"])])
            .unwrap();
        let v = s.check(&ident(5, "/bin/x"), &Syscall::Getuid, 0);
        assert_eq!(v, Verdict::Continue);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn enforce_denies_out_of_profile_and_allows_in_profile() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["getuid"])])
            .unwrap();
        s.set_mode(SeccompMode::Enforce);
        assert_eq!(
            s.check(&ident(5, "/bin/x"), &Syscall::Getuid, 0),
            Verdict::Continue
        );
        assert_eq!(
            s.check(&ident(5, "/bin/x"), &Syscall::Pipe, 7),
            Verdict::Deny(Errno::EPERM)
        );
        let vs = s.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].syscall, "pipe");
        assert_eq!(vs[0].clock, 7);
        assert!(vs[0].enforced);
        // Unprofiled binaries stay unconfined.
        assert_eq!(
            s.check(&ident(6, "/bin/other"), &Syscall::Pipe, 8),
            Verdict::Continue
        );
    }

    #[test]
    fn complain_notes_but_does_not_deny() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["getuid"])])
            .unwrap();
        s.set_mode(SeccompMode::Complain);
        match s.check(&ident(5, "/bin/x"), &Syscall::Pipe, 3) {
            Verdict::Note { errno, note } => {
                assert_eq!(errno, Errno::EPERM);
                assert!(note.contains("pipe"));
                assert!(note.contains("/bin/x"));
            }
            other => panic!("expected Note, got {:?}", other),
        }
        let vs = s.violations();
        assert_eq!(vs.len(), 1);
        assert!(!vs[0].enforced);
    }

    #[test]
    fn kill_action_maps_to_eperm_with_kill_disposition() {
        let s = Seccomp::new();
        let mut spec = ProfileSpec::allowing("/bin/x", &["getuid"]);
        spec.deny_action = Action::Kill;
        s.load_profiles(&[spec]).unwrap();
        s.set_mode(SeccompMode::Enforce);
        assert_eq!(
            s.check(&ident(5, "/bin/x"), &Syscall::Fork, 0),
            Verdict::Deny(Errno::EPERM)
        );
        assert_eq!(s.violations()[0].action, Action::Kill);
    }

    #[test]
    fn reload_invalidates_pid_cache() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["getuid"])])
            .unwrap();
        s.set_mode(SeccompMode::Enforce);
        let id = ident(5, "/bin/x");
        assert_eq!(s.check(&id, &Syscall::Pipe, 0), Verdict::Deny(Errno::EPERM));
        // Widen the profile; the cached selection must not stick.
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["getuid", "pipe"])])
            .unwrap();
        assert_eq!(s.check(&id, &Syscall::Pipe, 1), Verdict::Continue);
    }

    #[test]
    fn exec_changes_profile_via_binary_mismatch() {
        let s = Seccomp::new();
        s.load_profiles(&[
            ProfileSpec::allowing("/bin/a", &["getuid"]),
            ProfileSpec::allowing("/bin/b", &["pipe"]),
        ])
        .unwrap();
        s.set_mode(SeccompMode::Enforce);
        assert_eq!(
            s.check(&ident(5, "/bin/a"), &Syscall::Pipe, 0),
            Verdict::Deny(Errno::EPERM)
        );
        // Same pid, new image (post-execve): the other profile applies.
        assert_eq!(
            s.check(&ident(5, "/bin/b"), &Syscall::Pipe, 1),
            Verdict::Continue
        );
        assert_eq!(
            s.check(&ident(5, "/bin/b"), &Syscall::Getuid, 2),
            Verdict::Deny(Errno::EPERM)
        );
    }

    #[test]
    fn profiles_text_roundtrip() {
        let s = Seccomp::new();
        let mut killer = ProfileSpec::allowing("/sbin/killer", &["exit"]);
        killer.deny_action = Action::Kill;
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["open", "close"]), killer])
            .unwrap();
        let text = s.render_profiles();
        let parsed = Seccomp::parse_profiles_text(&text).unwrap();
        assert_eq!(parsed, s.profiles());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Seccomp::parse_profiles_text("profile /b allow=frobnicate").is_err());
        assert!(Seccomp::parse_profiles_text("nonsense line").is_err());
        assert!(Seccomp::parse_profiles_text("profile /b default=deny(EBADF) allow=open").is_err());
        // Comments and blanks are fine.
        assert_eq!(Seccomp::parse_profiles_text("# hi\n\n").unwrap(), vec![]);
    }

    #[test]
    fn duplicate_profiles_rejected_and_table_survives() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &["open"])])
            .unwrap();
        let dup = vec![
            ProfileSpec::allowing("/bin/y", &["open"]),
            ProfileSpec::allowing("/bin/y", &["close"]),
        ];
        assert!(s.load_profiles(&dup).is_err());
        assert_eq!(s.profile_count(), 1);
        assert_eq!(s.profiles()[0].binary, "/bin/x");
    }

    #[test]
    fn memo_does_not_leak_across_control_blocks() {
        // Two kernels on one thread, same binary and pid, different
        // tables: the thread-local memo must never answer for the wrong
        // one (generations are process-globally unique).
        let s1 = Seccomp::new();
        s1.load_profiles(&[ProfileSpec::allowing("/bin/x", &["getuid"])])
            .unwrap();
        s1.set_mode(SeccompMode::Enforce);
        let s2 = Seccomp::new();
        s2.load_profiles(&[ProfileSpec::allowing("/bin/x", &["pipe"])])
            .unwrap();
        s2.set_mode(SeccompMode::Enforce);
        let id = ident(5, "/bin/x");
        for clock in 0..3 {
            assert_eq!(s1.check(&id, &Syscall::Getuid, clock), Verdict::Continue);
            assert_eq!(
                s1.check(&id, &Syscall::Pipe, clock),
                Verdict::Deny(Errno::EPERM)
            );
            assert_eq!(s2.check(&id, &Syscall::Pipe, clock), Verdict::Continue);
            assert_eq!(
                s2.check(&id, &Syscall::Getuid, clock),
                Verdict::Deny(Errno::EPERM)
            );
        }
    }

    #[test]
    fn memo_packs_uniform_profiles_and_flags_mixed_ones() {
        let spec = ProfileSpec::allowing("/bin/x", &["open", "exit"]);
        let cp = CompiledProfile::compile(&spec).unwrap();
        let m = SelMemo::new(7, cp.binary, Some(&cp));
        assert!(m.confined && m.uniform);
        assert_eq!(m.deny, Action::Deny(Errno::EPERM));
        let open = Syscall::name_index("open").unwrap();
        let exit = Syscall::name_index("exit").unwrap();
        let pipe = Syscall::name_index("pipe").unwrap();
        assert_eq!(m.allow_mask >> open & 1, 1);
        assert_eq!(m.allow_mask >> exit & 1, 1);
        assert_eq!(m.allow_mask >> pipe & 1, 0);
        // A hand-built table mixing deny actions (unreachable through
        // load_profiles) must refuse the packed fast path.
        let mut mixed = cp.clone();
        mixed.actions[pipe] = Action::Kill;
        assert!(!SelMemo::new(8, mixed.binary, Some(&mixed)).uniform);
        // No profile at all: unconfined, but still memoizable.
        let un = SelMemo::new(9, cp.binary, None);
        assert!(!un.confined && un.uniform);
    }

    #[test]
    fn violation_log_is_bounded() {
        let s = Seccomp::new();
        s.load_profiles(&[ProfileSpec::allowing("/bin/x", &[])])
            .unwrap();
        s.set_mode(SeccompMode::Complain);
        let id = ident(5, "/bin/x");
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            s.check(&id, &Syscall::Getuid, i);
        }
        assert_eq!(s.violations().len(), MAX_VIOLATIONS);
        assert_eq!(s.total_violations(), MAX_VIOLATIONS as u64 + 10);
        assert!(s.render_violations().contains("# dropped 10"));
        s.clear_violations();
        assert!(s.violations().is_empty());
        assert_eq!(s.total_violations(), 0);
    }
}
