//! Simulated devices.
//!
//! The device set is driven by the paper's study (Table 4): block devices a
//! user may want to mount (CD-ROM, USB flash), dm-crypt encrypted devices
//! whose metadata ioctl discloses both topology and keys, PPP modems,
//! terminals, and the video card whose mode-setting moved into the kernel
//! (KMS).

use crate::cred::Uid;
use crate::error::{Errno, KResult};

/// A device identity: index into the kernel's device registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DevId(pub usize);

/// State of a simulated modem line (for pppd).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModemState {
    /// Whether some task currently holds the line.
    pub in_use_by: Option<u32>,
    /// Configured baud rate.
    pub baud: u32,
    /// Whether VJ header compression is enabled (a "safe" option).
    pub compression: bool,
    /// Whether hardware flow control is enabled (a "safe" option).
    pub flow_control: bool,
}

/// dm-crypt device metadata.
///
/// The paper (§4, Table 4) observes that a *single* ioctl discloses both
/// the public portion (which physical devices back the mapping) and the
/// encryption key — forcing `dmcrypt-get-device` to be setuid. Protego
/// abandons the ioctl for a `/sys` file that discloses only the topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DmCryptState {
    /// Name of the mapping, e.g. `cryptroot`.
    pub name: String,
    /// Underlying physical device path, the public portion.
    pub physical_device: String,
    /// The symmetric key material — must never reach unprivileged callers.
    pub key_material: Vec<u8>,
    /// Cipher specification string.
    pub cipher: String,
}

/// Video adapter state managed by Kernel Mode Setting (§4.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KmsState {
    /// Current mode as (width, height, refresh).
    pub mode: (u32, u32, u32),
    /// Which virtual console owns the display.
    pub active_vt: u32,
    /// Saved per-VT state, proving the kernel (not X) context switches.
    pub saved_states: Vec<(u32, (u32, u32, u32))>,
    /// Whether the kernel driver supports KMS (pre-KMS cards need root X).
    pub kms_capable: bool,
}

impl Default for KmsState {
    fn default() -> Self {
        KmsState {
            mode: (1024, 768, 60),
            active_vt: 1,
            saved_states: Vec::new(),
            kms_capable: true,
        }
    }
}

/// A block device that can back a mount.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockState {
    /// Filesystem type the media carries, e.g. `iso9660`.
    pub fstype: String,
    /// Whether media is present (a CD tray may be empty).
    pub media_present: bool,
    /// Whether the device tray is locked/ejected.
    pub ejected: bool,
}

/// The kind-specific state of a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// `/dev/null`.
    Null,
    /// A terminal (`/dev/tty*`, `/dev/pts/*`).
    Tty {
        /// Pseudo-terminal number.
        index: u32,
    },
    /// A mountable block device (CD-ROM, USB stick, disk partition).
    Block(BlockState),
    /// A dm-crypt mapping (`/dev/mapper/...`, `/dev/dm-*`).
    DmCrypt(DmCryptState),
    /// A PPP-capable modem line (`/dev/ttyS*`, `/dev/ppp`).
    Modem(ModemState),
    /// The video adapter (`/dev/dri/card0`, `/dev/fb0`).
    Video(KmsState),
}

/// A registered device.
#[derive(Clone, Debug)]
pub struct Device {
    /// Registry index.
    pub id: DevId,
    /// Canonical path under `/dev`.
    pub path: String,
    /// Kind-specific state.
    pub kind: DeviceKind,
}

/// The kernel's device registry.
#[derive(Default, Debug)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Registers a device and returns its id.
    pub fn register(&mut self, path: &str, kind: DeviceKind) -> DevId {
        let id = DevId(self.devices.len());
        self.devices.push(Device {
            id,
            path: path.to_string(),
            kind,
        });
        id
    }

    /// Looks up a device by id.
    pub fn get(&self, id: DevId) -> KResult<&Device> {
        self.devices.get(id.0).ok_or(Errno::ENODEV)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: DevId) -> KResult<&mut Device> {
        self.devices.get_mut(id.0).ok_or(Errno::ENODEV)
    }

    /// Finds a device by its `/dev` path.
    pub fn find_by_path(&self, path: &str) -> Option<&Device> {
        self.devices.iter().find(|d| d.path == path)
    }

    /// Finds a device id by its `/dev` path.
    pub fn id_by_path(&self, path: &str) -> Option<DevId> {
        self.devices.iter().find(|d| d.path == path).map(|d| d.id)
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// Result of a dm-crypt `DM_TABLE_STATUS`-style ioctl: everything, including
/// key material. Stock Linux requires `CAP_SYS_ADMIN` precisely because this
/// struct is all-or-nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DmFullStatus {
    /// Mapping name.
    pub name: String,
    /// Physical backing device.
    pub physical_device: String,
    /// Cipher spec.
    pub cipher: String,
    /// Key material (hex-encoded in the real ABI).
    pub key_material: Vec<u8>,
}

/// A PPP modem configuration request (the argument of the pppd ioctls).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModemOpt {
    /// Set the line's baud rate. Safe for the line's user.
    Baud(u32),
    /// Toggle VJ compression. Safe.
    Compression(bool),
    /// Toggle hardware flow control. Safe.
    FlowControl(bool),
    /// Re-initialize the UART at the hardware level. Unsafe: affects other
    /// users of the line; stock Linux gates it on CAP_SYS_ADMIN.
    HardwareReset,
}

impl ModemOpt {
    /// Whether the paper's policy study classifies this option as safe for
    /// the unprivileged owner of an unused line (§4.1.2).
    pub fn is_safe(self) -> bool {
        !matches!(self, ModemOpt::HardwareReset)
    }
}

/// Claims the modem line for `pid`, failing with `EBUSY` if another process
/// holds it.
pub fn claim_modem(state: &mut ModemState, pid: u32) -> KResult<()> {
    match state.in_use_by {
        Some(owner) if owner != pid => Err(Errno::EBUSY),
        _ => {
            state.in_use_by = Some(pid);
            Ok(())
        }
    }
}

/// Releases the modem line if held by `pid`.
pub fn release_modem(state: &mut ModemState, pid: u32) {
    if state.in_use_by == Some(pid) {
        state.in_use_by = None;
    }
}

/// Sets the uid owning a `/dev` node — used at session setup (e.g. the
/// console) rather than by the obsolete `pt_chown` helper, which the paper
/// notes has been unnecessary since Linux 2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevOwnership {
    /// Owning user for the node.
    pub uid: Uid,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = DeviceRegistry::new();
        let id = reg.register(
            "/dev/cdrom",
            DeviceKind::Block(BlockState {
                fstype: "iso9660".into(),
                media_present: true,
                ejected: false,
            }),
        );
        assert_eq!(reg.get(id).unwrap().path, "/dev/cdrom");
        assert!(reg.find_by_path("/dev/cdrom").is_some());
        assert!(reg.find_by_path("/dev/nope").is_none());
    }

    #[test]
    fn missing_device_is_enodev() {
        let reg = DeviceRegistry::new();
        assert_eq!(reg.get(DevId(3)).unwrap_err(), Errno::ENODEV);
    }

    #[test]
    fn modem_claim_is_exclusive() {
        let mut m = ModemState::default();
        claim_modem(&mut m, 10).unwrap();
        assert_eq!(claim_modem(&mut m, 11).unwrap_err(), Errno::EBUSY);
        claim_modem(&mut m, 10).unwrap(); // re-entrant for the owner
        release_modem(&mut m, 10);
        claim_modem(&mut m, 11).unwrap();
    }

    #[test]
    fn modem_opt_safety_classification() {
        assert!(ModemOpt::Baud(57600).is_safe());
        assert!(ModemOpt::Compression(true).is_safe());
        assert!(!ModemOpt::HardwareReset.is_safe());
    }
}
