//! The simulated outside world: remote hosts, hop paths, and reply
//! generation.
//!
//! This stands in for the physical network of the paper's testbed. Remote
//! hosts answer ICMP echoes, expire TTLs along configured hop paths (so
//! traceroute works), refuse or accept TCP connections, and echo stream
//! payloads (so remote-latency benchmarks have a responder).

use super::packet::{IcmpKind, Ipv4, Packet, L4};
use crate::cred::Uid;
use crate::sync::Locked;
use std::collections::{BTreeMap, BTreeSet};

/// A host on the simulated network.
#[derive(Clone, Debug, Default)]
pub struct RemoteHost {
    /// Intermediate router addresses between us and the host, in order.
    pub hops: Vec<Ipv4>,
    /// Whether the host answers ICMP echo requests.
    pub answers_ping: bool,
    /// Open TCP ports.
    pub tcp_open: BTreeSet<u16>,
    /// Whether the host sends ICMP port-unreachable for closed UDP ports
    /// (traceroute's terminal signal).
    pub udp_unreachable: bool,
    /// Whether ARP queries for this host are answered (same L2 segment).
    pub answers_arp: bool,
}

/// The simulated network beyond this machine.
///
/// `hosts` is interior-locked so tests and tools can register remote
/// hosts through a shared (`&self`) kernel handle after boot.
#[derive(Debug, Default)]
pub struct SimNet {
    /// Addresses assigned to local interfaces.
    pub local_ips: Vec<Ipv4>,
    hosts: Locked<BTreeMap<Ipv4, RemoteHost>>,
}

impl Clone for SimNet {
    fn clone(&self) -> SimNet {
        SimNet {
            local_ips: self.local_ips.clone(),
            hosts: Locked::new(self.hosts.read().clone()),
        }
    }
}

impl SimNet {
    /// An empty network with only the loopback address local.
    pub fn new() -> SimNet {
        SimNet {
            local_ips: vec![Ipv4::LOOPBACK],
            hosts: Locked::new(BTreeMap::new()),
        }
    }

    /// Registers (or replaces) a remote host.
    pub fn add_host(&self, addr: Ipv4, host: RemoteHost) {
        self.hosts.write().insert(addr, host);
    }

    /// Looks up a remote host.
    pub fn host(&self, addr: Ipv4) -> Option<RemoteHost> {
        self.hosts.read().get(&addr).cloned()
    }

    /// Returns whether `addr` belongs to this machine.
    pub fn is_local(&self, addr: Ipv4) -> bool {
        self.local_ips.contains(&addr)
    }

    /// Whether a remote TCP endpoint would accept a connection.
    pub fn tcp_accepts(&self, addr: Ipv4, port: u16) -> bool {
        self.hosts
            .read()
            .get(&addr)
            .map(|h| h.tcp_open.contains(&port))
            .unwrap_or(false)
    }

    /// Delivers an outgoing packet to the world and returns any replies
    /// addressed back to us. The replies' `sender_uid` is root: they come
    /// from the network, not a local task.
    pub fn deliver(&self, pkt: &Packet) -> Vec<Packet> {
        let hosts = self.hosts.read();
        let host = match hosts.get(&pkt.dst) {
            Some(h) => h,
            None => return Vec::new(),
        };
        let hop_count = host.hops.len();
        // TTL expiry along the path: hop i (0-based) decrements TTL at
        // distance i+1.
        if (pkt.ttl as usize) <= hop_count && !matches!(pkt.l4, L4::Arp { .. }) {
            let router = host.hops[pkt.ttl as usize - 1];
            return vec![Packet {
                src: router,
                dst: pkt.src,
                ttl: 64,
                l4: L4::Icmp(IcmpKind::TimeExceeded),
                payload: Vec::new(),
                from_raw_socket: false,
                sender_uid: Uid::ROOT,
            }];
        }
        match &pkt.l4 {
            L4::Icmp(IcmpKind::EchoRequest { id, seq }) if host.answers_ping => {
                vec![Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ttl: 64,
                    l4: L4::Icmp(IcmpKind::EchoReply { id: *id, seq: *seq }),
                    payload: pkt.payload.clone(),
                    from_raw_socket: false,
                    sender_uid: Uid::ROOT,
                }]
            }
            L4::Udp { src_port, dst_port } => {
                if host.udp_unreachable && !host.tcp_open.contains(dst_port) {
                    vec![Packet {
                        src: pkt.dst,
                        dst: pkt.src,
                        ttl: 64,
                        l4: L4::Icmp(IcmpKind::DestUnreachable),
                        payload: Vec::new(),
                        from_raw_socket: false,
                        sender_uid: Uid::ROOT,
                    }]
                } else if host.tcp_open.contains(dst_port) {
                    // A UDP service echoes (for remote UDP latency tests).
                    vec![Packet {
                        src: pkt.dst,
                        dst: pkt.src,
                        ttl: 64,
                        l4: L4::Udp {
                            src_port: *dst_port,
                            dst_port: *src_port,
                        },
                        payload: pkt.payload.clone(),
                        from_raw_socket: false,
                        sender_uid: Uid::ROOT,
                    }]
                } else {
                    Vec::new()
                }
            }
            L4::Arp { op: 1, target } if host.answers_arp && *target == pkt.dst => {
                vec![Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    ttl: 64,
                    l4: L4::Arp {
                        op: 2,
                        target: *target,
                    },
                    payload: Vec::new(),
                    from_raw_socket: false,
                    sender_uid: Uid::ROOT,
                }]
            }
            _ => Vec::new(),
        }
    }

    /// A convenient topology used by tests, examples, and benches:
    /// a gateway at 10.0.0.1, a pingable host 8.8.8.8 three hops away with
    /// TCP 80 open, and an ARP-answering neighbour 10.0.0.2.
    pub fn standard_topology() -> SimNet {
        let mut net = SimNet::new();
        net.local_ips.push(Ipv4::new(10, 0, 0, 100));
        net.add_host(
            Ipv4::new(10, 0, 0, 1),
            RemoteHost {
                hops: vec![],
                answers_ping: true,
                tcp_open: BTreeSet::new(),
                udp_unreachable: true,
                answers_arp: true,
            },
        );
        net.add_host(
            Ipv4::new(10, 0, 0, 2),
            RemoteHost {
                hops: vec![],
                answers_ping: true,
                tcp_open: BTreeSet::new(),
                udp_unreachable: false,
                answers_arp: true,
            },
        );
        let mut open = BTreeSet::new();
        open.insert(80);
        open.insert(7); // echo service for latency tests
        net.add_host(
            Ipv4::new(8, 8, 8, 8),
            RemoteHost {
                hops: vec![
                    Ipv4::new(10, 0, 0, 1),
                    Ipv4::new(100, 64, 0, 1),
                    Ipv4::new(100, 64, 1, 1),
                ],
                answers_ping: true,
                tcp_open: open,
                udp_unreachable: true,
                answers_arp: false,
            },
        );
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_gets_reply() {
        let net = SimNet::standard_topology();
        let req = Packet::echo_request(
            Ipv4::new(10, 0, 0, 100),
            Ipv4::new(8, 8, 8, 8),
            42,
            1,
            Uid(1000),
        );
        let replies = net.deliver(&req);
        assert_eq!(replies.len(), 1);
        assert_eq!(
            replies[0].l4,
            L4::Icmp(IcmpKind::EchoReply { id: 42, seq: 1 })
        );
        assert_eq!(replies[0].src, Ipv4::new(8, 8, 8, 8));
    }

    #[test]
    fn ttl_expiry_names_each_hop() {
        let net = SimNet::standard_topology();
        for ttl in 1..=3u8 {
            let probe = Packet::udp_probe(
                Ipv4::new(10, 0, 0, 100),
                Ipv4::new(8, 8, 8, 8),
                ttl,
                33434,
                Uid(1000),
            );
            let replies = net.deliver(&probe);
            assert_eq!(replies.len(), 1, "ttl {}", ttl);
            assert_eq!(replies[0].l4, L4::Icmp(IcmpKind::TimeExceeded));
        }
        // TTL past the path reaches the host: closed UDP port ->
        // port unreachable (traceroute's terminal).
        let probe = Packet::udp_probe(
            Ipv4::new(10, 0, 0, 100),
            Ipv4::new(8, 8, 8, 8),
            8,
            33434,
            Uid(1000),
        );
        let replies = net.deliver(&probe);
        assert_eq!(replies[0].l4, L4::Icmp(IcmpKind::DestUnreachable));
    }

    #[test]
    fn unknown_host_is_silent() {
        let net = SimNet::standard_topology();
        let req = Packet::echo_request(
            Ipv4::new(10, 0, 0, 100),
            Ipv4::new(203, 0, 113, 7),
            1,
            1,
            Uid(1000),
        );
        assert!(net.deliver(&req).is_empty());
    }

    #[test]
    fn arp_request_reply() {
        let net = SimNet::standard_topology();
        let req = Packet {
            src: Ipv4::new(10, 0, 0, 100),
            dst: Ipv4::new(10, 0, 0, 2),
            ttl: 1,
            l4: L4::Arp {
                op: 1,
                target: Ipv4::new(10, 0, 0, 2),
            },
            payload: Vec::new(),
            from_raw_socket: true,
            sender_uid: Uid(1000),
        };
        let replies = net.deliver(&req);
        assert_eq!(replies.len(), 1);
        assert!(matches!(replies[0].l4, L4::Arp { op: 2, .. }));
    }

    #[test]
    fn tcp_accept_check() {
        let net = SimNet::standard_topology();
        assert!(net.tcp_accepts(Ipv4::new(8, 8, 8, 8), 80));
        assert!(!net.tcp_accepts(Ipv4::new(8, 8, 8, 8), 25));
        assert!(!net.tcp_accepts(Ipv4::new(10, 0, 0, 1), 80));
    }

    #[test]
    fn locality() {
        let net = SimNet::standard_topology();
        assert!(net.is_local(Ipv4::LOOPBACK));
        assert!(net.is_local(Ipv4::new(10, 0, 0, 100)));
        assert!(!net.is_local(Ipv4::new(8, 8, 8, 8)));
    }
}
