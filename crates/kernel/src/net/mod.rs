//! Simulated networking: packets, sockets, routing, netfilter, and the
//! outside world.

mod netfilter;
mod packet;
mod route;
mod sim;
mod socket;

pub use netfilter::{Evaluation, Netfilter, PacketMeta, ProtoMatch, Rule, Verdict};
pub use packet::{IcmpKind, Ipv4, Packet, L4};
pub use route::{Route, RouteTable};
pub use sim::{RemoteHost, SimNet};
pub use socket::{Domain, NetStack, PortProto, SockId, SockType, Socket, StreamState};
