//! Sockets and the port table.

use super::packet::{Ipv4, Packet};
use crate::cred::Uid;
use crate::error::{Errno, KResult};
use std::collections::{BTreeMap, VecDeque};

/// A socket identity: index into the socket arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SockId(pub usize);

/// Address/protocol family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Domain {
    /// AF_INET.
    Inet,
    /// AF_UNIX.
    Unix,
    /// AF_PACKET — link-layer access; creation requires CAP_NET_RAW on
    /// stock Linux.
    Packet,
}

/// Socket type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockType {
    /// SOCK_STREAM.
    Stream,
    /// SOCK_DGRAM.
    Dgram,
    /// SOCK_RAW — caller builds headers; creation requires CAP_NET_RAW on
    /// stock Linux.
    Raw,
}

/// Port-table protocol key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum PortProto {
    /// TCP port space.
    Tcp,
    /// UDP port space.
    Udp,
}

/// Connection state of a stream socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StreamState {
    /// Fresh socket.
    Idle,
    /// `listen()` has been called.
    Listening,
    /// Connected to a peer.
    Connected,
    /// Peer has closed.
    Reset,
}

/// A simulated socket.
#[derive(Clone, Debug)]
pub struct Socket {
    /// Arena index.
    pub id: SockId,
    /// Address family.
    pub domain: Domain,
    /// Socket type.
    pub stype: SockType,
    /// IP protocol number for raw sockets (1 = ICMP), 0 otherwise.
    pub protocol: u8,
    /// Owning process.
    pub owner_pid: u32,
    /// Uid at creation time (the LSM's subject for per-packet checks).
    pub owner_uid: Uid,
    /// Path of the binary that created the socket (Protego's bind policy
    /// keys on (binary, uid) application instances).
    pub owner_binary: String,
    /// Local address, once bound.
    pub bound: Option<(Ipv4, u16)>,
    /// Remote address, once connected.
    pub connected: Option<(Ipv4, u16)>,
    /// Local peer socket for stream/unix pairs.
    pub peer: Option<SockId>,
    /// Stream connection state.
    pub state: StreamState,
    /// Pending connections for a listening socket.
    pub backlog: VecDeque<SockId>,
    /// Received packets (dgram/raw).
    pub rx_packets: VecDeque<Packet>,
    /// Received bytes (stream).
    pub rx_bytes: VecDeque<u8>,
    /// Close-on-exec flag of the owning fd.
    pub cloexec: bool,
}

/// The socket arena plus port bindings.
#[derive(Debug, Default)]
pub struct NetStack {
    sockets: Vec<Option<Socket>>,
    free_ids: Vec<SockId>,
    ports: BTreeMap<(PortProto, u16), SockId>,
    next_ephemeral: u16,
}

impl NetStack {
    /// Creates an empty stack.
    pub fn new() -> NetStack {
        NetStack {
            sockets: Vec::new(),
            free_ids: Vec::new(),
            ports: BTreeMap::new(),
            next_ephemeral: 32768,
        }
    }

    /// Allocates a socket.
    pub fn alloc(
        &mut self,
        domain: Domain,
        stype: SockType,
        protocol: u8,
        owner_pid: u32,
        owner_uid: Uid,
        owner_binary: String,
    ) -> SockId {
        // Closed slots are recycled: the simulated kernel's close is
        // global (one close destroys the socket), so an id never outlives
        // its last descriptor.
        let id = match self.free_ids.pop() {
            Some(id) => id,
            None => {
                let id = SockId(self.sockets.len());
                self.sockets.push(None);
                id
            }
        };
        self.sockets[id.0] = Some(Socket {
            id,
            domain,
            stype,
            protocol,
            owner_pid,
            owner_uid,
            owner_binary,
            bound: None,
            connected: None,
            peer: None,
            state: StreamState::Idle,
            backlog: VecDeque::new(),
            rx_packets: VecDeque::new(),
            rx_bytes: VecDeque::new(),
            cloexec: false,
        });
        id
    }

    /// Immutable socket access.
    pub fn get(&self, id: SockId) -> KResult<&Socket> {
        self.sockets
            .get(id.0)
            .and_then(|s| s.as_ref())
            .ok_or(Errno::EBADF)
    }

    /// Mutable socket access.
    pub fn get_mut(&mut self, id: SockId) -> KResult<&mut Socket> {
        self.sockets
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::EBADF)
    }

    /// Binds a socket to a local address, claiming the port in the
    /// per-protocol port space. Policy checks happen in the syscall layer.
    pub fn bind(&mut self, id: SockId, addr: Ipv4, port: u16) -> KResult<()> {
        let proto = match self.get(id)?.stype {
            SockType::Stream => PortProto::Tcp,
            SockType::Dgram => PortProto::Udp,
            SockType::Raw => {
                // Raw sockets don't occupy the port space.
                self.get_mut(id)?.bound = Some((addr, port));
                return Ok(());
            }
        };
        if port != 0 && self.ports.contains_key(&(proto, port)) {
            return Err(Errno::EADDRINUSE);
        }
        let port = if port == 0 {
            self.ephemeral_port(proto)
        } else {
            port
        };
        self.ports.insert((proto, port), id);
        self.get_mut(id)?.bound = Some((addr, port));
        Ok(())
    }

    /// Finds a free ephemeral port.
    pub fn ephemeral_port(&mut self, proto: PortProto) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p == u16::MAX { 32768 } else { p + 1 };
            if !self.ports.contains_key(&(proto, p)) {
                return p;
            }
        }
    }

    /// Returns the socket bound to (proto, port), if any.
    pub fn port_owner(&self, proto: PortProto, port: u16) -> Option<&Socket> {
        self.ports
            .get(&(proto, port))
            .and_then(|id| self.get(*id).ok())
    }

    /// Destroys a socket, releasing its port and resetting its peer.
    pub fn close(&mut self, id: SockId) -> KResult<()> {
        let (bound, stype, peer) = {
            let s = self.get(id)?;
            (s.bound, s.stype, s.peer)
        };
        let proto = match stype {
            SockType::Stream => Some(PortProto::Tcp),
            SockType::Dgram => Some(PortProto::Udp),
            SockType::Raw => None,
        };
        if let (Some((_, port)), Some(proto)) = (bound, proto) {
            if self.ports.get(&(proto, port)) == Some(&id) {
                self.ports.remove(&(proto, port));
            }
        }
        if let Some(peer) = peer {
            if let Ok(p) = self.get_mut(peer) {
                p.peer = None;
                p.state = StreamState::Reset;
            }
        }
        self.sockets[id.0] = None;
        self.free_ids.push(id);
        Ok(())
    }

    /// Wires two sockets as connected peers (loopback streams, unix pairs).
    pub fn make_pair(&mut self, a: SockId, b: SockId) -> KResult<()> {
        self.get_mut(a)?.peer = Some(b);
        self.get_mut(a)?.state = StreamState::Connected;
        self.get_mut(b)?.peer = Some(a);
        self.get_mut(b)?.state = StreamState::Connected;
        Ok(())
    }

    /// Number of live sockets.
    pub fn live_count(&self) -> usize {
        self.sockets.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_with_socket(stype: SockType) -> (NetStack, SockId) {
        let mut ns = NetStack::new();
        let id = ns.alloc(Domain::Inet, stype, 0, 1, Uid(1000), "/bin/test".into());
        (ns, id)
    }

    #[test]
    fn bind_claims_port() {
        let (mut ns, id) = stack_with_socket(SockType::Stream);
        ns.bind(id, Ipv4::ANY, 8080).unwrap();
        assert_eq!(ns.port_owner(PortProto::Tcp, 8080).unwrap().id, id);
        assert!(ns.port_owner(PortProto::Udp, 8080).is_none());
    }

    #[test]
    fn double_bind_is_eaddrinuse() {
        let (mut ns, a) = stack_with_socket(SockType::Stream);
        let b = ns.alloc(
            Domain::Inet,
            SockType::Stream,
            0,
            2,
            Uid(1001),
            "/bin/x".into(),
        );
        ns.bind(a, Ipv4::ANY, 80).unwrap();
        assert_eq!(ns.bind(b, Ipv4::ANY, 80).unwrap_err(), Errno::EADDRINUSE);
    }

    #[test]
    fn ephemeral_bind() {
        let (mut ns, id) = stack_with_socket(SockType::Dgram);
        ns.bind(id, Ipv4::ANY, 0).unwrap();
        let port = ns.get(id).unwrap().bound.unwrap().1;
        assert!(port >= 32768);
        assert_eq!(ns.port_owner(PortProto::Udp, port).unwrap().id, id);
    }

    #[test]
    fn raw_sockets_skip_port_table() {
        let (mut ns, id) = stack_with_socket(SockType::Raw);
        ns.bind(id, Ipv4::ANY, 0).unwrap();
        assert_eq!(ns.live_count(), 1);
    }

    #[test]
    fn close_releases_port_and_resets_peer() {
        let (mut ns, a) = stack_with_socket(SockType::Stream);
        let b = ns.alloc(
            Domain::Inet,
            SockType::Stream,
            0,
            2,
            Uid(1001),
            "/bin/x".into(),
        );
        ns.bind(a, Ipv4::ANY, 81).unwrap();
        ns.make_pair(a, b).unwrap();
        ns.close(a).unwrap();
        assert!(ns.port_owner(PortProto::Tcp, 81).is_none());
        assert_eq!(ns.get(b).unwrap().state, StreamState::Reset);
        assert_eq!(ns.get(a).unwrap_err(), Errno::EBADF);
    }
}
