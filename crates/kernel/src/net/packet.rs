//! Packet model for the simulated network stack.
//!
//! The simulation keeps packets symbolic: instead of serialized headers, a
//! [`Packet`] carries the fields the policy layer inspects — protocol,
//! addresses, ports, ICMP kind, TTL — which is exactly the information
//! netfilter matches on. Raw- and packet-socket senders construct these
//! fields themselves (the paper's §4.1.1 threat: a raw socket can claim any
//! TCP/UDP source port).

use crate::cred::Uid;
use core::fmt;

/// An IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// 127.0.0.1
    pub const LOOPBACK: Ipv4 = Ipv4(0x7f00_0001);
    /// 0.0.0.0
    pub const ANY: Ipv4 = Ipv4(0);

    /// Builds an address from dotted octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Parses dotted-quad notation.
    pub fn parse(s: &str) -> Option<Ipv4> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for o in octets.iter_mut() {
            *o = parts.next()?.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }

    /// Returns the network address under a prefix length.
    pub fn network(self, prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            self.0 & (u32::MAX << (32 - prefix as u32))
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            (self.0 >> 24) & 0xff,
            (self.0 >> 16) & 0xff,
            (self.0 >> 8) & 0xff,
            self.0 & 0xff
        )
    }
}

/// ICMP message kinds used by the studied utilities (ping, traceroute, mtr).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IcmpKind {
    /// Echo request (type 8).
    EchoRequest {
        /// Echo identifier (classically the sender's pid).
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Echo identifier being answered.
        id: u16,
        /// Sequence number being answered.
        seq: u16,
    },
    /// Time exceeded in transit (type 11) — traceroute's hop discovery.
    TimeExceeded,
    /// Destination/port unreachable (type 3) — traceroute's terminal reply.
    DestUnreachable,
    /// Router/timestamp/other kinds that a hostile raw sender might forge.
    Other(u8),
}

impl IcmpKind {
    /// The wire "type" field.
    pub fn type_code(self) -> u8 {
        match self {
            IcmpKind::EchoReply { .. } => 0,
            IcmpKind::DestUnreachable => 3,
            IcmpKind::EchoRequest { .. } => 8,
            IcmpKind::TimeExceeded => 11,
            IcmpKind::Other(t) => t,
        }
    }
}

/// Transport-layer content of a packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum L4 {
    /// TCP segment.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Whether this is a connection-initiating segment.
        syn: bool,
    },
    /// UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// ICMP message.
    Icmp(IcmpKind),
    /// ARP (carried on packet sockets; layer conflation is deliberate in
    /// the simulation — netfilter only needs the protocol tag).
    Arp {
        /// ARP opcode: 1 request, 2 reply.
        op: u8,
        /// Address being queried/announced.
        target: Ipv4,
    },
    /// Some other IP protocol, by number.
    OtherIp(u8),
}

impl L4 {
    /// Source port claimed by the packet, for spoof analysis.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            L4::Tcp { src_port, .. } | L4::Udp { src_port, .. } => Some(*src_port),
            _ => None,
        }
    }

    /// Destination port, if the protocol has one.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            L4::Tcp { dst_port, .. } | L4::Udp { dst_port, .. } => Some(*dst_port),
            _ => None,
        }
    }
}

/// A simulated packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Claimed source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Time-to-live (drives traceroute's TimeExceeded discovery).
    pub ttl: u8,
    /// Transport content.
    pub l4: L4,
    /// Application payload.
    pub payload: Vec<u8>,
    /// Whether the packet was constructed by a raw or packet socket (and
    /// therefore carries caller-claimed headers).
    pub from_raw_socket: bool,
    /// Uid of the sending task, recorded at the LSM boundary.
    pub sender_uid: Uid,
}

impl Packet {
    /// Builds an ICMP echo request, as ping sends.
    pub fn echo_request(src: Ipv4, dst: Ipv4, id: u16, seq: u16, sender_uid: Uid) -> Packet {
        Packet {
            src,
            dst,
            ttl: 64,
            l4: L4::Icmp(IcmpKind::EchoRequest { id, seq }),
            payload: Vec::new(),
            from_raw_socket: true,
            sender_uid,
        }
    }

    /// Builds a traceroute-style UDP probe with an explicit TTL.
    pub fn udp_probe(src: Ipv4, dst: Ipv4, ttl: u8, dst_port: u16, sender_uid: Uid) -> Packet {
        Packet {
            src,
            dst,
            ttl,
            l4: L4::Udp {
                src_port: 33434,
                dst_port,
            },
            payload: Vec::new(),
            from_raw_socket: true,
            sender_uid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_parse_display_roundtrip() {
        let a = Ipv4::parse("192.168.1.42").unwrap();
        assert_eq!(a, Ipv4::new(192, 168, 1, 42));
        assert_eq!(a.to_string(), "192.168.1.42");
        assert!(Ipv4::parse("192.168.1").is_none());
        assert!(Ipv4::parse("300.0.0.1").is_none());
        assert!(Ipv4::parse("1.2.3.4.5").is_none());
    }

    #[test]
    fn network_mask() {
        let a = Ipv4::new(10, 1, 2, 3);
        assert_eq!(a.network(8), Ipv4::new(10, 0, 0, 0).0);
        assert_eq!(a.network(24), Ipv4::new(10, 1, 2, 0).0);
        assert_eq!(a.network(32), a.0);
        assert_eq!(a.network(0), 0);
    }

    #[test]
    fn icmp_type_codes() {
        assert_eq!(IcmpKind::EchoRequest { id: 1, seq: 1 }.type_code(), 8);
        assert_eq!(IcmpKind::EchoReply { id: 1, seq: 1 }.type_code(), 0);
        assert_eq!(IcmpKind::TimeExceeded.type_code(), 11);
        assert_eq!(IcmpKind::DestUnreachable.type_code(), 3);
    }

    #[test]
    fn l4_port_extraction() {
        let t = L4::Tcp {
            src_port: 5555,
            dst_port: 80,
            syn: true,
        };
        assert_eq!(t.src_port(), Some(5555));
        assert_eq!(t.dst_port(), Some(80));
        assert_eq!(L4::Icmp(IcmpKind::TimeExceeded).src_port(), None);
    }
}
