//! A netfilter-like packet filter for the OUTPUT path.
//!
//! Protego's raw-socket design (§4.1.1): *anyone* may create a raw or
//! packet socket, but outgoing packets from such sockets traverse
//! additional netfilter rules that whitelist the safe packets historically
//! exported by setuid binaries (ICMP echo, traceroute probes, ARP) and
//! reject spoofing (claiming a TCP/UDP source port owned by another user).
//!
//! The rule language is deliberately a small, first-match-wins subset of
//! iptables; the `iptables` userland utility in the `userland` crate edits
//! these rules through the usual administrative path.

use super::packet::{Packet, L4};
use core::fmt;

/// Rule verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Let the packet pass.
    Accept,
    /// Silently drop the packet (sender sees EPERM, as Linux raw sockets
    /// do when a filter rejects).
    Drop,
}

/// Protocol selector for a rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtoMatch {
    /// Match ICMP packets.
    Icmp,
    /// Match TCP segments.
    Tcp,
    /// Match UDP datagrams.
    Udp,
    /// Match ARP frames.
    Arp,
    /// Match any other raw IP protocol.
    OtherIp,
}

/// Per-packet metadata the filter inspects. The stack computes the
/// `spoofed_src_port` bit by consulting the port table before evaluation.
#[derive(Clone, Debug)]
pub struct PacketMeta<'a> {
    /// The packet itself.
    pub packet: &'a Packet,
    /// True when the packet's claimed TCP/UDP source port is bound by a
    /// socket belonging to a *different* uid.
    pub spoofed_src_port: bool,
}

/// A single OUTPUT-chain rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Human-readable name (appears in audit logs and iptables listings).
    pub name: String,
    /// Restrict the rule to packets built by raw/packet sockets.
    pub raw_socket_only: bool,
    /// Optional protocol selector.
    pub proto: Option<ProtoMatch>,
    /// Optional set of acceptable ICMP type codes (with `proto: Icmp`).
    pub icmp_types: Option<Vec<u8>>,
    /// Optional inclusive destination-port range (TCP/UDP).
    pub dst_ports: Option<(u16, u16)>,
    /// If `Some(b)`, the rule only matches packets whose spoofed-source
    /// analysis equals `b`.
    pub spoofed: Option<bool>,
    /// Verdict when the rule matches.
    pub verdict: Verdict,
}

impl Rule {
    /// Creates an accept-everything rule scoped by name (building block for
    /// tests and default policies).
    pub fn accept_all(name: &str) -> Rule {
        Rule {
            name: name.to_string(),
            raw_socket_only: false,
            proto: None,
            icmp_types: None,
            dst_ports: None,
            spoofed: None,
            verdict: Verdict::Accept,
        }
    }

    fn proto_matches(&self, l4: &L4) -> bool {
        match self.proto {
            None => true,
            Some(ProtoMatch::Icmp) => matches!(l4, L4::Icmp(_)),
            Some(ProtoMatch::Tcp) => matches!(l4, L4::Tcp { .. }),
            Some(ProtoMatch::Udp) => matches!(l4, L4::Udp { .. }),
            Some(ProtoMatch::Arp) => matches!(l4, L4::Arp { .. }),
            Some(ProtoMatch::OtherIp) => matches!(l4, L4::OtherIp(_)),
        }
    }

    /// Returns whether this rule matches the packet.
    pub fn matches(&self, meta: &PacketMeta<'_>) -> bool {
        let p = meta.packet;
        if self.raw_socket_only && !p.from_raw_socket {
            return false;
        }
        if !self.proto_matches(&p.l4) {
            return false;
        }
        if let Some(types) = &self.icmp_types {
            match &p.l4 {
                L4::Icmp(kind) => {
                    if !types.contains(&kind.type_code()) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        if let Some((lo, hi)) = self.dst_ports {
            match p.l4.dst_port() {
                Some(d) if d >= lo && d <= hi => {}
                _ => return false,
            }
        }
        if let Some(want) = self.spoofed {
            if meta.spoofed_src_port != want {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}{}{} -> {:?}",
            self.name,
            if self.raw_socket_only { "raw " } else { "" },
            self.proto.map(|p| format!("{:?} ", p)).unwrap_or_default(),
            self.spoofed
                .map(|s| if s { "spoofed " } else { "genuine " })
                .unwrap_or(""),
            self.verdict
        )
    }
}

/// The OUTPUT chain.
#[derive(Clone, Debug, Default)]
pub struct Netfilter {
    rules: Vec<Rule>,
    /// Count of packets evaluated (for overhead accounting in benches).
    pub evaluated: u64,
    /// Count of packets dropped.
    pub dropped: u64,
}

/// Result of evaluating a packet against the chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evaluation {
    /// Final verdict.
    pub verdict: Verdict,
    /// Name of the matching rule, or `None` for the default policy.
    pub rule: Option<String>,
}

impl Netfilter {
    /// An empty chain (default-accept), matching the paper's baseline
    /// "iptables with no firewall rules".
    pub fn new() -> Netfilter {
        Netfilter::default()
    }

    /// Appends a rule to the chain.
    pub fn append(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Inserts a rule at the head of the chain.
    pub fn insert_front(&mut self, rule: Rule) {
        self.rules.insert(0, rule);
    }

    /// Removes all rules whose name equals `name`; returns how many.
    pub fn delete_by_name(&mut self, name: &str) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        before - self.rules.len()
    }

    /// Clears the chain.
    pub fn flush(&mut self) {
        self.rules.clear();
    }

    /// The installed rules, in evaluation order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluates a packet: first matching rule wins; default is accept.
    pub fn evaluate(&mut self, meta: &PacketMeta<'_>) -> Evaluation {
        self.evaluated += 1;
        for r in &self.rules {
            if r.matches(meta) {
                if r.verdict == Verdict::Drop {
                    self.dropped += 1;
                }
                return Evaluation {
                    verdict: r.verdict,
                    rule: Some(r.name.clone()),
                };
            }
        }
        Evaluation {
            verdict: Verdict::Accept,
            rule: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Uid;
    use crate::net::packet::{IcmpKind, Ipv4};

    fn echo_pkt() -> Packet {
        Packet::echo_request(Ipv4::LOOPBACK, Ipv4::new(8, 8, 8, 8), 1, 1, Uid(1000))
    }

    fn meta(p: &Packet) -> PacketMeta<'_> {
        PacketMeta {
            packet: p,
            spoofed_src_port: false,
        }
    }

    #[test]
    fn empty_chain_accepts() {
        let mut nf = Netfilter::new();
        let p = echo_pkt();
        let e = nf.evaluate(&meta(&p));
        assert_eq!(e.verdict, Verdict::Accept);
        assert_eq!(e.rule, None);
        assert_eq!(nf.evaluated, 1);
    }

    #[test]
    fn first_match_wins() {
        let mut nf = Netfilter::new();
        nf.append(Rule {
            name: "allow-icmp".into(),
            raw_socket_only: true,
            proto: Some(ProtoMatch::Icmp),
            icmp_types: Some(vec![0, 8]),
            dst_ports: None,
            spoofed: None,
            verdict: Verdict::Accept,
        });
        nf.append(Rule {
            name: "drop-raw".into(),
            raw_socket_only: true,
            proto: None,
            icmp_types: None,
            dst_ports: None,
            spoofed: None,
            verdict: Verdict::Drop,
        });
        let p = echo_pkt();
        assert_eq!(nf.evaluate(&meta(&p)).rule.as_deref(), Some("allow-icmp"));
        // A raw ICMP redirect (type 5) is not whitelisted -> falls to drop.
        let mut evil = echo_pkt();
        evil.l4 = L4::Icmp(IcmpKind::Other(5));
        let e = nf.evaluate(&meta(&evil));
        assert_eq!(e.verdict, Verdict::Drop);
        assert_eq!(e.rule.as_deref(), Some("drop-raw"));
        assert_eq!(nf.dropped, 1);
    }

    #[test]
    fn spoof_selector() {
        let mut nf = Netfilter::new();
        nf.append(Rule {
            name: "no-spoof".into(),
            raw_socket_only: true,
            proto: None,
            icmp_types: None,
            dst_ports: None,
            spoofed: Some(true),
            verdict: Verdict::Drop,
        });
        let mut p = echo_pkt();
        p.l4 = L4::Tcp {
            src_port: 80,
            dst_port: 9999,
            syn: false,
        };
        let spoofed = PacketMeta {
            packet: &p,
            spoofed_src_port: true,
        };
        assert_eq!(nf.evaluate(&spoofed).verdict, Verdict::Drop);
        let honest = PacketMeta {
            packet: &p,
            spoofed_src_port: false,
        };
        assert_eq!(nf.evaluate(&honest).verdict, Verdict::Accept);
    }

    #[test]
    fn dst_port_range() {
        let mut nf = Netfilter::new();
        nf.append(Rule {
            name: "traceroute-probes".into(),
            raw_socket_only: true,
            proto: Some(ProtoMatch::Udp),
            icmp_types: None,
            dst_ports: Some((33434, 33534)),
            spoofed: None,
            verdict: Verdict::Accept,
        });
        nf.append(Rule {
            name: "drop-raw-udp".into(),
            raw_socket_only: true,
            proto: Some(ProtoMatch::Udp),
            icmp_types: None,
            dst_ports: None,
            spoofed: None,
            verdict: Verdict::Drop,
        });
        let probe = Packet::udp_probe(Ipv4::LOOPBACK, Ipv4::new(8, 8, 8, 8), 3, 33440, Uid(1000));
        assert_eq!(nf.evaluate(&meta(&probe)).verdict, Verdict::Accept);
        let mut dns = probe.clone();
        dns.l4 = L4::Udp {
            src_port: 33434,
            dst_port: 53,
        };
        assert_eq!(nf.evaluate(&meta(&dns)).verdict, Verdict::Drop);
    }

    #[test]
    fn raw_only_rules_ignore_kernel_sockets() {
        let mut nf = Netfilter::new();
        nf.append(Rule {
            name: "drop-raw".into(),
            raw_socket_only: true,
            proto: None,
            icmp_types: None,
            dst_ports: None,
            spoofed: None,
            verdict: Verdict::Drop,
        });
        let mut p = echo_pkt();
        p.from_raw_socket = false;
        assert_eq!(nf.evaluate(&meta(&p)).verdict, Verdict::Accept);
    }

    #[test]
    fn delete_and_flush() {
        let mut nf = Netfilter::new();
        nf.append(Rule::accept_all("a"));
        nf.append(Rule::accept_all("a"));
        nf.append(Rule::accept_all("b"));
        assert_eq!(nf.delete_by_name("a"), 2);
        assert_eq!(nf.rules().len(), 1);
        nf.flush();
        assert!(nf.rules().is_empty());
    }
}
