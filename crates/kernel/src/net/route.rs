//! The routing table and the conflict predicate Protego enforces for
//! unprivileged route additions (§4.1.2).
//!
//! Stock Linux requires `CAP_NET_ADMIN` for any routing-table change. The
//! system policy the paper identifies is narrower: an unprivileged pppd may
//! add a route **only if the new address range was not previously
//! reachable** — i.e. it does not overlap any existing route.

use super::packet::Ipv4;
use crate::cred::Uid;
use crate::error::{Errno, KResult};

/// A routing-table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Destination network.
    pub dest: Ipv4,
    /// Prefix length (0 = default route).
    pub prefix: u8,
    /// Next hop, if not directly connected.
    pub gateway: Option<Ipv4>,
    /// Outgoing interface name.
    pub dev: String,
    /// Who created the route (root for boot-time routes).
    pub created_by: Uid,
}

impl Route {
    /// Returns whether two routes' destination ranges overlap: the shorter
    /// prefix's network contains the longer one's.
    pub fn overlaps(&self, other: &Route) -> bool {
        let p = self.prefix.min(other.prefix);
        self.dest.network(p) == other.dest.network(p)
    }

    /// Returns whether `addr` falls inside this route's destination range.
    pub fn matches(&self, addr: Ipv4) -> bool {
        addr.network(self.prefix) == self.dest.network(self.prefix)
    }
}

/// The kernel routing table.
#[derive(Clone, Debug, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

impl RouteTable {
    /// Creates an empty routing table.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Adds a route without policy checks (the caller — the ioctl syscall —
    /// has already consulted the LSM). Fails on an exact duplicate.
    pub fn add(&mut self, route: Route) -> KResult<()> {
        if route.prefix > 32 {
            return Err(Errno::EINVAL);
        }
        let dup = self.routes.iter().any(|r| {
            r.dest.network(r.prefix) == route.dest.network(route.prefix) && r.prefix == route.prefix
        });
        if dup {
            return Err(Errno::EEXIST);
        }
        self.routes.push(route);
        Ok(())
    }

    /// Removes the route exactly matching (dest, prefix); only the creator
    /// or root may remove (enforced by the caller).
    pub fn remove(&mut self, dest: Ipv4, prefix: u8) -> KResult<Route> {
        let idx = self
            .routes
            .iter()
            .position(|r| r.dest.network(prefix) == dest.network(prefix) && r.prefix == prefix)
            .ok_or(Errno::ENOENT)?;
        Ok(self.routes.remove(idx))
    }

    /// Returns the first existing route whose range overlaps `candidate`,
    /// the Protego conflict predicate.
    pub fn conflict_with(&self, candidate: &Route) -> Option<&Route> {
        self.routes.iter().find(|r| r.overlaps(candidate))
    }

    /// Longest-prefix-match lookup for an outgoing packet.
    pub fn lookup(&self, dst: Ipv4) -> Option<&Route> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| r.prefix)
    }

    /// All routes (for `/proc/net/route`-style listings).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(dest: &str, prefix: u8, dev: &str) -> Route {
        Route {
            dest: Ipv4::parse(dest).unwrap(),
            prefix,
            gateway: None,
            dev: dev.into(),
            created_by: Uid::ROOT,
        }
    }

    #[test]
    fn overlap_contains_and_contained() {
        let wide = r("10.0.0.0", 8, "eth0");
        let narrow = r("10.1.0.0", 16, "ppp0");
        assert!(wide.overlaps(&narrow));
        assert!(narrow.overlaps(&wide));
        let disjoint = r("192.168.0.0", 16, "ppp0");
        assert!(!wide.overlaps(&disjoint));
    }

    #[test]
    fn default_route_overlaps_everything() {
        let dflt = r("0.0.0.0", 0, "eth0");
        assert!(dflt.overlaps(&r("203.0.113.0", 24, "ppp0")));
    }

    #[test]
    fn conflict_detection() {
        let mut t = RouteTable::new();
        t.add(r("10.0.0.0", 8, "eth0")).unwrap();
        assert!(t.conflict_with(&r("10.99.0.0", 16, "ppp0")).is_some());
        assert!(t.conflict_with(&r("172.16.0.0", 12, "ppp0")).is_none());
    }

    #[test]
    fn duplicate_add_is_eexist() {
        let mut t = RouteTable::new();
        t.add(r("10.0.0.0", 8, "eth0")).unwrap();
        assert_eq!(t.add(r("10.0.0.0", 8, "eth1")).unwrap_err(), Errno::EEXIST);
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = RouteTable::new();
        t.add(r("0.0.0.0", 0, "eth0")).unwrap();
        t.add(r("10.0.0.0", 8, "eth1")).unwrap();
        t.add(r("10.1.0.0", 16, "ppp0")).unwrap();
        assert_eq!(
            t.lookup(Ipv4::parse("10.1.2.3").unwrap()).unwrap().dev,
            "ppp0"
        );
        assert_eq!(
            t.lookup(Ipv4::parse("10.9.9.9").unwrap()).unwrap().dev,
            "eth1"
        );
        assert_eq!(
            t.lookup(Ipv4::parse("8.8.8.8").unwrap()).unwrap().dev,
            "eth0"
        );
    }

    #[test]
    fn no_route_is_none() {
        let mut t = RouteTable::new();
        t.add(r("10.0.0.0", 8, "eth0")).unwrap();
        assert!(t.lookup(Ipv4::parse("8.8.8.8").unwrap()).is_none());
    }

    #[test]
    fn remove_route() {
        let mut t = RouteTable::new();
        t.add(r("10.0.0.0", 8, "eth0")).unwrap();
        let removed = t.remove(Ipv4::parse("10.0.0.0").unwrap(), 8).unwrap();
        assert_eq!(removed.dev, "eth0");
        assert!(t.is_empty());
        assert_eq!(
            t.remove(Ipv4::parse("10.0.0.0").unwrap(), 8).unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn invalid_prefix_rejected() {
        let mut t = RouteTable::new();
        assert_eq!(t.add(r("10.0.0.0", 33, "eth0")).unwrap_err(), Errno::EINVAL);
    }
}
