//! Process credentials: user/group identities and capability sets.
//!
//! Mirrors the Linux `struct cred`: real, effective, and saved UIDs/GIDs,
//! supplementary groups, and the effective capability set. The setuid *bit*
//! semantics (§3.1 of the paper) are implemented in `syscall::process` at
//! `execve` time; the setuid *system call* semantics live in `syscall::id`.

use crate::caps::{Cap, CapSet};
use core::fmt;

/// A numeric user identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Uid(pub u32);

/// A numeric group identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Gid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Returns whether this is uid 0.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl Gid {
    /// The root group.
    pub const ROOT: Gid = Gid(0);
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid:{}", self.0)
    }
}

/// The credential state of a task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credentials {
    /// Real user id: who invoked the process.
    pub ruid: Uid,
    /// Effective user id: used for permission checks.
    pub euid: Uid,
    /// Saved user id: allows temporarily dropping and regaining privilege.
    pub suid: Uid,
    /// Filesystem uid (tracks euid in this simulation).
    pub fsuid: Uid,
    /// Real group id.
    pub rgid: Gid,
    /// Effective group id.
    pub egid: Gid,
    /// Saved group id.
    pub sgid: Gid,
    /// Supplementary groups.
    pub groups: Vec<Gid>,
    /// Effective capability set.
    pub caps: CapSet,
}

impl Credentials {
    /// Credentials for a root process: uid/gid 0 and the full capability
    /// set, as stock Linux grants.
    pub fn root() -> Credentials {
        Credentials {
            ruid: Uid::ROOT,
            euid: Uid::ROOT,
            suid: Uid::ROOT,
            fsuid: Uid::ROOT,
            rgid: Gid::ROOT,
            egid: Gid::ROOT,
            sgid: Gid::ROOT,
            groups: vec![Gid::ROOT],
            caps: CapSet::full(),
        }
    }

    /// Credentials for an ordinary unprivileged user.
    pub fn user(uid: Uid, gid: Gid) -> Credentials {
        Credentials {
            ruid: uid,
            euid: uid,
            suid: uid,
            fsuid: uid,
            rgid: gid,
            egid: gid,
            sgid: gid,
            groups: vec![gid],
            caps: CapSet::EMPTY,
        }
    }

    /// Returns whether the effective user is root.
    pub fn is_root(&self) -> bool {
        self.euid.is_root()
    }

    /// Returns whether the task holds `cap` in its effective set.
    ///
    /// Note: the kernel-level `capable()` check additionally consults the
    /// active LSM; see [`crate::kernel::Kernel::capable`].
    pub fn has_cap(&self, cap: Cap) -> bool {
        self.caps.has(cap)
    }

    /// Returns whether `gid` is the effective group or a supplementary
    /// group of the task.
    pub fn in_group(&self, gid: Gid) -> bool {
        self.egid == gid || self.groups.contains(&gid)
    }

    /// Applies the setuid-bit transition of `execve`: the effective and
    /// saved uid become the binary owner. Real uid is unchanged — this is
    /// exactly the mechanism the paper's study targets.
    pub fn apply_setuid_bit(&mut self, owner: Uid) {
        self.euid = owner;
        self.suid = owner;
        self.fsuid = owner;
        if owner.is_root() {
            // Stock Linux: euid 0 implies the full capability set unless an
            // LSM or securebits intervene.
            self.caps = CapSet::full();
        }
    }

    /// Applies the setgid-bit transition of `execve`.
    pub fn apply_setgid_bit(&mut self, owner: Gid) {
        self.egid = owner;
        self.sgid = owner;
    }

    /// Drops all capabilities and pins every uid to `uid` — the classic
    /// "drop privilege permanently" sequence of well-written setuid
    /// binaries ("Setuid Demystified").
    pub fn drop_to(&mut self, uid: Uid, gid: Gid) {
        self.ruid = uid;
        self.euid = uid;
        self.suid = uid;
        self.fsuid = uid;
        self.rgid = gid;
        self.egid = gid;
        self.sgid = gid;
        self.caps = CapSet::EMPTY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_all_caps() {
        let c = Credentials::root();
        assert!(c.is_root());
        assert!(c.has_cap(Cap::SysAdmin));
        assert!(c.has_cap(Cap::NetRaw));
    }

    #[test]
    fn user_has_no_caps() {
        let c = Credentials::user(Uid(1000), Gid(1000));
        assert!(!c.is_root());
        assert!(c.caps.is_empty());
        assert_eq!(c.ruid, c.euid);
    }

    #[test]
    fn setuid_bit_raises_euid_not_ruid() {
        let mut c = Credentials::user(Uid(1000), Gid(1000));
        c.apply_setuid_bit(Uid::ROOT);
        assert_eq!(c.ruid, Uid(1000));
        assert_eq!(c.euid, Uid::ROOT);
        assert_eq!(c.suid, Uid::ROOT);
        assert!(c.has_cap(Cap::SysAdmin));
    }

    #[test]
    fn setuid_bit_to_nonroot_grants_no_caps() {
        let mut c = Credentials::user(Uid(1000), Gid(1000));
        c.apply_setuid_bit(Uid(38));
        assert_eq!(c.euid, Uid(38));
        assert!(c.caps.is_empty());
    }

    #[test]
    fn drop_to_clears_everything() {
        let mut c = Credentials::root();
        c.drop_to(Uid(1000), Gid(1000));
        assert_eq!(c.euid, Uid(1000));
        assert_eq!(c.suid, Uid(1000));
        assert!(c.caps.is_empty());
    }

    #[test]
    fn group_membership() {
        let mut c = Credentials::user(Uid(1000), Gid(1000));
        c.groups.push(Gid(24)); // cdrom
        assert!(c.in_group(Gid(1000)));
        assert!(c.in_group(Gid(24)));
        assert!(!c.in_group(Gid(25)));
    }
}
