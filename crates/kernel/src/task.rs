//! Tasks (processes) and file-descriptor tables.

use crate::cred::Credentials;
use crate::error::{Errno, KResult};
use crate::lsm::{AuthScope, PendingSetuid};
use crate::net::SockId;
use crate::vfs::{Ino, Name};
use std::collections::VecDeque;

/// A process identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pid(pub u32);

/// A cheap, `Copy` snapshot of the calling task's identity — everything an
/// interceptor may need to attribute a dispatched call without touching the
/// task table itself. [`crate::kernel::Kernel::dispatch`] takes exactly one
/// snapshot per dispatched call (a single task-shard read) and hands the
/// same value to every hook via
/// [`SysCtx`](crate::syscall::SysCtx); the binary path is carried as an
/// interned [`Name`] so copying the snapshot moves four words and no heap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskIdentity {
    /// The dispatching process.
    pub pid: Pid,
    /// Real uid at dispatch time.
    pub uid: crate::cred::Uid,
    /// Effective uid at dispatch time.
    pub euid: crate::cred::Uid,
    /// Interned absolute path of the binary image the task is executing
    /// (re-resolved across `execve`, so a profile keyed on it follows the
    /// image, not the pid). [`TaskIdentity::UNKNOWN_BINARY`] when the pid
    /// has no live task.
    pub binary: Name,
    /// Whether the pid mapped to a live task when the snapshot was taken.
    /// Dead or never-born pids still dispatch (the entry point returns
    /// `ESRCH`), so interceptors must not assume liveness.
    pub alive: bool,
}

impl TaskIdentity {
    /// Binary-path placeholder used when the pid has no live task.
    pub const UNKNOWN_BINARY: &'static str = "[unknown]";

    /// The snapshot for a pid with no live task: overflow uids, the
    /// [`TaskIdentity::UNKNOWN_BINARY`] placeholder, `alive == false`.
    pub fn unknown(pid: Pid) -> TaskIdentity {
        TaskIdentity {
            pid,
            uid: crate::cred::Uid(u32::MAX),
            euid: crate::cred::Uid(u32::MAX),
            binary: Name::intern(TaskIdentity::UNKNOWN_BINARY),
            alive: false,
        }
    }

    /// Snapshots a live task.
    pub fn of(task: &Task) -> TaskIdentity {
        TaskIdentity {
            pid: task.pid,
            uid: task.cred.ruid,
            euid: task.cred.euid,
            binary: Name::intern(&task.binary),
            alive: true,
        }
    }
}

/// A pipe identity (index into the kernel pipe arena).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PipeId(pub usize);

/// What an open file descriptor refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdObject {
    /// An open VFS file.
    File {
        /// Backing inode.
        ino: Ino,
        /// Current offset.
        offset: usize,
        /// Opened for reading.
        readable: bool,
        /// Opened for writing.
        writable: bool,
        /// Append mode.
        append: bool,
        /// Resolved path at open time, interned (for diagnostics and
        /// policy audit); keeps every field `Copy` so cloning the fd on
        /// each read/write touches no heap.
        path: Name,
    },
    /// A socket.
    Socket(SockId),
    /// The read end of a pipe.
    PipeRead(PipeId),
    /// The write end of a pipe.
    PipeWrite(PipeId),
}

/// A file-descriptor table slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fd {
    /// The referenced object.
    pub object: FdObject,
    /// Close-on-exec flag.
    pub cloexec: bool,
}

/// Maximum file descriptors per task (like RLIMIT_NOFILE).
pub const MAX_FDS: usize = 1024;

/// Namespace kinds a task can unshare (§4.6: sandboxing with restricted
/// namespaces, Linux 2.6.23+; unprivileged creation from 3.8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NsKind {
    /// CLONE_NEWUSER.
    User,
    /// CLONE_NEWNS.
    Mount,
    /// CLONE_NEWNET.
    Net,
    /// CLONE_NEWPID.
    Pid,
}

/// A simulated process.
#[derive(Clone, Debug)]
pub struct Task {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Credential state.
    pub cred: Credentials,
    /// Current working directory inode.
    pub cwd: Ino,
    /// Open file descriptors.
    pub fds: Vec<Option<Fd>>,
    /// Path of the binary image the task is executing.
    pub binary: String,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Logical time of the task's last successful authentication — the
    /// kernel-tracked recency Protego stores in `task_struct` (§4.3).
    pub last_auth: Option<u64>,
    /// Which principal that authentication proved (self, another user, a
    /// group) — so su-style target authentication is not confused with
    /// sudo-style invoker authentication.
    pub last_auth_scope: Option<AuthScope>,
    /// A restricted uid transition awaiting `exec` (§4.3).
    pub pending_setuid: Option<PendingSetuid>,
    /// Simulated terminal input (password attempts queued by the user).
    pub terminal_input: VecDeque<String>,
    /// Namespaces this task has unshared.
    pub namespaces: Vec<NsKind>,
    /// Exit status once the task has exited.
    pub exit_status: Option<i32>,
}

impl Task {
    /// Creates a task with empty tables.
    pub fn new(pid: Pid, ppid: Pid, cred: Credentials, cwd: Ino, binary: &str) -> Task {
        Task {
            pid,
            ppid,
            cred,
            cwd,
            fds: Vec::new(),
            binary: binary.to_string(),
            env: Vec::new(),
            last_auth: None,
            last_auth_scope: None,
            pending_setuid: None,
            terminal_input: VecDeque::new(),
            namespaces: Vec::new(),
            exit_status: None,
        }
    }

    /// Whether the task is inside a namespace of the given kind.
    pub fn in_namespace(&self, kind: NsKind) -> bool {
        self.namespaces.contains(&kind)
    }

    /// Installs `fd` in the lowest free slot, returning its number.
    pub fn fd_install(&mut self, fd: Fd) -> KResult<i32> {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(fd);
                return Ok(i as i32);
            }
        }
        if self.fds.len() >= MAX_FDS {
            return Err(Errno::EMFILE);
        }
        self.fds.push(Some(fd));
        Ok((self.fds.len() - 1) as i32)
    }

    /// Immutable fd lookup.
    pub fn fd(&self, n: i32) -> KResult<&Fd> {
        if n < 0 {
            return Err(Errno::EBADF);
        }
        self.fds
            .get(n as usize)
            .and_then(|f| f.as_ref())
            .ok_or(Errno::EBADF)
    }

    /// Mutable fd lookup.
    pub fn fd_mut(&mut self, n: i32) -> KResult<&mut Fd> {
        if n < 0 {
            return Err(Errno::EBADF);
        }
        self.fds
            .get_mut(n as usize)
            .and_then(|f| f.as_mut())
            .ok_or(Errno::EBADF)
    }

    /// Removes and returns an fd.
    pub fn fd_take(&mut self, n: i32) -> KResult<Fd> {
        if n < 0 {
            return Err(Errno::EBADF);
        }
        self.fds
            .get_mut(n as usize)
            .and_then(|f| f.take())
            .ok_or(Errno::EBADF)
    }

    /// Environment lookup.
    pub fn getenv(&self, key: &str) -> Option<&str> {
        self.env
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an environment variable.
    pub fn setenv(&mut self, key: &str, value: &str) {
        if let Some(kv) = self.env.iter_mut().find(|(k, _)| k == key) {
            kv.1 = value.to_string();
        } else {
            self.env.push((key.to_string(), value.to_string()));
        }
    }

    /// Queues a line of terminal input (e.g. a password the user types).
    pub fn type_input(&mut self, line: &str) {
        self.terminal_input.push_back(line.to_string());
    }

    /// Whether the task authenticated within `window` of logical time
    /// `now` — sudo's 5-minute recency check, kernelized.
    pub fn recently_authenticated(&self, now: u64, window: u64) -> bool {
        match self.last_auth {
            Some(t) => now.saturating_sub(t) <= window,
            None => false,
        }
    }

    /// Like [`Task::recently_authenticated`], additionally requiring that
    /// the proof was for `scope`.
    pub fn recently_authenticated_for(&self, scope: AuthScope, now: u64, window: u64) -> bool {
        self.recently_authenticated(now, window) && self.last_auth_scope == Some(scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Gid, Uid};

    fn task() -> Task {
        Task::new(
            Pid(2),
            Pid(1),
            Credentials::user(Uid(1000), Gid(1000)),
            Ino(0),
            "/bin/sh",
        )
    }

    #[test]
    fn fd_install_reuses_lowest_slot() {
        let mut t = task();
        let fd = Fd {
            object: FdObject::PipeRead(PipeId(0)),
            cloexec: false,
        };
        assert_eq!(t.fd_install(fd.clone()).unwrap(), 0);
        assert_eq!(t.fd_install(fd.clone()).unwrap(), 1);
        assert_eq!(t.fd_install(fd.clone()).unwrap(), 2);
        t.fd_take(1).unwrap();
        assert_eq!(t.fd_install(fd).unwrap(), 1);
    }

    #[test]
    fn bad_fd_is_ebadf() {
        let mut t = task();
        assert_eq!(t.fd(0).unwrap_err(), Errno::EBADF);
        assert_eq!(t.fd(-1).unwrap_err(), Errno::EBADF);
        assert_eq!(t.fd_take(7).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn env_roundtrip() {
        let mut t = task();
        t.setenv("PATH", "/bin");
        t.setenv("LD_PRELOAD", "/tmp/evil.so");
        t.setenv("PATH", "/usr/bin:/bin");
        assert_eq!(t.getenv("PATH"), Some("/usr/bin:/bin"));
        assert_eq!(t.getenv("LD_PRELOAD"), Some("/tmp/evil.so"));
        assert_eq!(t.getenv("HOME"), None);
    }

    #[test]
    fn auth_recency_window() {
        let mut t = task();
        assert!(!t.recently_authenticated(1000, 300));
        t.last_auth = Some(900);
        assert!(t.recently_authenticated(1000, 300));
        assert!(t.recently_authenticated(1200, 300));
        assert!(!t.recently_authenticated(1201, 300));
    }
}
