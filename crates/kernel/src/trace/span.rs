//! Kernel-wide timing spans with per-pathway latency histograms.
//!
//! A [`SpanGuard`] brackets one traversal of a named kernel pathway
//! (syscall dispatch, an interceptor pass, a `SecurityModule` hook, the
//! VFS resolve walk, …). Spans nest: the registry keeps a stack of
//! child-time accumulators so each pathway is charged its **self time**
//! (elapsed minus time spent in nested spans) as well as its inclusive
//! elapsed time. Summed self time over all pathways therefore equals the
//! root-span wall time by construction, which is what lets
//! `tables profile` attribute ≥95% of dispatched time to named pathways.
//!
//! Cost model:
//!
//! * **Hot path, enabled** — two `Instant` reads (`Instant::now` at enter,
//!   `elapsed` at drop) plus a thread-local histogram update. No
//!   allocation beyond the amortised span-stack `Vec` growth.
//! * **Hot path, runtime-disabled** (the default) — one thread-local
//!   `Cell<bool>` read; the guard carries `None` and drop is a no-op.
//! * **Compiled out** — building `sim-kernel` with
//!   `--no-default-features` (dropping the `span-timing` feature) turns
//!   [`span`] into an inert zero-sized guard and the registry into
//!   constants; the optimiser removes every call site.
//!
//! The registry is **thread-local**: each fleet worker thread gets an
//! isolated set of histograms for free, and snapshots are merged across
//! threads exactly like [`super::Metrics`]. The caveat is the converse:
//! two `Kernel` instances driven on the *same* thread share one registry,
//! so profilers reset it between runs (see `bench::profile`).

use super::hist::LatencyHistogram;

/// A named kernel pathway that feeds a latency histogram.
///
/// Variants are fieldless so the registry can be a fixed array indexed by
/// discriminant — no allocation or map lookup on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pathway {
    /// `Kernel::dispatch` end to end (the root span for syscalls).
    Dispatch,
    /// Interceptor chain `before` pass.
    InterceptBefore,
    /// Interceptor chain `after` pass.
    InterceptAfter,
    /// Filesystem-class syscall body.
    SysFs,
    /// Identity-class (setuid/setgid/…) syscall body.
    SysId,
    /// Ioctl-class syscall body.
    SysIoctl,
    /// Mount-class syscall body.
    SysMount,
    /// Network-class syscall body.
    SysNet,
    /// Process-class syscall body.
    SysProcess,
    /// VFS path resolution (`resolve_cached` end to end).
    VfsResolve,
    /// Dcache probe inside a resolve (hit or miss bookkeeping).
    DcacheProbe,
    /// Audit event emission: metrics record + sinks + ring push.
    AuditEmit,
    /// `SecurityModule::capable`.
    LsmCapable,
    /// `SecurityModule::sb_mount`.
    LsmSbMount,
    /// `SecurityModule::sb_umount`.
    LsmSbUmount,
    /// `SecurityModule::socket_create`.
    LsmSocketCreate,
    /// `SecurityModule::socket_bind`.
    LsmSocketBind,
    /// `SecurityModule::task_setuid`.
    LsmTaskSetuid,
    /// `SecurityModule::task_setgid`.
    LsmTaskSetgid,
    /// `SecurityModule::bprm_check`.
    LsmBprmCheck,
    /// The four ioctl route/modem/dmcrypt/kms hooks.
    LsmIoctl,
    /// `SecurityModule::file_open`.
    LsmFileOpen,
    /// LSM config-file reads and writes (`/proc/<lsm>/…`).
    LsmConfig,
    /// `SecurityModule::boot_netfilter_rules`.
    LsmNetfilter,
    /// Policy decision caches (keyfile / binary-profile lookup caches).
    PolicyCache,
    /// Name-interner insert path (`Name::intern` on a miss or first use).
    Intern,
}

/// Number of pathways (the registry array length).
pub const PATHWAY_COUNT: usize = 26;

impl Pathway {
    /// Every pathway, in discriminant order.
    pub const ALL: [Pathway; PATHWAY_COUNT] = [
        Pathway::Dispatch,
        Pathway::InterceptBefore,
        Pathway::InterceptAfter,
        Pathway::SysFs,
        Pathway::SysId,
        Pathway::SysIoctl,
        Pathway::SysMount,
        Pathway::SysNet,
        Pathway::SysProcess,
        Pathway::VfsResolve,
        Pathway::DcacheProbe,
        Pathway::AuditEmit,
        Pathway::LsmCapable,
        Pathway::LsmSbMount,
        Pathway::LsmSbUmount,
        Pathway::LsmSocketCreate,
        Pathway::LsmSocketBind,
        Pathway::LsmTaskSetuid,
        Pathway::LsmTaskSetgid,
        Pathway::LsmBprmCheck,
        Pathway::LsmIoctl,
        Pathway::LsmFileOpen,
        Pathway::LsmConfig,
        Pathway::LsmNetfilter,
        Pathway::PolicyCache,
        Pathway::Intern,
    ];

    /// Stable snake_case name used in `/proc/kernel/histograms` and the
    /// profile snapshot schema.
    pub fn name(self) -> &'static str {
        match self {
            Pathway::Dispatch => "dispatch",
            Pathway::InterceptBefore => "intercept_before",
            Pathway::InterceptAfter => "intercept_after",
            Pathway::SysFs => "sys_fs",
            Pathway::SysId => "sys_id",
            Pathway::SysIoctl => "sys_ioctl",
            Pathway::SysMount => "sys_mount",
            Pathway::SysNet => "sys_net",
            Pathway::SysProcess => "sys_process",
            Pathway::VfsResolve => "vfs_resolve",
            Pathway::DcacheProbe => "dcache_probe",
            Pathway::AuditEmit => "audit_emit",
            Pathway::LsmCapable => "lsm_capable",
            Pathway::LsmSbMount => "lsm_sb_mount",
            Pathway::LsmSbUmount => "lsm_sb_umount",
            Pathway::LsmSocketCreate => "lsm_socket_create",
            Pathway::LsmSocketBind => "lsm_socket_bind",
            Pathway::LsmTaskSetuid => "lsm_task_setuid",
            Pathway::LsmTaskSetgid => "lsm_task_setgid",
            Pathway::LsmBprmCheck => "lsm_bprm_check",
            Pathway::LsmIoctl => "lsm_ioctl",
            Pathway::LsmFileOpen => "lsm_file_open",
            Pathway::LsmConfig => "lsm_config",
            Pathway::LsmNetfilter => "lsm_netfilter",
            Pathway::PolicyCache => "policy_cache",
            Pathway::Intern => "intern",
        }
    }

    /// The syscall-body pathway for a dispatch class.
    pub fn for_class(class: crate::syscall::SyscallClass) -> Pathway {
        use crate::syscall::SyscallClass;
        match class {
            SyscallClass::Fs => Pathway::SysFs,
            SyscallClass::Id => Pathway::SysId,
            SyscallClass::Ioctl => Pathway::SysIoctl,
            SyscallClass::Mount => Pathway::SysMount,
            SyscallClass::Net => Pathway::SysNet,
            SyscallClass::Process => Pathway::SysProcess,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A mergeable, thread-crossing copy of one thread's timing state.
///
/// Mirrors the [`super::Metrics`] contract: plain data, `Send`, merged
/// element-wise so fleet aggregation is order-independent.
#[derive(Clone, Debug, Default)]
pub struct TimingSnapshot {
    /// Inclusive-latency histogram per pathway, indexed by discriminant.
    pub hists: Vec<LatencyHistogram>,
    /// Self time (inclusive minus nested-span time) per pathway, ns.
    pub self_ns: Vec<u64>,
    /// Wall time covered by root (outermost) spans, ns.
    pub root_ns: u64,
    /// Number of root spans observed.
    pub root_spans: u64,
}

impl TimingSnapshot {
    /// An empty snapshot with one slot per pathway.
    pub fn new() -> TimingSnapshot {
        TimingSnapshot {
            hists: vec![LatencyHistogram::new(); PATHWAY_COUNT],
            self_ns: vec![0; PATHWAY_COUNT],
            root_ns: 0,
            root_spans: 0,
        }
    }

    /// The histogram for `p` (empty histogram if the snapshot was built
    /// by an older/smaller layout).
    pub fn hist(&self, p: Pathway) -> &LatencyHistogram {
        static EMPTY: LatencyHistogram = LatencyHistogram::new();
        self.hists.get(p.index()).unwrap_or(&EMPTY)
    }

    /// Self time attributed to `p`, in nanoseconds.
    pub fn self_ns(&self, p: Pathway) -> u64 {
        self.self_ns.get(p.index()).copied().unwrap_or(0)
    }

    /// Total self time attributed across all pathways, ns.
    pub fn attributed_ns(&self) -> u64 {
        self.self_ns.iter().sum()
    }

    /// Percentage of root wall time attributed to named pathways.
    /// 100.0 when no root time was recorded (vacuously complete).
    pub fn attributed_pct(&self) -> f64 {
        if self.root_ns == 0 {
            100.0
        } else {
            self.attributed_ns() as f64 * 100.0 / self.root_ns as f64
        }
    }

    /// Whether any span was recorded.
    pub fn is_empty(&self) -> bool {
        self.root_spans == 0 && self.hists.iter().all(|h| h.is_empty())
    }

    /// Folds another snapshot into this one (element-wise; associative
    /// and commutative).
    pub fn merge(&mut self, other: &TimingSnapshot) {
        if self.hists.len() < other.hists.len() {
            self.hists
                .resize_with(other.hists.len(), LatencyHistogram::new);
            self.self_ns.resize(other.self_ns.len(), 0);
        }
        for (mine, theirs) in self.hists.iter_mut().zip(other.hists.iter()) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.self_ns.iter_mut().zip(other.self_ns.iter()) {
            *mine += theirs;
        }
        self.root_ns += other.root_ns;
        self.root_spans += other.root_spans;
    }

    /// Renders the `/proc/kernel/histograms` text: one line per touched
    /// pathway plus root-span summary lines. Stable, line-per-counter
    /// format like [`super::Metrics::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in Pathway::ALL {
            let h = self.hist(p);
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "hist_{} count={} total_ns={} self_ns={} min={} p50={} p95={} p99={} max={}\n",
                p.name(),
                h.count,
                h.total,
                self.self_ns(p),
                h.observed_min(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max,
            ));
        }
        out.push_str(&format!("root_spans {}\n", self.root_spans));
        out.push_str(&format!("root_total_ns {}\n", self.root_ns));
        out.push_str(&format!("attributed_self_ns {}\n", self.attributed_ns()));
        out
    }
}

#[cfg(feature = "span-timing")]
mod imp {
    use super::{Pathway, TimingSnapshot, PATHWAY_COUNT};
    use crate::trace::hist::LatencyHistogram;
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    struct Registry {
        hists: [LatencyHistogram; PATHWAY_COUNT],
        self_ns: [u64; PATHWAY_COUNT],
        /// One child-time accumulator per live (entered, not yet dropped)
        /// span on this thread.
        stack: Vec<u64>,
        root_ns: u64,
        root_spans: u64,
    }

    impl Registry {
        const fn new() -> Registry {
            const EMPTY: LatencyHistogram = LatencyHistogram::new();
            Registry {
                hists: [EMPTY; PATHWAY_COUNT],
                self_ns: [0; PATHWAY_COUNT],
                stack: Vec::new(),
                root_ns: 0,
                root_spans: 0,
            }
        }
    }

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static REGISTRY: RefCell<Registry> = const { RefCell::new(Registry::new()) };
    }

    /// Guard for one pathway traversal; records on drop.
    #[must_use = "a span measures the scope it is alive for"]
    pub struct SpanGuard {
        pathway: Pathway,
        start: Option<Instant>,
    }

    /// Opens a span over `pathway`. When timing is disabled (the default)
    /// this costs a single thread-local flag read and the returned guard
    /// is inert.
    #[inline]
    pub fn span(pathway: Pathway) -> SpanGuard {
        if !ENABLED.with(|e| e.get()) {
            return SpanGuard {
                pathway,
                start: None,
            };
        }
        REGISTRY.with(|r| r.borrow_mut().stack.push(0));
        SpanGuard {
            pathway,
            start: Some(Instant::now()),
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(start) = self.start else { return };
            let elapsed = start.elapsed().as_nanos() as u64;
            REGISTRY.with(|r| {
                let mut reg = r.borrow_mut();
                // A reset() between enter and exit empties the stack; the
                // span then records nothing rather than corrupting state.
                let Some(child_ns) = reg.stack.pop() else {
                    return;
                };
                let idx = self.pathway as usize;
                reg.hists[idx].observe(elapsed);
                reg.self_ns[idx] += elapsed.saturating_sub(child_ns);
                if let Some(parent) = reg.stack.last_mut() {
                    *parent += elapsed;
                } else {
                    reg.root_ns += elapsed;
                    reg.root_spans += 1;
                }
            });
        }
    }

    /// Turns span timing on or off for the current thread.
    pub fn set_enabled(on: bool) {
        ENABLED.with(|e| e.set(on));
    }

    /// Whether span timing is currently enabled on this thread.
    pub fn enabled() -> bool {
        ENABLED.with(|e| e.get())
    }

    /// Clears the current thread's histograms and span stack.
    pub fn reset() {
        REGISTRY.with(|r| *r.borrow_mut() = Registry::new());
    }

    /// Copies the current thread's timing state into a mergeable
    /// snapshot.
    pub fn snapshot() -> TimingSnapshot {
        REGISTRY.with(|r| {
            let reg = r.borrow();
            TimingSnapshot {
                hists: reg.hists.to_vec(),
                self_ns: reg.self_ns.to_vec(),
                root_ns: reg.root_ns,
                root_spans: reg.root_spans,
            }
        })
    }
}

#[cfg(not(feature = "span-timing"))]
mod imp {
    use super::{Pathway, TimingSnapshot};

    /// Inert guard: with `span-timing` compiled out, spans cost nothing.
    #[must_use = "a span measures the scope it is alive for"]
    pub struct SpanGuard {
        _priv: (),
    }

    /// No-op: `span-timing` is compiled out.
    #[inline]
    pub fn span(_pathway: Pathway) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    /// No-op: `span-timing` is compiled out.
    pub fn set_enabled(_on: bool) {}

    /// Always false: `span-timing` is compiled out.
    pub fn enabled() -> bool {
        false
    }

    /// No-op: `span-timing` is compiled out.
    pub fn reset() {}

    /// Always empty: `span-timing` is compiled out.
    pub fn snapshot() -> TimingSnapshot {
        TimingSnapshot::new()
    }
}

pub use imp::{enabled, reset, set_enabled, snapshot, span, SpanGuard};

/// Renders the current thread's timing state as `/proc/kernel/histograms`
/// text.
pub fn render() -> String {
    snapshot().render()
}

#[cfg(all(test, feature = "span-timing"))]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fresh() {
        reset();
        set_enabled(true);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        reset();
        set_enabled(false);
        {
            let _g = span(Pathway::Dispatch);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn span_nesting_child_time_within_parent() {
        fresh();
        {
            let _parent = span(Pathway::Dispatch);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _child = span(Pathway::SysId);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let s = snapshot();
        let parent = s.hist(Pathway::Dispatch);
        let child = s.hist(Pathway::SysId);
        assert_eq!(parent.count, 1);
        assert_eq!(child.count, 1);
        // Child inclusive time is contained in the parent's.
        assert!(child.total <= parent.total);
        // Parent self time excludes the child's inclusive time.
        assert_eq!(
            s.self_ns(Pathway::Dispatch),
            parent.total - child.total,
            "parent self = parent elapsed - child elapsed"
        );
        // All self time sums back to root wall time.
        assert_eq!(s.attributed_ns(), s.root_ns);
        assert_eq!(s.root_spans, 1);
        assert!((s.attributed_pct() - 100.0).abs() < 1e-9);
        reset();
    }

    #[test]
    fn sibling_spans_attribute_fully() {
        fresh();
        {
            let _root = span(Pathway::Dispatch);
            for _ in 0..3 {
                let _a = span(Pathway::VfsResolve);
                let _b = span(Pathway::DcacheProbe);
            }
        }
        set_enabled(false);
        let s = snapshot();
        assert_eq!(s.hist(Pathway::VfsResolve).count, 3);
        assert_eq!(s.hist(Pathway::DcacheProbe).count, 3);
        assert_eq!(s.attributed_ns(), s.root_ns);
        reset();
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        fresh();
        {
            let _g = span(Pathway::LsmTaskSetgid);
        }
        let a = snapshot();
        reset();
        set_enabled(true);
        {
            let _g = span(Pathway::LsmTaskSetuid);
        }
        let b = snapshot();
        set_enabled(false);
        reset();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.root_spans, 2);
        assert_eq!(ab.root_spans, ba.root_spans);
        assert_eq!(ab.root_ns, ba.root_ns);
        assert_eq!(ab.attributed_ns(), ba.attributed_ns());
        assert_eq!(ab.hist(Pathway::LsmTaskSetgid).count, 1);
        assert_eq!(ab.hist(Pathway::LsmTaskSetuid).count, 1);
    }

    #[test]
    fn render_lists_touched_pathways_only() {
        fresh();
        {
            let _g = span(Pathway::AuditEmit);
        }
        set_enabled(false);
        let text = snapshot().render();
        assert!(text.contains("hist_audit_emit count=1"));
        assert!(!text.contains("hist_sys_net"));
        assert!(text.contains("root_spans 1"));
        reset();
    }
}
