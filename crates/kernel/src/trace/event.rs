//! The typed audit event and its provenance record.

use crate::error::Errno;
use core::fmt;

/// The LSM hook (or kernel-internal site) a decision came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Hook {
    /// `capable()` — coarse capability check.
    Capable,
    /// `sb_mount` — `mount(2)`.
    SbMount,
    /// `sb_umount` — `umount(2)`.
    SbUmount,
    /// `socket_create` — `socket(2)` (raw/packet sockets).
    SocketCreate,
    /// `socket_bind` — `bind(2)` to a privileged port.
    SocketBind,
    /// `task_setuid` — the `setuid(2)` family.
    TaskSetuid,
    /// `task_setgid` — the `setgid(2)` family.
    TaskSetgid,
    /// `bprm_check` — `execve(2)` credential transitions.
    BprmCheck,
    /// `ioctl_route_add` — route-table-changing ioctls.
    IoctlRoute,
    /// `ioctl_modem` — modem-line ioctls (pppd).
    IoctlModem,
    /// `ioctl_dmcrypt` — dm-crypt status ioctls.
    IoctlDmcrypt,
    /// `ioctl_kms` — KMS mode-setting ioctls.
    IoctlKms,
    /// `file_open` — per-open policy (key files, shadow fragments).
    FileOpen,
    /// Netfilter OUTPUT-chain verdicts on the packet path.
    Netfilter,
    /// `/proc/<lsm>/*` configuration reads/writes.
    LsmConfig,
    /// Kernel-launched trusted authentication (§4.3).
    Auth,
    /// Module registration and other lifecycle events.
    Lifecycle,
    /// A dispatch-chain interceptor (fault injection, replay checking).
    Interceptor,
}

impl Hook {
    /// Number of hooks (the fixed metrics-counter table size).
    pub const COUNT: usize = 18;

    /// Every hook, in discriminant order.
    pub const ALL: [Hook; Hook::COUNT] = [
        Hook::Capable,
        Hook::SbMount,
        Hook::SbUmount,
        Hook::SocketCreate,
        Hook::SocketBind,
        Hook::TaskSetuid,
        Hook::TaskSetgid,
        Hook::BprmCheck,
        Hook::IoctlRoute,
        Hook::IoctlModem,
        Hook::IoctlDmcrypt,
        Hook::IoctlKms,
        Hook::FileOpen,
        Hook::Netfilter,
        Hook::LsmConfig,
        Hook::Auth,
        Hook::Lifecycle,
        Hook::Interceptor,
    ];

    /// Fixed counter-table index (the discriminant).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-snake name (metrics keys, `/proc` rendering).
    pub fn name(self) -> &'static str {
        match self {
            Hook::Capable => "capable",
            Hook::SbMount => "sb_mount",
            Hook::SbUmount => "sb_umount",
            Hook::SocketCreate => "socket_create",
            Hook::SocketBind => "socket_bind",
            Hook::TaskSetuid => "task_setuid",
            Hook::TaskSetgid => "task_setgid",
            Hook::BprmCheck => "bprm_check",
            Hook::IoctlRoute => "ioctl_route",
            Hook::IoctlModem => "ioctl_modem",
            Hook::IoctlDmcrypt => "ioctl_dmcrypt",
            Hook::IoctlKms => "ioctl_kms",
            Hook::FileOpen => "file_open",
            Hook::Netfilter => "netfilter",
            Hook::LsmConfig => "lsm_config",
            Hook::Auth => "auth",
            Hook::Lifecycle => "lifecycle",
            Hook::Interceptor => "interceptor",
        }
    }
}

/// What a decision amounted to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionKind {
    /// The module granted access the stock kernel would have refused.
    Allow,
    /// Access was refused (module or stock policy); security-relevant.
    Deny,
    /// The stock capability/DAC policy decided.
    UseDefault,
    /// The decision was deferred (e.g. a pending setuid transition).
    Defer,
    /// Informational (successful exec, config update, registration…).
    Info,
}

impl DecisionKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Allow => "allow",
            DecisionKind::Deny => "deny",
            DecisionKind::UseDefault => "use_default",
            DecisionKind::Defer => "defer",
            DecisionKind::Info => "info",
        }
    }
}

/// The object a decision was about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditObject {
    /// No specific object.
    None,
    /// A filesystem path (or `source -> target` pair for mounts).
    Path(String),
    /// A network port.
    Port {
        /// Port number.
        port: u16,
        /// TCP (vs UDP).
        tcp: bool,
    },
    /// A device node path.
    Device(String),
    /// A target uid (setuid family).
    UidTarget(u32),
    /// A target gid (setgid family).
    GidTarget(u32),
    /// A named capability.
    Capability(&'static str),
    /// A route description.
    Route(String),
    /// A packet description (netfilter path).
    Packet(String),
    /// An executed binary.
    Binary(String),
    /// An LSM configuration node.
    Config(String),
}

impl fmt::Display for AuditObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditObject::None => write!(f, "-"),
            AuditObject::Path(p) => write!(f, "path:{}", p),
            AuditObject::Port { port, tcp } => {
                write!(f, "port:{}/{}", port, if *tcp { "tcp" } else { "udp" })
            }
            AuditObject::Device(d) => write!(f, "dev:{}", d),
            AuditObject::UidTarget(u) => write!(f, "uid:{}", u),
            AuditObject::GidTarget(g) => write!(f, "gid:{}", g),
            AuditObject::Capability(c) => write!(f, "cap:{}", c),
            AuditObject::Route(r) => write!(f, "route:{}", r),
            AuditObject::Packet(p) => write!(f, "pkt:{}", p),
            AuditObject::Binary(b) => write!(f, "bin:{}", b),
            AuditObject::Config(n) => write!(f, "config:{}", n),
        }
    }
}

/// Who decided, under which rule, and what the outcome was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Deciding module: the LSM's name, or `"kernel"` for stock policy
    /// and kernel-internal events.
    pub module: &'static str,
    /// The hook the decision came from.
    pub hook: Hook,
    /// The matched policy rule, when the module tracks one.
    pub rule: Option<String>,
    /// The decision kind.
    pub decision: DecisionKind,
    /// The errno returned to the caller, for denials.
    pub errno: Option<Errno>,
}

impl Provenance {
    /// Provenance for a decision made by a security module.
    pub fn lsm(
        module: &'static str,
        hook: Hook,
        rule: Option<String>,
        decision: DecisionKind,
        errno: Option<Errno>,
    ) -> Provenance {
        Provenance {
            module,
            hook,
            rule,
            decision,
            errno,
        }
    }

    /// Provenance for stock-kernel policy (no module, no rule).
    pub fn kernel(hook: Hook, decision: DecisionKind, errno: Option<Errno>) -> Provenance {
        Provenance {
            module: "kernel",
            hook,
            rule: None,
            decision,
            errno,
        }
    }
}

/// One structured audit record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotonic sequence number (assigned at emit time; counts every
    /// emitted event, including ones the ring did not store).
    pub seq: u64,
    /// Logical-clock timestamp.
    pub clock: u64,
    /// Subject pid (0 for kernel-context events).
    pub pid: u32,
    /// Subject real uid at emit time.
    pub ruid: u32,
    /// Subject effective uid at emit time.
    pub euid: u32,
    /// The syscall (or kernel pathway) the event came from.
    pub syscall: &'static str,
    /// The object the decision was about.
    pub object: AuditObject,
    /// Who decided and how.
    pub provenance: Provenance,
    /// The human-readable line the legacy string log carried.
    pub message: String,
}

impl AuditEvent {
    /// Whether this event records a denial.
    pub fn is_denial(&self) -> bool {
        self.provenance.decision == DecisionKind::Deny
    }

    /// The full structured rendering (one `/proc/<lsm>/audit` line).
    pub fn render(&self) -> String {
        let errno = self.provenance.errno.map(|e| e.name()).unwrap_or("-");
        format!(
            "seq={} clk={} pid={} uid={}/{} syscall={} hook={} module={} decision={} errno={} rule={} obj={} msg=\"{}\"",
            self.seq,
            self.clock,
            self.pid,
            self.ruid,
            self.euid,
            self.syscall,
            self.provenance.hook.name(),
            self.provenance.module,
            self.provenance.decision.name(),
            errno,
            self.provenance.rule.as_deref().unwrap_or("-"),
            self.object,
            self.message,
        )
    }

    /// String-view compatibility with the legacy `Vec<String>` log.
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.message.starts_with(prefix)
    }

    /// String-view compatibility with the legacy `Vec<String>` log.
    pub fn contains(&self, needle: &str) -> bool {
        self.message.contains(needle)
    }
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
