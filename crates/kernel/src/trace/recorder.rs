//! Deterministic trace record/replay over the dispatch boundary
//! (tentpole interceptor #2).
//!
//! A [`TraceRecorder`] registered on the kernel captures the full
//! `(pid, Syscall, SysRet)` stream of a run as a [`Trace`]. Because the
//! simulation is deterministic (seeded PRNGs, logical clock), re-running
//! the same workload under the same seed reproduces the stream
//! byte-identically — which a [`TraceReplayer`] verifies call by call,
//! reporting any [`Divergence`]. This turns behavioural comparisons
//! (e.g. the paper's §5.3 legacy-vs-Protego suite) into diffs over
//! rendered traces.
//!
//! Entries store the `Debug` rendering of request and response rather
//! than the values themselves: every argument type renders totally, the
//! format is diff-friendly, and equality over renderings is exactly the
//! byte-identity the replay guarantee promises.

use crate::sync::lock;
use crate::syscall::abi::{SysRet, Syscall};
use crate::syscall::interceptor::{Interceptor, SysCtx};
use crate::task::Pid;
use std::sync::{Arc, Mutex};

/// One dispatched call, as recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Calling pid.
    pub pid: u32,
    /// `Debug` rendering of the [`Syscall`] request.
    pub call: String,
    /// `Debug` rendering of the [`SysRet`] response.
    pub ret: String,
}

impl TraceEntry {
    /// Builds an entry from a live triple.
    pub fn new(pid: Pid, call: &Syscall, ret: &SysRet) -> TraceEntry {
        TraceEntry {
            pid: pid.0,
            call: format!("{:?}", call),
            ret: format!("{:?}", ret),
        }
    }

    /// One-line serialization: `pid <tab> call <tab> ret`.
    pub fn render(&self) -> String {
        format!("{}\t{}\t{}", self.pid, self.call, self.ret)
    }

    /// Parses [`TraceEntry::render`] output.
    pub fn parse(line: &str) -> Option<TraceEntry> {
        let mut parts = line.splitn(3, '\t');
        let pid = parts.next()?.parse().ok()?;
        let call = parts.next()?.to_string();
        let ret = parts.next()?.to_string();
        Some(TraceEntry { pid, call, ret })
    }
}

/// Why a serialized trace failed to parse.
///
/// Both variants carry the 1-based line number and the offending line so
/// a differential harness can say exactly where a corpus file went bad
/// instead of silently comparing a mis-aligned prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not split into `pid <tab> call <tab> ret` with a
    /// numeric pid.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line, verbatim.
        content: String,
    },
    /// The text does not end in a newline, so the final line may have
    /// been cut mid-entry. [`Trace::render`] always terminates every
    /// entry with `\n`; a partial tail — even one that happens to split
    /// into three fields — would otherwise enter the diff as a bogus
    /// entry and mis-align [`Trace::first_divergence`].
    TruncatedFinalLine {
        /// 1-based line number of the partial tail.
        line: usize,
        /// The partial tail, verbatim.
        content: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line, content } => {
                write!(f, "trace line {}: malformed: {:?}", line, content)
            }
            TraceError::TruncatedFinalLine { line, content } => write!(
                f,
                "trace line {}: truncated final line (no terminating newline): {:?}",
                line, content
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A recorded syscall stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Entries in dispatch order.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Number of recorded calls.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Line-per-entry serialization of the whole stream.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Parses [`Trace::render`] output; malformed and truncated lines are
    /// a typed [`TraceError`], never a silently shortened trace.
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        // Render terminates every entry with '\n'; a missing final
        // newline means the last entry was cut mid-write. Reject it
        // before field-splitting, because a truncated ret field can
        // still split into three fields and would otherwise slip into
        // the diff as a plausible-looking bogus entry.
        if !text.is_empty() && !text.ends_with('\n') {
            let line = text.lines().count();
            let content = text.lines().next_back().unwrap_or("").to_string();
            return Err(TraceError::TruncatedFinalLine { line, content });
        }
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            match TraceEntry::parse(line) {
                Some(e) => entries.push(e),
                None => {
                    return Err(TraceError::Malformed {
                        line: i + 1,
                        content: line.to_string(),
                    })
                }
            }
        }
        Ok(Trace { entries })
    }

    /// First index at which `self` and `other` differ, if any; compares
    /// entry-by-entry and then length.
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        for (i, (a, b)) in self.entries.iter().zip(other.entries.iter()).enumerate() {
            if a != b {
                return Some(i);
            }
        }
        if self.entries.len() != other.entries.len() {
            return Some(self.entries.len().min(other.entries.len()));
        }
        None
    }

    /// Human-readable report of the first divergence between `self` and
    /// `other`, with up to `context` preceding (agreeing) entries for
    /// orientation. `None` when the traces are identical. Lines are
    /// prefixed `  ` (shared context), `-` (self's side) and `+`
    /// (other's side); a missing side renders as `<end of trace>`.
    pub fn divergence_report(&self, other: &Trace, context: usize) -> Option<String> {
        let i = self.first_divergence(other)?;
        let mut out = String::new();
        out.push_str(&format!("first divergence at entry {}:\n", i));
        for j in i.saturating_sub(context)..i {
            out.push_str(&format!("   {}\n", self.entries[j].render()));
        }
        let side = |e: Option<&TraceEntry>| match e {
            Some(e) => e.render(),
            None => "<end of trace>".to_string(),
        };
        out.push_str(&format!("-  {}\n", side(self.entries.get(i))));
        out.push_str(&format!("+  {}\n", side(other.entries.get(i))));
        Some(out)
    }
}

/// Records every dispatched call into a shared [`Trace`].
pub struct TraceRecorder {
    trace: Arc<Mutex<Trace>>,
}

impl TraceRecorder {
    /// Builds a recorder; hold on to [`TraceRecorder::trace`] before
    /// boxing it into the kernel.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            trace: Arc::new(Mutex::new(Trace::default())),
        }
    }

    /// Shared handle onto the accumulating trace.
    pub fn trace(&self) -> Arc<Mutex<Trace>> {
        Arc::clone(&self.trace)
    }
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

impl Interceptor for TraceRecorder {
    fn name(&self) -> &'static str {
        "trace_recorder"
    }

    fn after(&self, pid: Pid, call: &Syscall, ret: &SysRet, _ctx: &mut SysCtx<'_>) {
        lock(&self.trace)
            .entries
            .push(TraceEntry::new(pid, call, ret));
    }
}

/// One replay mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Stream position (0-based).
    pub index: usize,
    /// What the recorded trace expected at this position, if any.
    pub expected: Option<TraceEntry>,
    /// What the replay actually dispatched.
    pub actual: TraceEntry,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.expected {
            Some(e) => write!(
                f,
                "entry {}: expected `{}`, got `{}`",
                self.index,
                e.render(),
                self.actual.render()
            ),
            None => write!(
                f,
                "entry {}: past end of recorded trace: `{}`",
                self.index,
                self.actual.render()
            ),
        }
    }
}

/// Verifies a live run against a recorded [`Trace`], call by call.
pub struct TraceReplayer {
    expected: Trace,
    /// Stream position; a replayed run is driven from one thread, but the
    /// trait is `&self`, so the cursor lives behind the same mutex as the
    /// divergence list to keep (position, mismatch) updates atomic.
    state: Mutex<usize>,
    divergences: Arc<Mutex<Vec<Divergence>>>,
}

impl TraceReplayer {
    /// Builds a replayer over a previously recorded trace; hold on to
    /// [`TraceReplayer::divergences`] before boxing it into the kernel.
    pub fn new(expected: Trace) -> TraceReplayer {
        TraceReplayer {
            expected,
            state: Mutex::new(0),
            divergences: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Shared handle onto the accumulated mismatches.
    pub fn divergences(&self) -> Arc<Mutex<Vec<Divergence>>> {
        Arc::clone(&self.divergences)
    }
}

impl Interceptor for TraceReplayer {
    fn name(&self) -> &'static str {
        "trace_replayer"
    }

    fn after(&self, pid: Pid, call: &Syscall, ret: &SysRet, _ctx: &mut SysCtx<'_>) {
        let actual = TraceEntry::new(pid, call, ret);
        let mut cursor = lock(&self.state);
        let expected = self.expected.entries.get(*cursor).cloned();
        if expected.as_ref() != Some(&actual) {
            lock(&self.divergences).push(Divergence {
                index: *cursor,
                expected,
                actual,
            });
        }
        *cursor += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pid: u32, call: &str, ret: &str) -> TraceEntry {
        TraceEntry {
            pid,
            call: call.to_string(),
            ret: ret.to_string(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let t = Trace {
            entries: vec![
                entry(3, "Open { path: \"/etc/passwd\" }", "Fd(3)"),
                entry(3, "Close { fd: 3 }", "Unit"),
            ],
        };
        assert_eq!(Trace::parse(&t.render()).unwrap(), t);
    }

    #[test]
    fn malformed_line_is_a_typed_error() {
        assert_eq!(
            Trace::parse("not-a-pid\tx\ty\n"),
            Err(TraceError::Malformed {
                line: 1,
                content: "not-a-pid\tx\ty".to_string(),
            })
        );
        assert_eq!(
            Trace::parse("3\tOpen\tFd(3)\n3\tmissing-ret\n"),
            Err(TraceError::Malformed {
                line: 2,
                content: "3\tmissing-ret".to_string(),
            })
        );
    }

    #[test]
    fn partial_final_line_is_rejected_not_misaligned() {
        let full = Trace {
            entries: vec![
                entry(3, "Open { path: \"/etc/passwd\" }", "Fd(3)"),
                entry(3, "Close { fd: 3 }", "Unit"),
            ],
        }
        .render();
        // Chop the trailing newline: the tail still splits into three
        // fields, so a naive parser would accept a bogus final entry.
        let chopped = full.trim_end_matches('\n');
        assert_eq!(
            Trace::parse(chopped),
            Err(TraceError::TruncatedFinalLine {
                line: 2,
                content: "3\tClose { fd: 3 }\tUnit".to_string(),
            })
        );
        // Chop mid-field too: same typed rejection, not a short trace.
        let cut = &full[..full.len() - 3];
        match Trace::parse(cut) {
            Err(TraceError::TruncatedFinalLine { line: 2, .. }) => {}
            other => panic!("mid-field cut must be a truncation error, got {:?}", other),
        }
        // A single partial line with no newline at all.
        match Trace::parse("7\tGetuid") {
            Err(TraceError::TruncatedFinalLine { line: 1, .. }) => {}
            other => panic!("partial first line must be truncation, got {:?}", other),
        }
        // The intact rendering still round-trips.
        assert_eq!(Trace::parse(&full).unwrap().len(), 2);
    }

    #[test]
    fn divergence_report_shows_context_and_both_sides() {
        let a = Trace {
            entries: vec![
                entry(1, "Getuid", "Uid(0)"),
                entry(1, "Pipe", "FdPair(3, 4)"),
            ],
        };
        assert_eq!(a.divergence_report(&a.clone(), 2), None);
        let mut b = a.clone();
        b.entries[1].ret = "FdPair(5, 6)".to_string();
        let report = a.divergence_report(&b, 2).unwrap();
        assert!(report.contains("entry 1"), "{}", report);
        assert!(report.contains("   1\tGetuid\tUid(0)"), "{}", report);
        assert!(report.contains("-  1\tPipe\tFdPair(3, 4)"), "{}", report);
        assert!(report.contains("+  1\tPipe\tFdPair(5, 6)"), "{}", report);
        let mut longer = a.clone();
        longer.entries.push(entry(1, "Close { fd: 3 }", "Unit"));
        let report = a.divergence_report(&longer, 0).unwrap();
        assert!(report.contains("-  <end of trace>"), "{}", report);
    }

    #[test]
    fn first_divergence_finds_mismatch_and_length_skew() {
        let a = Trace {
            entries: vec![entry(1, "Pipe", "FdPair(3, 4)")],
        };
        let same = a.clone();
        assert_eq!(a.first_divergence(&same), None);
        let mut longer = a.clone();
        longer.entries.push(entry(1, "Close { fd: 3 }", "Unit"));
        assert_eq!(a.first_divergence(&longer), Some(1));
        let mut differs = a.clone();
        differs.entries[0].ret = "FdPair(5, 6)".to_string();
        assert_eq!(a.first_divergence(&differs), Some(0));
    }
}
