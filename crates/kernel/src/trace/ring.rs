//! Bounded audit ring buffer with kernel-audit-backlog drop semantics.

use super::event::AuditEvent;
use std::collections::VecDeque;

/// Default backlog, mirroring `audit_backlog_limit`-style bounds.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// A bounded FIFO of audit events. When full, the oldest event is
/// discarded and the drop counter incremented — the log never grows
/// without bound and never loses the *newest* (most relevant) events.
#[derive(Clone, Debug)]
pub struct AuditRing {
    buf: VecDeque<AuditEvent>,
    cap: usize,
    /// Events discarded due to backlog overflow.
    pub dropped: u64,
    next_seq: u64,
}

impl Default for AuditRing {
    fn default() -> Self {
        AuditRing::new(DEFAULT_RING_CAPACITY)
    }
}

impl AuditRing {
    /// An empty ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> AuditRing {
        AuditRing {
            buf: VecDeque::with_capacity(cap.clamp(1, DEFAULT_RING_CAPACITY)),
            cap: cap.max(1),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The sequence number the next emitted event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Allocates the next sequence number (every emitted event gets one,
    /// stored or not, so `seq` gaps reveal trace-gated events).
    pub fn assign_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, ev: AuditEvent) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Iterates stored events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AuditEvent> {
        self.buf.iter()
    }

    /// Stored events with `seq >= since` (e.g. "everything since I last
    /// looked", using a saved [`AuditRing::next_seq`]).
    pub fn since(&self, since: u64) -> impl Iterator<Item = &AuditEvent> {
        self.buf.iter().filter(move |e| e.seq >= since)
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&AuditEvent> {
        self.buf.back()
    }

    /// Discards all stored events (drop/seq counters are preserved).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Re-sorts stored events by sequence number. Batched writers (see
    /// `SharedAuditRing`) flush per-worker staging buffers whose events
    /// may interleave out of seq order across batches; sorting after each
    /// flush restores the ring's oldest-first invariant, so eviction
    /// still drops the lowest sequence numbers.
    pub(crate) fn sort_by_seq(&mut self) {
        self.buf.make_contiguous().sort_by_key(|e| e.seq);
    }

    /// Renders the `/proc/<lsm>/audit` view: a summary header followed by
    /// one structured line per stored event.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# audit ring: stored={} capacity={} dropped={} next_seq={}\n",
            self.len(),
            self.cap,
            self.dropped,
            self.next_seq
        );
        for ev in self.iter() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

impl<'a> IntoIterator for &'a AuditRing {
    type Item = &'a AuditEvent;
    type IntoIter = std::collections::vec_deque::Iter<'a, AuditEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AuditObject, DecisionKind, Hook, Provenance};

    fn ev(seq: u64) -> AuditEvent {
        AuditEvent {
            seq,
            clock: 0,
            pid: 1,
            ruid: 0,
            euid: 0,
            syscall: "test",
            object: AuditObject::None,
            provenance: Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            message: format!("event {}", seq),
        }
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_drops() {
        let mut r = AuditRing::new(3);
        for _ in 0..5 {
            let s = r.assign_seq();
            r.push(ev(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped, 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "newest events are retained");
        assert_eq!(r.last().unwrap().seq, 4);
        assert_eq!(r.next_seq(), 5);
    }

    #[test]
    fn since_filters_by_seq() {
        let mut r = AuditRing::new(10);
        for _ in 0..6 {
            let s = r.assign_seq();
            r.push(ev(s));
        }
        let tail: Vec<u64> = r.since(4).map(|e| e.seq).collect();
        assert_eq!(tail, vec![4, 5]);
    }

    #[test]
    fn render_carries_header_and_lines() {
        let mut r = AuditRing::new(2);
        let s = r.assign_seq();
        r.push(ev(s));
        let text = r.render();
        assert!(text.starts_with("# audit ring: stored=1 capacity=2 dropped=0"));
        assert!(text.contains("seq=0"));
        assert!(text.contains("hook=lifecycle"));
    }
}
