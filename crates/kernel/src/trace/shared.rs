//! Concurrency-ready wrappers over the audit ring and metrics: a
//! [`SharedAuditRing`] with per-worker staged (batched) writes, and
//! [`ShardedMetrics`] accumulating per-worker and merging on snapshot.
//!
//! Both exist so that `Kernel::dispatch` can take `&self` and be driven
//! from many worker threads against one kernel without funnelling every
//! syscall through a single audit/metrics lock:
//!
//! * audit events are staged in a per-thread buffer and flushed into the
//!   bounded ring in one lock acquisition per [`AUDIT_STAGE_BATCH`]
//!   events — except denials, which flush immediately (denials are
//!   always recorded, never parked in a buffer);
//! * every read API flushes **all** threads' staging first and re-sorts
//!   the ring by sequence number, so `/proc/<lsm>/audit` never shows a
//!   stale or out-of-order view;
//! * metrics accumulate into a per-thread [`Metrics`] shard without any
//!   cross-worker contention; [`ShardedMetrics::snapshot`] merges all
//!   shards into one value.

use super::event::AuditEvent;
use super::metrics::Metrics;
use super::ring::{AuditRing, DEFAULT_RING_CAPACITY};
use crate::sync::{lock, PerThread};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Staged events per worker before a batched ring flush.
pub const AUDIT_STAGE_BATCH: usize = 32;

type StageSlot = Arc<Mutex<Vec<AuditEvent>>>;

/// A bounded audit ring shareable across worker threads.
///
/// Wraps one [`AuditRing`] behind a mutex, assigns sequence numbers from
/// an atomic (so `seq` stays gap-revealing and strictly increasing even
/// under concurrency), and batches writes through per-thread staging
/// buffers registered in a shared list — a reader on any thread can
/// drain every writer's staging.
pub struct SharedAuditRing {
    ring: Mutex<AuditRing>,
    next_seq: AtomicU64,
    stages: Mutex<Vec<StageSlot>>,
    my_stage: PerThread<Option<StageSlot>>,
}

impl Default for SharedAuditRing {
    fn default() -> Self {
        SharedAuditRing::new(DEFAULT_RING_CAPACITY)
    }
}

impl std::fmt::Debug for SharedAuditRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedAuditRing")
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl SharedAuditRing {
    /// An empty shared ring holding at most `cap` events.
    pub fn new(cap: usize) -> SharedAuditRing {
        SharedAuditRing {
            ring: Mutex::new(AuditRing::new(cap)),
            next_seq: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
            my_stage: PerThread::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        lock(&self.ring).capacity()
    }

    /// Replaces the inner ring with an empty one of capacity `cap`,
    /// discarding stored and staged events (tests exercising overflow
    /// accounting shrink the ring this way). Sequence numbering is NOT
    /// reset — `seq` stays strictly increasing for the kernel's lifetime.
    pub fn set_capacity(&self, cap: usize) {
        self.flush();
        *lock(&self.ring) = AuditRing::new(cap);
    }

    /// Allocates the next sequence number (0-based, return-then-increment
    /// like [`AuditRing::assign_seq`]).
    pub fn assign_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The sequence number the next emitted event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// This thread's staging buffer, registering it on first use.
    fn stage(&self) -> StageSlot {
        self.my_stage.with(|slot| match slot {
            Some(s) => Arc::clone(s),
            None => {
                let s: StageSlot = Arc::new(Mutex::new(Vec::new()));
                lock(&self.stages).push(Arc::clone(&s));
                *slot = Some(Arc::clone(&s));
                s
            }
        })
    }

    /// Stages an event for the ring. Denials flush immediately (they are
    /// always recorded); informational events flush once the staging
    /// buffer reaches [`AUDIT_STAGE_BATCH`], amortizing the ring lock.
    pub fn push(&self, ev: AuditEvent) {
        let urgent = ev.is_denial();
        let stage = self.stage();
        let staged = {
            let mut s = lock(&stage);
            s.push(ev);
            s.len()
        };
        if urgent || staged >= AUDIT_STAGE_BATCH {
            self.flush();
        }
    }

    /// Drains every thread's staging buffer into the ring in one ring
    /// lock acquisition, restoring seq order.
    pub fn flush(&self) {
        let mut batch: Vec<AuditEvent> = Vec::new();
        {
            let stages = lock(&self.stages);
            for s in stages.iter() {
                batch.append(&mut lock(s));
            }
        }
        if batch.is_empty() {
            return;
        }
        batch.sort_by_key(|e| e.seq);
        let mut ring = lock(&self.ring);
        for ev in batch {
            ring.push(ev);
        }
        ring.sort_by_seq();
    }

    /// Number of events currently stored (staging flushed first).
    pub fn len(&self) -> usize {
        self.flush();
        lock(&self.ring).len()
    }

    /// Whether no events are stored (staging flushed first).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded due to backlog overflow.
    pub fn dropped(&self) -> u64 {
        self.flush();
        lock(&self.ring).dropped
    }

    /// All stored events, oldest first (staging flushed first).
    pub fn events(&self) -> Vec<AuditEvent> {
        self.flush();
        lock(&self.ring).iter().cloned().collect()
    }

    /// Stored events with `seq >= since` (staging flushed first).
    pub fn since(&self, since: u64) -> Vec<AuditEvent> {
        self.flush();
        lock(&self.ring).since(since).cloned().collect()
    }

    /// The most recent stored event, if any (staging flushed first).
    pub fn last(&self) -> Option<AuditEvent> {
        self.flush();
        lock(&self.ring).last().cloned()
    }

    /// Discards all stored and staged events (drop/seq counters kept).
    pub fn clear(&self) {
        let stages = lock(&self.stages);
        for s in stages.iter() {
            lock(s).clear();
        }
        drop(stages);
        lock(&self.ring).clear();
    }

    /// Renders the `/proc/<lsm>/audit` view (staging flushed first, so
    /// the rendering is never stale or out of order).
    pub fn render(&self) -> String {
        self.flush();
        lock(&self.ring).render()
    }
}

type MetricsSlot = Arc<Mutex<Metrics>>;

/// Per-worker [`Metrics`] accumulation with merge-on-snapshot.
///
/// Each thread records into its own shard (an uncontended mutex);
/// [`ShardedMetrics::snapshot`] folds every shard into a single value
/// with [`Metrics::merge`], which is sound because every `Metrics` field
/// is a sum, count, min/max, or bucketed histogram — all commutative
/// monoids, so per-worker accumulation then merging equals recording
/// centrally in any order.
#[derive(Default)]
pub struct ShardedMetrics {
    shards: Mutex<Vec<MetricsSlot>>,
    my_shard: PerThread<Option<MetricsSlot>>,
}

impl std::fmt::Debug for ShardedMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMetrics").finish()
    }
}

impl ShardedMetrics {
    /// An empty sharded collector.
    pub fn new() -> ShardedMetrics {
        ShardedMetrics::default()
    }

    /// Runs `f` over this thread's shard, registering it on first use.
    pub fn with<R>(&self, f: impl FnOnce(&mut Metrics) -> R) -> R {
        let shard = self.my_shard.with(|slot| match slot {
            Some(s) => Arc::clone(s),
            None => {
                let s: MetricsSlot = Arc::new(Mutex::new(Metrics::default()));
                lock(&self.shards).push(Arc::clone(&s));
                *slot = Some(Arc::clone(&s));
                s
            }
        });
        let mut m = lock(&shard);
        f(&mut m)
    }

    /// Folds an audit event into this thread's shard.
    pub fn record(&self, ev: &AuditEvent) {
        self.with(|m| m.record(ev));
    }

    /// Observes a named latency sample on this thread's shard.
    pub fn observe_latency(&self, pathway: &'static str, delta: u64) {
        self.with(|m| m.observe_latency(pathway, delta));
    }

    /// Observes a per-class syscall sample on this thread's shard.
    pub fn observe_class(&self, class: crate::syscall::SyscallClass, delta: u64, errored: bool) {
        self.with(|m| m.observe_class(class, delta, errored));
    }

    /// Merges every worker's shard into one self-contained value.
    pub fn snapshot(&self) -> Metrics {
        let mut out = Metrics::default();
        let shards = lock(&self.shards);
        for s in shards.iter() {
            out.merge(&lock(s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Errno;
    use crate::trace::{AuditObject, DecisionKind, Hook, Provenance};

    fn ev(ring: &SharedAuditRing, deny: bool) -> AuditEvent {
        let (kind, errno) = if deny {
            (DecisionKind::Deny, Some(Errno::EPERM))
        } else {
            (DecisionKind::Info, None)
        };
        AuditEvent {
            seq: ring.assign_seq(),
            clock: 0,
            pid: 1,
            ruid: 0,
            euid: 0,
            syscall: "test",
            object: AuditObject::None,
            provenance: Provenance::kernel(Hook::Lifecycle, kind, errno),
            message: "m".into(),
        }
    }

    #[test]
    fn denials_flush_immediately_infos_batch() {
        let r = SharedAuditRing::new(256);
        let info = ev(&r, false);
        r.push(info);
        // Staged, not yet in the ring (peek without flushing).
        assert_eq!(lock(&r.ring).len(), 0);
        let deny = ev(&r, true);
        r.push(deny);
        // The denial flushed everything staged so far.
        assert_eq!(lock(&r.ring).len(), 2);
    }

    #[test]
    fn reads_flush_and_sort() {
        let r = SharedAuditRing::new(256);
        for _ in 0..5 {
            let e = ev(&r, false);
            r.push(e);
        }
        assert_eq!(r.len(), 5);
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.last().unwrap().seq, 4);
        assert_eq!(r.since(3).len(), 2);
        assert_eq!(r.next_seq(), 5);
    }

    #[test]
    fn cross_thread_staging_is_visible_to_any_reader() {
        let r = std::sync::Arc::new(SharedAuditRing::new(256));
        let r2 = std::sync::Arc::clone(&r);
        std::thread::spawn(move || {
            let e = ev(&r2, false);
            r2.push(e);
        })
        .join()
        .unwrap();
        // The writer thread exited with its event still staged; this
        // thread's read drains it.
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_pushes_keep_every_event_ordered() {
        let r = std::sync::Arc::new(SharedAuditRing::new(4096));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let e = ev(&r, i % 50 == 0);
                    r.push(e);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = r.events();
        assert_eq!(events.len(), 800);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "ring view is seq-ordered");
        assert_eq!(r.next_seq(), 800);
    }

    #[test]
    fn sharded_metrics_merge_across_threads() {
        let m = std::sync::Arc::new(ShardedMetrics::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    m.observe_latency("p", 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = m.snapshot();
        let stats = snap.latency.get("p").expect("latency recorded");
        assert_eq!(stats.samples, 400);
        assert_eq!(stats.mean(), 3);
    }
}
