//! The audit subscription point: sinks observe every emitted event
//! (regardless of the `trace` flag or ring eviction), which is how
//! userland daemons watch kernel decisions live.

use super::event::AuditEvent;

/// An audit event subscriber registered with `Kernel::subscribe_sink`.
pub trait AuditSink {
    /// Called synchronously for every emitted event.
    fn on_event(&mut self, event: &AuditEvent);
}

/// A trivial sink that clones every event into a vector — useful in
/// tests and as a reference implementation.
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    /// Everything observed so far.
    pub events: Vec<AuditEvent>,
}

impl AuditSink for CollectingSink {
    fn on_event(&mut self, event: &AuditEvent) {
        self.events.push(event.clone());
    }
}

/// Shared-handle forwarding, so a subscriber handed to the kernel can
/// still be read from outside (the simulation is single-threaded).
impl<S: AuditSink> AuditSink for std::rc::Rc<std::cell::RefCell<S>> {
    fn on_event(&mut self, event: &AuditEvent) {
        self.borrow_mut().on_event(event);
    }
}
