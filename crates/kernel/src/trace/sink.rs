//! The audit subscription point: sinks observe every emitted event
//! (regardless of the `trace` flag or ring eviction), which is how
//! userland daemons watch kernel decisions live.

use super::event::AuditEvent;

/// An audit event subscriber registered with `Kernel::subscribe_sink`.
///
/// `Send` because the kernel is shared across worker threads: a sink
/// handed to `subscribe_sink` may be invoked from any thread dispatching
/// a syscall (the kernel serializes invocations, so `on_event` still
/// takes `&mut self`).
pub trait AuditSink: Send {
    /// Called synchronously for every emitted event.
    fn on_event(&mut self, event: &AuditEvent);
}

/// A trivial sink that clones every event into a vector — useful in
/// tests and as a reference implementation.
#[derive(Clone, Debug, Default)]
pub struct CollectingSink {
    /// Everything observed so far.
    pub events: Vec<AuditEvent>,
}

impl AuditSink for CollectingSink {
    fn on_event(&mut self, event: &AuditEvent) {
        self.events.push(event.clone());
    }
}

/// Shared-handle forwarding, so a subscriber handed to the kernel can
/// still be read from outside while the kernel owns the other handle.
impl<S: AuditSink> AuditSink for std::sync::Arc<std::sync::Mutex<S>> {
    fn on_event(&mut self, event: &AuditEvent) {
        crate::sync::lock(self).on_event(event);
    }
}
