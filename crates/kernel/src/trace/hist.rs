//! Fixed-size log2-bucket latency histograms.
//!
//! Every timed pathway (see [`mod@crate::trace::span`]) feeds one
//! [`LatencyHistogram`]: a 65-slot power-of-two bucket array plus exact
//! count/total/min/max. The layout is allocation-free and `Copy`-free but
//! plain-old-data, so snapshots cross threads over a channel and merge
//! associatively and commutatively — the same contract [`super::Metrics`]
//! honours for the fleet benchmarks.
//!
//! Bucket layout: bucket 0 holds exactly the value 0; bucket `k` (k ≥ 1)
//! holds values in `[2^(k-1), 2^k - 1]`. A `u64` value therefore always
//! fits: the largest inputs land in bucket 64. Percentiles are answered
//! with the bucket's inclusive upper bound, so a reported p99 is a
//! conservative (never under-reported) nanosecond figure.

/// Number of buckets: one for zero plus one per power of two up to 2^63.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-size log2-bucket latency histogram (nanosecond-oriented, but
/// unit-agnostic). No allocation ever; merge is element-wise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub total: u64,
    /// Smallest observed value (`u64::MAX` until the first observation).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log2 buckets; see the module docs for the boundary convention.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// The bucket index `value` falls into.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// The inclusive upper bound of bucket `idx`.
pub fn bucket_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub const fn new() -> LatencyHistogram {
        LatencyHistogram {
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest observation, or 0 when empty (the sentinel never
    /// leaks into rendered output).
    pub fn observed_min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` (0.0 ..= 1.0): the inclusive upper bound
    /// of the bucket containing the ceil(q·count)-th observation, clamped
    /// to the observed min/max so exact endpoints stay exact. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(idx).clamp(self.observed_min(), self.max);
            }
        }
        self.max
    }

    /// Median (conservative upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (conservative upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (conservative upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds another histogram into this one. Element-wise, so the
    /// operation is associative and commutative and fleet merges are
    /// order-independent.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        // 2^k is the *lower* edge of bucket k+1; 2^k - 1 the upper edge
        // of bucket k.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for k in 1..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k + 1, "2^{k}");
            assert_eq!(bucket_of(v - 1), k, "2^{k} - 1");
            assert_eq!(bucket_bound(k), v - 1);
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn observe_tracks_count_total_min_max() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.observed_min(), 0);
        for v in [7, 3, 1024, 3] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.total, 7 + 3 + 1024 + 3);
        assert_eq!(h.observed_min(), 3);
        assert_eq!(h.max, 1024);
        assert_eq!(h.mean(), 1037 / 4);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.observe(v * 17 % 4096);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed: {v} < {prev}");
            prev = v;
        }
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max);
    }

    #[test]
    fn quantile_clamps_to_observed_range() {
        let mut h = LatencyHistogram::new();
        h.observe(5);
        h.observe(5);
        // Bucket bound for 5 is 7; clamping keeps the report exact.
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p99(), 5);
        assert_eq!(h.quantile(0.0), 5);
    }

    #[test]
    fn merge_is_commutative_and_order_independent() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [1, 2, 300, 4096] {
            a.observe(v);
        }
        for v in [9, 0, 77] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 7);
        assert_eq!(ab.observed_min(), 0);
        assert_eq!(ab.max, 4096);
    }
}
