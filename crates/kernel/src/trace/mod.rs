//! Structured kernel observability: typed audit events with decision
//! provenance, a bounded ring buffer with kernel-audit-backlog drop
//! semantics, per-hook / per-syscall decision metrics, and an
//! [`AuditSink`] subscription point for userland daemons.
//!
//! This replaces the original unbounded `Vec<String>` audit trail. Every
//! policy-relevant decision site in the syscall layer now emits an
//! [`AuditEvent`] carrying *which* LSM hook decided, *which* policy rule
//! matched (when the module tracks one), the resulting decision kind and
//! errno, and the subject (pid + credentials) and object (path, port,
//! device, uid…) involved. The human-readable line the old log carried is
//! preserved as [`AuditEvent::message`], so string-level assertions keep
//! working, while everything downstream (benches, the exploit replay
//! harness, `/proc/<lsm>/audit` and `/proc/<lsm>/metrics`) can query the
//! typed form.
//!
//! Recording policy (see `Kernel::emit_event`):
//!
//! * `Deny` events are **always** recorded — dropping security denials
//!   because tracing is off would blind incident response;
//! * all other kinds (`Allow`, `UseDefault`, `Defer`, `Info`) are
//!   recorded only when `Kernel::trace` is on;
//! * [`Metrics`] counters and subscribed sinks observe every emitted
//!   event regardless of the flag.

mod event;
pub mod hist;
mod metrics;
mod recorder;
mod ring;
mod shared;
mod sink;
pub mod span;

pub use event::{AuditEvent, AuditObject, DecisionKind, Hook, Provenance};
pub use hist::{LatencyHistogram, HIST_BUCKETS};
pub use metrics::{
    CacheStats, ClassStats, ClassTable, DecisionCounters, HookCounters, LatencyStats, Metrics,
    SyscallCounters,
};
pub use recorder::{Divergence, Trace, TraceEntry, TraceError, TraceRecorder, TraceReplayer};
pub use ring::{AuditRing, DEFAULT_RING_CAPACITY};
pub use shared::{ShardedMetrics, SharedAuditRing, AUDIT_STAGE_BATCH};
pub use sink::{AuditSink, CollectingSink};
pub use span::{span, Pathway, SpanGuard, TimingSnapshot};
