//! Per-hook and per-syscall decision counters, an errno histogram, and
//! logical-clock latency observations.

use super::event::{AuditEvent, DecisionKind, Hook};
use std::collections::BTreeMap;

/// Allow/deny/use-default/defer/info counts for one key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Module-granted decisions.
    pub allow: u64,
    /// Denials.
    pub deny: u64,
    /// Stock-policy decisions.
    pub use_default: u64,
    /// Deferred decisions (pending transitions).
    pub defer: u64,
    /// Informational events.
    pub info: u64,
}

impl DecisionCounters {
    /// Increments the counter for `kind`.
    pub fn bump(&mut self, kind: DecisionKind) {
        match kind {
            DecisionKind::Allow => self.allow += 1,
            DecisionKind::Deny => self.deny += 1,
            DecisionKind::UseDefault => self.use_default += 1,
            DecisionKind::Defer => self.defer += 1,
            DecisionKind::Info => self.info += 1,
        }
    }

    /// Sum over all decision kinds.
    pub fn total(&self) -> u64 {
        self.allow + self.deny + self.use_default + self.defer + self.info
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &DecisionCounters) {
        self.allow += other.allow;
        self.deny += other.deny;
        self.use_default += other.use_default;
        self.defer += other.defer;
        self.info += other.info;
    }
}

/// Hit/miss/invalidation counters for one kernel-side cache (the VFS
/// dcache, an LSM's compiled-policy lookup caches, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the slow path.
    pub misses: u64,
    /// Times the cache was flushed (generation bump, reload, overflow).
    pub invalidations: u64,
}

impl CacheStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// Logical-clock latency aggregate for one pathway.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of observations.
    pub samples: u64,
    /// Sum of observed logical-clock deltas.
    pub total: u64,
    /// Largest observed delta.
    pub max: u64,
}

impl LatencyStats {
    /// Records one observation.
    pub fn observe(&mut self, delta: u64) {
        self.samples += 1;
        self.total += delta;
        self.max = self.max.max(delta);
    }
}

/// Dispatch counters for one syscall class, fed by the
/// [`crate::syscall::SyscallMeter`] interceptor: call and error totals
/// plus logical-clock latency over the dispatched call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Calls dispatched in this class.
    pub calls: u64,
    /// Calls that returned an errno (including injected faults).
    pub errors: u64,
    /// Logical-clock latency over the dispatched call (normally 0 in the
    /// simulation; nonzero when a syscall advances the clock, e.g. an
    /// authentication prompt).
    pub latency: LatencyStats,
}

impl ClassStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.calls += other.calls;
        self.errors += other.errors;
        self.latency.samples += other.latency.samples;
        self.latency.total += other.latency.total;
        self.latency.max = self.latency.max.max(other.latency.max);
    }
}

/// Kernel-wide observability counters. Updated on every emitted event,
/// independent of the `trace` flag and of ring-buffer eviction.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Decision counts keyed by LSM hook name.
    pub per_hook: BTreeMap<&'static str, DecisionCounters>,
    /// Decision counts keyed by syscall name.
    pub per_syscall: BTreeMap<&'static str, DecisionCounters>,
    /// Denial errno histogram.
    pub errnos: BTreeMap<&'static str, u64>,
    /// Logical-clock latency aggregates (e.g. authentication prompts).
    pub latency: BTreeMap<&'static str, LatencyStats>,
    /// Cache counters keyed by cache name, synchronized from the VFS
    /// dcache and the registered module's policy caches when the
    /// `/proc/<lsm>/metrics` view is rendered.
    pub caches: BTreeMap<&'static str, CacheStats>,
    /// Per-class dispatch counters keyed by [`crate::syscall::SyscallClass`]
    /// name, fed by the [`crate::syscall::SyscallMeter`] interceptor.
    pub classes: BTreeMap<&'static str, ClassStats>,
    /// Total events emitted.
    pub events: u64,
}

impl Metrics {
    /// Folds one event into the counters.
    pub fn record(&mut self, ev: &AuditEvent) {
        self.events += 1;
        let kind = ev.provenance.decision;
        self.per_hook
            .entry(ev.provenance.hook.name())
            .or_default()
            .bump(kind);
        self.per_syscall.entry(ev.syscall).or_default().bump(kind);
        if let Some(e) = ev.provenance.errno {
            *self.errnos.entry(e.name()).or_insert(0) += 1;
        }
    }

    /// Records a logical-clock latency observation.
    pub fn observe_latency(&mut self, pathway: &'static str, delta: u64) {
        self.latency.entry(pathway).or_default().observe(delta);
    }

    /// Folds one dispatched call into the per-class counters.
    pub fn observe_class(&mut self, class: &'static str, delta: u64, errored: bool) {
        let s = self.classes.entry(class).or_default();
        s.calls += 1;
        if errored {
            s.errors += 1;
        }
        s.latency.observe(delta);
    }

    /// Overwrites the snapshot for cache `name`. Cache owners keep the
    /// live counters (interior-mutable, on the hot path); this copies the
    /// current totals into the metrics view.
    pub fn record_cache(&mut self, name: &'static str, stats: CacheStats) {
        self.caches.insert(name, stats);
    }

    /// The counters for `hook` (zero if never hit).
    pub fn hook(&self, hook: Hook) -> DecisionCounters {
        self.per_hook.get(hook.name()).copied().unwrap_or_default()
    }

    /// Total denials across all hooks.
    pub fn total_denials(&self) -> u64 {
        self.per_hook.values().map(|c| c.deny).sum()
    }

    /// Adds another metrics snapshot into this one (corpus aggregation).
    pub fn merge(&mut self, other: &Metrics) {
        self.events += other.events;
        for (k, v) in &other.per_hook {
            self.per_hook.entry(k).or_default().merge(v);
        }
        for (k, v) in &other.per_syscall {
            self.per_syscall.entry(k).or_default().merge(v);
        }
        for (k, v) in &other.errnos {
            *self.errnos.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.latency {
            let s = self.latency.entry(k).or_default();
            s.samples += v.samples;
            s.total += v.total;
            s.max = s.max.max(v.max);
        }
        for (k, v) in &other.caches {
            self.caches.entry(k).or_default().merge(v);
        }
        for (k, v) in &other.classes {
            self.classes.entry(k).or_default().merge(v);
        }
    }

    /// Renders the `/proc/<lsm>/metrics` view: one `key value` line per
    /// counter, stable-ordered for easy diffing.
    pub fn render(&self) -> String {
        let mut out = format!("events_total {}\n", self.events);
        for (hook, c) in &self.per_hook {
            out.push_str(&format!(
                "hook_{} allow={} deny={} use_default={} defer={} info={}\n",
                hook, c.allow, c.deny, c.use_default, c.defer, c.info
            ));
        }
        for (sys, c) in &self.per_syscall {
            out.push_str(&format!(
                "syscall_{} allow={} deny={} use_default={} defer={} info={}\n",
                sys, c.allow, c.deny, c.use_default, c.defer, c.info
            ));
        }
        for (errno, n) in &self.errnos {
            out.push_str(&format!("errno_{} {}\n", errno, n));
        }
        for (pathway, l) in &self.latency {
            out.push_str(&format!(
                "latency_{} samples={} total={} max={}\n",
                pathway, l.samples, l.total, l.max
            ));
        }
        for (cache, c) in &self.caches {
            out.push_str(&format!(
                "cache_{} hits={} misses={} invalidations={}\n",
                cache, c.hits, c.misses, c.invalidations
            ));
        }
        // The `syscall_class_` prefix keeps class rows distinct from the
        // per-syscall rows above ("mount" is both a class and a syscall).
        for (class, s) in &self.classes {
            out.push_str(&format!(
                "syscall_class_{} calls={} errors={} clk_total={} clk_max={}\n",
                class, s.calls, s.errors, s.latency.total, s.latency.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Errno;
    use crate::trace::{AuditObject, Provenance};

    fn ev(hook: Hook, kind: DecisionKind, errno: Option<Errno>) -> AuditEvent {
        AuditEvent {
            seq: 0,
            clock: 0,
            pid: 1,
            ruid: 1000,
            euid: 1000,
            syscall: "mount",
            object: AuditObject::None,
            provenance: Provenance::lsm("protego", hook, None, kind, errno),
            message: String::new(),
        }
    }

    #[test]
    fn counters_follow_decisions() {
        let mut m = Metrics::default();
        m.record(&ev(Hook::SbMount, DecisionKind::Allow, None));
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EACCES)));
        let c = m.hook(Hook::SbMount);
        assert_eq!((c.allow, c.deny, c.use_default), (1, 2, 0));
        assert_eq!(m.per_syscall["mount"].total(), 3);
        assert_eq!(m.errnos["EPERM"], 1);
        assert_eq!(m.errnos["EACCES"], 1);
        assert_eq!(m.total_denials(), 2);
    }

    #[test]
    fn latency_aggregates() {
        let mut m = Metrics::default();
        m.observe_latency("auth", 3);
        m.observe_latency("auth", 7);
        let l = m.latency["auth"];
        assert_eq!((l.samples, l.total, l.max), (2, 10, 7));
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        b.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        b.observe_latency("auth", 5);
        a.merge(&b);
        assert_eq!(a.hook(Hook::SbMount).deny, 2);
        assert_eq!(a.errnos["EPERM"], 2);
        assert_eq!(a.latency["auth"].samples, 1);
        assert_eq!(a.events, 2);
    }

    #[test]
    fn cache_counters_render_and_merge() {
        let mut m = Metrics::default();
        m.record_cache(
            "dcache",
            CacheStats {
                hits: 10,
                misses: 3,
                invalidations: 1,
            },
        );
        assert!(m
            .render()
            .contains("cache_dcache hits=10 misses=3 invalidations=1"));
        let mut other = Metrics::default();
        other.record_cache(
            "dcache",
            CacheStats {
                hits: 5,
                misses: 1,
                invalidations: 0,
            },
        );
        m.merge(&other);
        assert_eq!(
            m.caches["dcache"],
            CacheStats {
                hits: 15,
                misses: 4,
                invalidations: 1
            }
        );
    }

    /// Fleet workers snapshot metrics in-thread and ship them over a
    /// channel to the aggregating driver — that only works if `Metrics`
    /// stays `Send + 'static`. This is a compile-time guarantee; the
    /// function body never runs.
    #[allow(dead_code)]
    fn metrics_crosses_threads() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<Metrics>();
    }

    #[test]
    fn merged_snapshot_sums_class_counters() {
        let mut a = Metrics::default();
        a.observe_class("fs", 3, false);
        a.observe_class("fs", 0, true);
        let mut b = Metrics::default();
        b.observe_class("fs", 5, false);
        b.observe_class("net", 1, false);
        a.merge(&b);
        assert_eq!(a.classes["fs"].calls, 3);
        assert_eq!(a.classes["fs"].errors, 1);
        assert_eq!(a.classes["fs"].latency.total, 8);
        assert_eq!(a.classes["fs"].latency.max, 5);
        assert_eq!(a.classes["net"].calls, 1);
    }

    #[test]
    fn render_is_line_per_counter() {
        let mut m = Metrics::default();
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        let text = m.render();
        assert!(text.starts_with("events_total 1\n"));
        assert!(text.contains("hook_sb_mount allow=0 deny=1"));
        assert!(text.contains("syscall_mount"));
        assert!(text.contains("errno_EPERM 1"));
    }
}
