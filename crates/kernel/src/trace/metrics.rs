//! Per-hook and per-syscall decision counters, an errno histogram, and
//! logical-clock latency observations.
//!
//! The hot-path counters ([`HookCounters`], [`SyscallCounters`],
//! [`ClassTable`]) are fixed arrays indexed by enum discriminant, so
//! recording an event or a dispatched call never touches a map. Cold
//! aggregates (errnos, named latency pathways, cache snapshots) stay in
//! `BTreeMap`s. Rendering sorts by name at read time, which keeps the
//! `/proc/<lsm>/metrics` output byte-identical to the old all-`BTreeMap`
//! layout.

use super::event::{AuditEvent, DecisionKind, Hook};
use crate::syscall::{Syscall, SyscallClass};
use std::collections::BTreeMap;

/// Allow/deny/use-default/defer/info counts for one key.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Module-granted decisions.
    pub allow: u64,
    /// Denials.
    pub deny: u64,
    /// Stock-policy decisions.
    pub use_default: u64,
    /// Deferred decisions (pending transitions).
    pub defer: u64,
    /// Informational events.
    pub info: u64,
}

impl DecisionCounters {
    /// Increments the counter for `kind`.
    pub fn bump(&mut self, kind: DecisionKind) {
        match kind {
            DecisionKind::Allow => self.allow += 1,
            DecisionKind::Deny => self.deny += 1,
            DecisionKind::UseDefault => self.use_default += 1,
            DecisionKind::Defer => self.defer += 1,
            DecisionKind::Info => self.info += 1,
        }
    }

    /// Sum over all decision kinds.
    pub fn total(&self) -> u64 {
        self.allow + self.deny + self.use_default + self.defer + self.info
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &DecisionCounters) {
        self.allow += other.allow;
        self.deny += other.deny;
        self.use_default += other.use_default;
        self.defer += other.defer;
        self.info += other.info;
    }
}

/// Hit/miss/invalidation counters for one kernel-side cache (the VFS
/// dcache, an LSM's compiled-policy lookup caches, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the slow path.
    pub misses: u64,
    /// Times the cache was flushed (generation bump, reload, overflow).
    pub invalidations: u64,
}

impl CacheStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }
}

/// Logical-clock latency aggregate for one pathway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of observations.
    pub samples: u64,
    /// Sum of observed logical-clock deltas.
    pub total: u64,
    /// Smallest observed delta (`u64::MAX` until the first observation,
    /// so merges are order-independent; use [`LatencyStats::observed_min`]
    /// for display).
    pub min: u64,
    /// Largest observed delta.
    pub max: u64,
}

impl Default for LatencyStats {
    fn default() -> LatencyStats {
        LatencyStats {
            samples: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyStats {
    /// Records one observation.
    pub fn observe(&mut self, delta: u64) {
        self.samples += 1;
        // Saturating like `LatencyHistogram::observe`: a clamped sum of
        // non-negative deltas is still order-independent under merge.
        self.total = self.total.saturating_add(delta);
        self.min = self.min.min(delta);
        self.max = self.max.max(delta);
    }

    /// The smallest observation, or 0 when empty (the sentinel never
    /// leaks into rendered output).
    pub fn observed_min(&self) -> u64 {
        if self.samples == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean observation (0 when empty) — preserved exactly across merges
    /// because `samples` and `total` both fold.
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.samples).unwrap_or(0)
    }

    /// Adds another aggregate into this one. Folds every field — samples,
    /// total, min, and max — so thread merges lose no fidelity and are
    /// associative, commutative, and order-independent.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples += other.samples;
        self.total = self.total.saturating_add(other.total);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Dispatch counters for one syscall class, fed by the
/// [`crate::syscall::SyscallMeter`] interceptor: call and error totals
/// plus logical-clock latency over the dispatched call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Calls dispatched in this class.
    pub calls: u64,
    /// Calls that returned an errno (including injected faults).
    pub errors: u64,
    /// Logical-clock latency over the dispatched call (normally 0 in the
    /// simulation; nonzero when a syscall advances the clock, e.g. an
    /// authentication prompt).
    pub latency: LatencyStats,
}

impl ClassStats {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.calls += other.calls;
        self.errors += other.errors;
        self.latency.merge(&other.latency);
    }
}

/// Per-hook decision counters as a fixed array indexed by [`Hook`]
/// discriminant: bumping a counter on the dispatch path is an array write,
/// not a map lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HookCounters {
    table: [DecisionCounters; Hook::COUNT],
}

impl Default for HookCounters {
    fn default() -> HookCounters {
        HookCounters {
            table: [DecisionCounters::default(); Hook::COUNT],
        }
    }
}

impl HookCounters {
    /// Increments the counter for `hook`/`kind`.
    #[inline]
    pub fn bump(&mut self, hook: Hook, kind: DecisionKind) {
        self.table[hook.index()].bump(kind);
    }

    /// The counters for `hook` (zero if never hit).
    pub fn get(&self, hook: Hook) -> DecisionCounters {
        self.table[hook.index()]
    }

    /// Touched hooks as `(name, counters)` pairs, sorted by name — the
    /// same visiting order the old `BTreeMap` produced.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &DecisionCounters)> {
        let mut rows: Vec<(&'static str, &DecisionCounters)> = Hook::ALL
            .iter()
            .map(|h| (h.name(), &self.table[h.index()]))
            .filter(|(_, c)| c.total() > 0)
            .collect();
        rows.sort_by_key(|(name, _)| *name);
        rows.into_iter()
    }

    /// Total denials across all hooks.
    pub fn total_denials(&self) -> u64 {
        self.table.iter().map(|c| c.deny).sum()
    }

    /// Adds another table into this one, element-wise.
    pub fn merge(&mut self, other: &HookCounters) {
        for (mine, theirs) in self.table.iter_mut().zip(other.table.iter()) {
            mine.merge(theirs);
        }
    }
}

impl<'a> IntoIterator for &'a HookCounters {
    type Item = (&'static str, &'a DecisionCounters);
    type IntoIter = std::vec::IntoIter<(&'static str, &'a DecisionCounters)>;

    fn into_iter(self) -> Self::IntoIter {
        let mut rows: Vec<(&'static str, &'a DecisionCounters)> = Hook::ALL
            .iter()
            .map(|h| (h.name(), &self.table[h.index()]))
            .filter(|(_, c)| c.total() > 0)
            .collect();
        rows.sort_by_key(|(name, _)| *name);
        rows.into_iter()
    }
}

/// Per-syscall decision counters: a fixed array indexed by the ABI name's
/// variant position (see [`Syscall::name_index`]) for the dispatch fast
/// path, plus a `BTreeMap` overflow for kernel-internal pathway names
/// (`"auth"`, `"register_lsm"`, `"capable"`, test fixtures, …) that are
/// not ABI syscalls.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallCounters {
    fixed: SyscallFixed,
    overflow: BTreeMap<&'static str, DecisionCounters>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct SyscallFixed([DecisionCounters; Syscall::COUNT]);

impl Default for SyscallFixed {
    fn default() -> SyscallFixed {
        SyscallFixed([DecisionCounters::default(); Syscall::COUNT])
    }
}

impl SyscallCounters {
    /// Increments the counter for `name`/`kind`. ABI names hit the fixed
    /// table; anything else falls back to the overflow map.
    #[inline]
    pub fn bump(&mut self, name: &'static str, kind: DecisionKind) {
        match Syscall::name_index(name) {
            Some(i) => self.fixed.0[i].bump(kind),
            None => self.overflow.entry(name).or_default().bump(kind),
        }
    }

    /// The counters recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&DecisionCounters> {
        match Syscall::name_index(name) {
            Some(i) => {
                let c = &self.fixed.0[i];
                if c.total() > 0 {
                    Some(c)
                } else {
                    None
                }
            }
            None => self.overflow.get(name),
        }
    }

    /// Touched syscalls as `(name, counters)` pairs, sorted by name — the
    /// same visiting order the old `BTreeMap` produced (fixed-table and
    /// overflow rows interleaved alphabetically).
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &DecisionCounters)> {
        let mut rows: Vec<(&'static str, &DecisionCounters)> = Syscall::NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| (*name, &self.fixed.0[i]))
            .filter(|(_, c)| c.total() > 0)
            .collect();
        rows.extend(self.overflow.iter().map(|(k, v)| (*k, v)));
        rows.sort_by_key(|(name, _)| *name);
        rows.into_iter()
    }

    /// Adds another table into this one.
    pub fn merge(&mut self, other: &SyscallCounters) {
        for (mine, theirs) in self.fixed.0.iter_mut().zip(other.fixed.0.iter()) {
            mine.merge(theirs);
        }
        for (k, v) in &other.overflow {
            self.overflow.entry(k).or_default().merge(v);
        }
    }
}

impl std::ops::Index<&str> for SyscallCounters {
    type Output = DecisionCounters;

    fn index(&self, name: &str) -> &DecisionCounters {
        match Syscall::name_index(name) {
            Some(i) => &self.fixed.0[i],
            None => &self.overflow[name],
        }
    }
}

/// Per-class dispatch counters as a fixed array indexed by
/// [`SyscallClass`] discriminant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassTable {
    table: [ClassStats; SyscallClass::COUNT],
}

impl ClassTable {
    /// The stats recorded for `class`.
    pub fn class(&self, class: SyscallClass) -> &ClassStats {
        &self.table[class.index()]
    }

    /// The stats recorded under a class *name*, if that class was hit.
    pub fn get(&self, name: &str) -> Option<&ClassStats> {
        SyscallClass::ALL
            .iter()
            .find(|c| c.name() == name)
            .map(|c| &self.table[c.index()])
            .filter(|s| s.calls > 0)
    }

    /// Touched classes as `(name, stats)` pairs. Discriminant order is
    /// already alphabetical, matching the old `BTreeMap` rendering.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &ClassStats)> {
        SyscallClass::ALL
            .iter()
            .map(|c| (c.name(), &self.table[c.index()]))
            .filter(|(_, s)| s.calls > 0)
    }

    /// Adds another table into this one, element-wise.
    pub fn merge(&mut self, other: &ClassTable) {
        for (mine, theirs) in self.table.iter_mut().zip(other.table.iter()) {
            mine.merge(theirs);
        }
    }
}

impl std::ops::Index<&str> for ClassTable {
    type Output = ClassStats;

    fn index(&self, name: &str) -> &ClassStats {
        let class = SyscallClass::ALL
            .iter()
            .find(|c| c.name() == name)
            .unwrap_or_else(|| panic!("unknown syscall class {name:?}"));
        &self.table[class.index()]
    }
}

impl<'a> IntoIterator for &'a ClassTable {
    type Item = (&'static str, &'a ClassStats);
    type IntoIter = std::vec::IntoIter<(&'static str, &'a ClassStats)>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// Kernel-wide observability counters. Updated on every emitted event,
/// independent of the `trace` flag and of ring-buffer eviction.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Decision counts per LSM hook (fixed array, no map on the hot path).
    pub per_hook: HookCounters,
    /// Decision counts per syscall name (fixed array + overflow map).
    pub per_syscall: SyscallCounters,
    /// Denial errno histogram.
    pub errnos: BTreeMap<&'static str, u64>,
    /// Logical-clock latency aggregates (e.g. authentication prompts).
    pub latency: BTreeMap<&'static str, LatencyStats>,
    /// Cache counters keyed by cache name, synchronized from the VFS
    /// dcache and the registered module's policy caches when the
    /// `/proc/<lsm>/metrics` view is rendered.
    pub caches: BTreeMap<&'static str, CacheStats>,
    /// Per-class dispatch counters (fixed array indexed by
    /// [`SyscallClass`]), fed by the [`crate::syscall::SyscallMeter`]
    /// interceptor.
    pub classes: ClassTable,
    /// Total events emitted.
    pub events: u64,
}

impl Metrics {
    /// Folds one event into the counters.
    pub fn record(&mut self, ev: &AuditEvent) {
        self.events += 1;
        let kind = ev.provenance.decision;
        self.per_hook.bump(ev.provenance.hook, kind);
        self.per_syscall.bump(ev.syscall, kind);
        if let Some(e) = ev.provenance.errno {
            *self.errnos.entry(e.name()).or_insert(0) += 1;
        }
    }

    /// Records a logical-clock latency observation.
    pub fn observe_latency(&mut self, pathway: &'static str, delta: u64) {
        self.latency.entry(pathway).or_default().observe(delta);
    }

    /// Folds one dispatched call into the per-class counters.
    #[inline]
    pub fn observe_class(&mut self, class: SyscallClass, delta: u64, errored: bool) {
        let s = &mut self.classes.table[class.index()];
        s.calls += 1;
        if errored {
            s.errors += 1;
        }
        s.latency.observe(delta);
    }

    /// Overwrites the snapshot for cache `name`. Cache owners keep the
    /// live counters (interior-mutable, on the hot path); this copies the
    /// current totals into the metrics view.
    pub fn record_cache(&mut self, name: &'static str, stats: CacheStats) {
        self.caches.insert(name, stats);
    }

    /// The counters for `hook` (zero if never hit).
    pub fn hook(&self, hook: Hook) -> DecisionCounters {
        self.per_hook.get(hook)
    }

    /// Total denials across all hooks.
    pub fn total_denials(&self) -> u64 {
        self.per_hook.total_denials()
    }

    /// Adds another metrics snapshot into this one (corpus aggregation).
    pub fn merge(&mut self, other: &Metrics) {
        self.events += other.events;
        self.per_hook.merge(&other.per_hook);
        self.per_syscall.merge(&other.per_syscall);
        for (k, v) in &other.errnos {
            *self.errnos.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.latency {
            self.latency.entry(k).or_default().merge(v);
        }
        for (k, v) in &other.caches {
            self.caches.entry(k).or_default().merge(v);
        }
        self.classes.merge(&other.classes);
    }

    /// Renders the `/proc/<lsm>/metrics` view: one `key value` line per
    /// counter, stable-ordered for easy diffing.
    pub fn render(&self) -> String {
        let mut out = format!("events_total {}\n", self.events);
        for (hook, c) in self.per_hook.iter() {
            out.push_str(&format!(
                "hook_{} allow={} deny={} use_default={} defer={} info={}\n",
                hook, c.allow, c.deny, c.use_default, c.defer, c.info
            ));
        }
        for (sys, c) in self.per_syscall.iter() {
            out.push_str(&format!(
                "syscall_{} allow={} deny={} use_default={} defer={} info={}\n",
                sys, c.allow, c.deny, c.use_default, c.defer, c.info
            ));
        }
        for (errno, n) in &self.errnos {
            out.push_str(&format!("errno_{} {}\n", errno, n));
        }
        for (pathway, l) in &self.latency {
            out.push_str(&format!(
                "latency_{} samples={} total={} min={} max={}\n",
                pathway,
                l.samples,
                l.total,
                l.observed_min(),
                l.max
            ));
        }
        for (cache, c) in &self.caches {
            out.push_str(&format!(
                "cache_{} hits={} misses={} invalidations={}\n",
                cache, c.hits, c.misses, c.invalidations
            ));
        }
        // The `syscall_class_` prefix keeps class rows distinct from the
        // per-syscall rows above ("mount" is both a class and a syscall).
        for (class, s) in self.classes.iter() {
            out.push_str(&format!(
                "syscall_class_{} calls={} errors={} clk_total={} clk_max={}\n",
                class, s.calls, s.errors, s.latency.total, s.latency.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Errno;
    use crate::trace::{AuditObject, Provenance};

    fn ev(hook: Hook, kind: DecisionKind, errno: Option<Errno>) -> AuditEvent {
        AuditEvent {
            seq: 0,
            clock: 0,
            pid: 1,
            ruid: 1000,
            euid: 1000,
            syscall: "mount",
            object: AuditObject::None,
            provenance: Provenance::lsm("protego", hook, None, kind, errno),
            message: String::new(),
        }
    }

    #[test]
    fn counters_follow_decisions() {
        let mut m = Metrics::default();
        m.record(&ev(Hook::SbMount, DecisionKind::Allow, None));
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EACCES)));
        let c = m.hook(Hook::SbMount);
        assert_eq!((c.allow, c.deny, c.use_default), (1, 2, 0));
        assert_eq!(m.per_syscall["mount"].total(), 3);
        assert_eq!(m.errnos["EPERM"], 1);
        assert_eq!(m.errnos["EACCES"], 1);
        assert_eq!(m.total_denials(), 2);
    }

    #[test]
    fn non_abi_syscall_names_land_in_overflow() {
        let mut m = Metrics::default();
        let mut e = ev(Hook::Auth, DecisionKind::Info, None);
        e.syscall = "auth";
        m.record(&e);
        m.record(&ev(Hook::SbMount, DecisionKind::Allow, None));
        assert_eq!(m.per_syscall["auth"].info, 1);
        assert_eq!(m.per_syscall.get("auth").unwrap().total(), 1);
        // Sorted interleave: "auth" (overflow) precedes "mount" (fixed).
        let names: Vec<_> = m.per_syscall.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["auth", "mount"]);
    }

    #[test]
    fn latency_aggregates() {
        let mut m = Metrics::default();
        m.observe_latency("auth", 3);
        m.observe_latency("auth", 7);
        let l = m.latency["auth"];
        assert_eq!((l.samples, l.total, l.max), (2, 10, 7));
        assert_eq!(l.observed_min(), 3);
        assert_eq!(l.mean(), 5);
    }

    #[test]
    fn latency_merge_keeps_min_and_mean_fidelity() {
        let mut a = LatencyStats::default();
        a.observe(10);
        a.observe(20);
        let mut b = LatencyStats::default();
        b.observe(2);
        // Merge order must not matter, and min/mean must survive.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.observed_min(), 2);
        assert_eq!(ab.mean(), 32 / 3);
        // An empty aggregate is the merge identity.
        let mut with_empty = ab;
        with_empty.merge(&LatencyStats::default());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        b.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        b.observe_latency("auth", 5);
        a.merge(&b);
        assert_eq!(a.hook(Hook::SbMount).deny, 2);
        assert_eq!(a.errnos["EPERM"], 2);
        assert_eq!(a.latency["auth"].samples, 1);
        assert_eq!(a.events, 2);
    }

    #[test]
    fn cache_counters_render_and_merge() {
        let mut m = Metrics::default();
        m.record_cache(
            "dcache",
            CacheStats {
                hits: 10,
                misses: 3,
                invalidations: 1,
            },
        );
        assert!(m
            .render()
            .contains("cache_dcache hits=10 misses=3 invalidations=1"));
        let mut other = Metrics::default();
        other.record_cache(
            "dcache",
            CacheStats {
                hits: 5,
                misses: 1,
                invalidations: 0,
            },
        );
        m.merge(&other);
        assert_eq!(
            m.caches["dcache"],
            CacheStats {
                hits: 15,
                misses: 4,
                invalidations: 1
            }
        );
    }

    /// Fleet workers snapshot metrics in-thread and ship them over a
    /// channel to the aggregating driver — that only works if `Metrics`
    /// stays `Send + 'static`. This is a compile-time guarantee; the
    /// function body never runs.
    #[allow(dead_code)]
    fn metrics_crosses_threads() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<Metrics>();
    }

    #[test]
    fn merged_snapshot_sums_class_counters() {
        let mut a = Metrics::default();
        a.observe_class(SyscallClass::Fs, 3, false);
        a.observe_class(SyscallClass::Fs, 0, true);
        let mut b = Metrics::default();
        b.observe_class(SyscallClass::Fs, 5, false);
        b.observe_class(SyscallClass::Net, 1, false);
        a.merge(&b);
        assert_eq!(a.classes["fs"].calls, 3);
        assert_eq!(a.classes["fs"].errors, 1);
        assert_eq!(a.classes["fs"].latency.total, 8);
        assert_eq!(a.classes["fs"].latency.max, 5);
        assert_eq!(a.classes["net"].calls, 1);
    }

    #[test]
    fn fixed_table_render_matches_btreemap_order() {
        // Bump hooks and syscalls deliberately out of alphabetical order;
        // the render must still come out sorted (byte-compatible with the
        // old BTreeMap layout).
        let mut m = Metrics::default();
        let mut e = ev(Hook::TaskSetuid, DecisionKind::Allow, None);
        e.syscall = "setuid";
        m.record(&e);
        let mut e = ev(Hook::Capable, DecisionKind::UseDefault, None);
        e.syscall = "chmod";
        m.record(&e);
        let text = m.render();
        let hook_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("hook_")).collect();
        assert_eq!(hook_lines.len(), 2);
        assert!(hook_lines[0].starts_with("hook_capable "));
        assert!(hook_lines[1].starts_with("hook_task_setuid "));
        let sys_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("syscall_") && !l.starts_with("syscall_class_"))
            .collect();
        assert_eq!(sys_lines.len(), 2);
        assert!(sys_lines[0].starts_with("syscall_chmod "));
        assert!(sys_lines[1].starts_with("syscall_setuid "));
    }

    #[test]
    fn render_is_line_per_counter() {
        let mut m = Metrics::default();
        m.record(&ev(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)));
        let text = m.render();
        assert!(text.starts_with("events_total 1\n"));
        assert!(text.contains("hook_sb_mount allow=0 deny=1"));
        assert!(text.contains("syscall_mount"));
        assert!(text.contains("errno_EPERM 1"));
    }
}
