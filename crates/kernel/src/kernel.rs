//! The kernel: global state, LSM and authentication plumbing, logical
//! clock, and audit tracing. The system-call surface is implemented in the
//! [`crate::syscall`] modules as further `impl Kernel` blocks.

use crate::caps::Cap;
use crate::cred::{Credentials, Uid};
use crate::dev::{
    BlockState, DevId, DeviceKind, DeviceRegistry, DmCryptState, KmsState, ModemState,
};
use crate::error::{Errno, KResult};
use crate::lsm::{AuthProvider, AuthScope, Decision, SecurityModule};
use crate::net::{NetStack, Netfilter, RouteTable, SimNet};
use crate::task::{Pid, Task};
use crate::trace::DecisionKind;
use crate::trace::{AuditEvent, AuditObject, AuditRing, AuditSink, Hook, Metrics, Provenance};
use crate::vfs::{Ino, InodeData, Mode, ProcHook, Vfs};
use std::collections::{BTreeMap, VecDeque};

/// A pipe buffer.
#[derive(Debug, Default, Clone)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Live read ends.
    pub readers: u32,
    /// Live write ends.
    pub writers: u32,
}

/// The authentication recency window, in logical seconds (sudo's classic
/// 5 minutes, enforced by the Protego kernel per §4.3).
pub const AUTH_WINDOW_SECS: u64 = 300;

/// The simulated kernel.
pub struct Kernel {
    /// The virtual filesystem.
    pub vfs: Vfs,
    /// Socket arena and port table.
    pub net: NetStack,
    /// OUTPUT-chain packet filter.
    pub netfilter: Netfilter,
    /// Routing table.
    pub routes: RouteTable,
    /// The world beyond this machine.
    pub simnet: SimNet,
    /// Device registry.
    pub devices: DeviceRegistry,
    /// Pipe arena.
    pub pipes: Vec<Pipe>,
    /// Logical clock in seconds.
    pub clock: u64,
    /// Bounded audit trail of typed policy events. Denials are always
    /// recorded; informational events require `trace`.
    pub audit: AuditRing,
    /// Kernel-wide decision counters and latency aggregates (always on).
    pub metrics: Metrics,
    /// Whether to record non-denial (informational) audit events.
    pub trace: bool,
    /// Whether unprivileged user-namespace creation is allowed — the
    /// Linux >= 3.8 behaviour (§4.6); the paper's 3.6 baseline is false.
    pub unprivileged_userns: bool,
    tasks: BTreeMap<u32, Task>,
    next_pid: u32,
    lsm: Box<dyn SecurityModule>,
    auth: Option<Box<dyn AuthProvider>>,
    media_roots: BTreeMap<DevId, Ino>,
    sinks: Vec<Box<dyn AuditSink>>,
    pub(crate) interceptors: Vec<Box<dyn crate::syscall::Interceptor>>,
}

impl Kernel {
    /// Boots a kernel with the null LSM and an empty filesystem.
    pub fn new(simnet: SimNet) -> Kernel {
        Kernel {
            vfs: Vfs::new(),
            net: NetStack::new(),
            netfilter: Netfilter::new(),
            routes: RouteTable::new(),
            simnet,
            devices: DeviceRegistry::new(),
            pipes: Vec::new(),
            clock: 1_000_000,
            audit: AuditRing::default(),
            metrics: Metrics::default(),
            trace: false,
            unprivileged_userns: false,
            tasks: BTreeMap::new(),
            next_pid: 1,
            lsm: Box::new(crate::lsm::NullLsm),
            auth: None,
            media_roots: BTreeMap::new(),
            sinks: Vec::new(),
            interceptors: Vec::new(),
        }
    }

    /// Registers an interceptor on the dispatch chain. `before` hooks run
    /// in registration order, `after` hooks in reverse; see
    /// [`Kernel::dispatch`].
    pub fn push_interceptor(&mut self, ic: Box<dyn crate::syscall::Interceptor>) {
        self.interceptors.push(ic);
    }

    /// Removes all registered interceptors.
    pub fn clear_interceptors(&mut self) {
        self.interceptors.clear();
    }

    /// Registers the active security module: installs its `/proc/<name>/`
    /// configuration nodes and boot-time netfilter rules.
    pub fn register_lsm(&mut self, lsm: Box<dyn SecurityModule>) -> KResult<()> {
        for rule in lsm.boot_netfilter_rules() {
            self.netfilter.append(rule);
        }
        let name = lsm.name();
        for node in lsm.config_nodes() {
            let path = format!("/proc/{}/{}", name, node);
            self.vfs.install_hook(
                &path,
                ProcHook::LsmConfig(node),
                Mode(0o600),
                Uid::ROOT,
                crate::cred::Gid::ROOT,
            )?;
        }
        // Observability nodes: the structured audit ring and the decision
        // counters, readable by root under the module's /proc directory.
        self.vfs.install_hook(
            &format!("/proc/{}/audit", name),
            ProcHook::Audit,
            Mode(0o600),
            Uid::ROOT,
            crate::cred::Gid::ROOT,
        )?;
        self.vfs.install_hook(
            &format!("/proc/{}/metrics", name),
            ProcHook::Metrics,
            Mode(0o600),
            Uid::ROOT,
            crate::cred::Gid::ROOT,
        )?;
        // Every registered module is wrapped so its hooks feed the
        // per-pathway latency histograms (trace::span) uniformly.
        self.lsm = Box::new(crate::lsm::TimedLsm::new(lsm));
        self.emit_event(
            0,
            "register_lsm",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            format!("lsm: registered module '{}'", name),
        );
        Ok(())
    }

    /// The active security module's name.
    pub fn lsm_name(&self) -> &'static str {
        self.lsm.name()
    }

    /// Borrows the active security module (hooks are `&self`).
    pub fn lsm(&self) -> &dyn SecurityModule {
        self.lsm.as_ref()
    }

    /// Mutably borrows the security module (configuration writes only).
    pub fn lsm_mut(&mut self) -> &mut dyn SecurityModule {
        self.lsm.as_mut()
    }

    /// A self-contained copy of the kernel's metrics with the live cache
    /// counters (VFS dcache + the security module's policy caches)
    /// folded in — the same view `/proc/<lsm>/metrics` renders, but as a
    /// plain value that can cross threads and be [`Metrics::merge`]d
    /// into a fleet-wide aggregate.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.metrics.clone();
        m.record_cache("dcache", self.vfs.dcache_stats());
        for (name, stats) in self.lsm().cache_stats() {
            m.record_cache(name, stats);
        }
        m
    }

    /// Registers the trusted authentication agent.
    pub fn register_auth(&mut self, auth: Box<dyn AuthProvider>) {
        self.auth = Some(auth);
    }

    /// Subscribes an audit sink; it observes every event emitted from now
    /// on, independent of the `trace` flag and of ring eviction.
    pub fn subscribe_sink(&mut self, sink: Box<dyn AuditSink>) {
        self.sinks.push(sink);
    }

    /// Emits one typed audit event: snapshots the subject's credentials,
    /// assigns a sequence number, folds the event into [`Metrics`],
    /// notifies subscribed sinks, and stores it in the ring.
    ///
    /// Recording policy: `Deny` events are security-relevant and always
    /// stored; every other kind is stored only when `trace` is on.
    /// Metrics and sinks see all events unconditionally.
    pub fn emit_event(
        &mut self,
        pid: u32,
        syscall: &'static str,
        object: AuditObject,
        provenance: Provenance,
        message: String,
    ) {
        let _span = crate::trace::span(crate::trace::Pathway::AuditEmit);
        let (ruid, euid) = self
            .tasks
            .get(&pid)
            .map(|t| (t.cred.ruid.0, t.cred.euid.0))
            .unwrap_or((0, 0));
        let ev = AuditEvent {
            seq: self.audit.assign_seq(),
            clock: self.clock,
            pid,
            ruid,
            euid,
            syscall,
            object,
            provenance,
            message,
        };
        self.metrics.record(&ev);
        for sink in &mut self.sinks {
            sink.on_event(&ev);
        }
        if ev.is_denial() || self.trace {
            self.audit.push(ev);
        }
    }

    /// Emits an event attributed to the active LSM, draining the rule it
    /// recorded for its most recent decision. Call immediately after the
    /// hook whose outcome is being reported.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_lsm_event(
        &mut self,
        pid: Pid,
        syscall: &'static str,
        hook: Hook,
        decision: DecisionKind,
        errno: Option<Errno>,
        object: AuditObject,
        message: String,
    ) {
        let module = self.lsm.name();
        let rule = self.lsm.take_matched_rule();
        self.emit_event(
            pid.0,
            syscall,
            object,
            Provenance::lsm(module, hook, rule, decision, errno),
            message,
        );
    }

    /// Emits an event attributed to stock kernel policy (no module rule).
    #[allow(clippy::too_many_arguments)]
    pub fn emit_kernel_event(
        &mut self,
        pid: Pid,
        syscall: &'static str,
        hook: Hook,
        decision: DecisionKind,
        errno: Option<Errno>,
        object: AuditObject,
        message: String,
    ) {
        // The stock path never involves a module rule; discard any stale
        // one so it cannot leak into a later LSM-attributed event.
        let _ = self.lsm.take_matched_rule();
        self.emit_event(
            pid.0,
            syscall,
            object,
            Provenance::kernel(hook, decision, errno),
            message,
        );
    }

    /// Advances the logical clock.
    pub fn advance_clock(&mut self, secs: u64) {
        self.clock += secs;
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /// Creates the first task (root's init/login shell).
    pub fn spawn_init(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let root = self.vfs.root();
        let mut t = Task::new(pid, Pid(0), Credentials::root(), root, "/sbin/init");
        t.setenv("PATH", "/usr/sbin:/usr/bin:/sbin:/bin");
        self.tasks.insert(pid.0, t);
        pid
    }

    /// Creates a task directly with the given credentials — used by image
    /// builders to set up login sessions without simulating getty.
    pub fn spawn_session(&mut self, cred: Credentials, binary: &str) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let root = self.vfs.root();
        let mut t = Task::new(pid, Pid(1), cred, root, binary);
        t.setenv("PATH", "/usr/sbin:/usr/bin:/sbin:/bin");
        self.tasks.insert(pid.0, t);
        pid
    }

    /// Immutable task lookup.
    pub fn task(&self, pid: Pid) -> KResult<&Task> {
        self.tasks.get(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Mutable task lookup.
    pub fn task_mut(&mut self, pid: Pid) -> KResult<&mut Task> {
        self.tasks.get_mut(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Allocates the next pid (used by fork).
    pub(crate) fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// Inserts a task (used by fork).
    pub(crate) fn insert_task(&mut self, task: Task) {
        self.tasks.insert(task.pid.0, task);
    }

    /// Removes a task's entry entirely (after wait).
    pub fn reap(&mut self, pid: Pid) -> KResult<Task> {
        self.tasks.remove(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    // ------------------------------------------------------------------
    // Privilege
    // ------------------------------------------------------------------

    /// The kernel-wide `capable()` check: the credential must hold the
    /// capability *and* the LSM must not veto it. (LSMs restrict
    /// capabilities here; they grant access through the object-specific
    /// hooks instead, which is the paper's design point.)
    pub fn capable(&mut self, pid: Pid, cap: Cap) -> bool {
        // Borrow the task in place: the hook takes references, so the
        // common grant/fall-through path performs no clones.
        let (decision, has, euid) = match self.task(pid) {
            Ok(t) => (
                self.lsm.capable(&t.cred, &t.binary, cap),
                t.cred.has_cap(cap),
                t.cred.euid,
            ),
            Err(_) => return false,
        };
        match decision {
            Decision::UseDefault => has,
            Decision::Allow => true,
            Decision::Deny(e) => {
                let binary = self.task(pid).map(|t| t.binary.clone()).unwrap_or_default();
                let msg = format!(
                    "capable: lsm denied {} for {} ({})",
                    cap.name(),
                    euid,
                    binary
                );
                self.emit_lsm_event(
                    pid,
                    "capable",
                    Hook::Capable,
                    DecisionKind::Deny,
                    Some(e),
                    AuditObject::Capability(cap.name()),
                    msg,
                );
                false
            }
        }
    }

    /// Runs the trusted authentication agent for `scope` on behalf of
    /// `pid`. On success the kernel records the authentication time in the
    /// task (the paper's `task_struct` recency field).
    pub fn run_auth(&mut self, pid: Pid, scope: AuthScope) -> bool {
        let mut agent = match self.auth.take() {
            Some(a) => a,
            None => return false,
        };
        let mut input = match self.task_mut(pid) {
            Ok(t) => std::mem::take(&mut t.terminal_input),
            Err(_) => {
                self.auth = Some(agent);
                return false;
            }
        };
        let ok = agent.authenticate(scope, &mut input, &self.vfs);
        let now = self.clock;
        let mut parent = None;
        let mut reprompt_gap = None;
        if let Ok(t) = self.task_mut(pid) {
            t.terminal_input = input;
            if ok {
                reprompt_gap = t.last_auth.map(|prev| now.saturating_sub(prev));
                t.last_auth = Some(now);
                t.last_auth_scope = Some(scope);
                parent = Some(t.ppid);
            }
        }
        // Logical-clock interval between successful prompts for the same
        // task: the usability metric the recency-window ablation sweeps.
        if let Some(gap) = reprompt_gap {
            self.metrics.observe_latency("auth_reprompt_gap", gap);
        }
        // Recency is a property of the login session, not just the one
        // process that prompted (sudo's classic per-terminal ticket): the
        // proof propagates to the parent, so subsequent commands forked
        // from the same shell inherit it within the window.
        if let Some(ppid) = parent {
            if let Ok(pt) = self.task_mut(ppid) {
                pt.last_auth = Some(now);
                pt.last_auth_scope = Some(scope);
            }
        }
        self.auth = Some(agent);
        let msg = format!(
            "auth: {:?} for pid {} -> {}",
            scope,
            pid.0,
            if ok { "success" } else { "failure" }
        );
        let (kind, errno) = if ok {
            (DecisionKind::Info, None)
        } else {
            (DecisionKind::Deny, Some(Errno::EACCES))
        };
        self.emit_kernel_event(pid, "auth", Hook::Auth, kind, errno, AuditObject::None, msg);
        ok
    }

    /// Marks a task as authenticated "out of band" — used by the trusted
    /// login path at session creation, which has just verified the user's
    /// password itself.
    pub fn mark_authenticated(&mut self, pid: Pid) -> KResult<()> {
        let now = self.clock;
        let t = self.task_mut(pid)?;
        let who = t.cred.ruid;
        t.last_auth = Some(now);
        t.last_auth_scope = Some(AuthScope::User(who));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Devices and media
    // ------------------------------------------------------------------

    /// Registers the standard device complement used by the study:
    /// CD-ROM, USB flash, a dm-crypt mapping, a modem line, the video
    /// adapter, and `/dev/null`; creates the matching `/dev` nodes and the
    /// base `/proc` files.
    pub fn install_standard_devices(&mut self) -> KResult<()> {
        use crate::cred::Gid;
        self.vfs.mkdir_p("/dev/mapper")?;
        self.vfs.mkdir_p("/proc")?;
        self.vfs.mkdir_p("/sys/block")?;

        let null = self.devices.register("/dev/null", DeviceKind::Null);
        self.install_dev_node("/dev/null", null, Mode(0o666), false)?;

        let cdrom = self.devices.register(
            "/dev/cdrom",
            DeviceKind::Block(BlockState {
                fstype: "iso9660".into(),
                media_present: true,
                ejected: false,
            }),
        );
        self.install_dev_node("/dev/cdrom", cdrom, Mode(0o660), true)?;

        let usb = self.devices.register(
            "/dev/sdb1",
            DeviceKind::Block(BlockState {
                fstype: "vfat".into(),
                media_present: true,
                ejected: false,
            }),
        );
        self.install_dev_node("/dev/sdb1", usb, Mode(0o660), true)?;

        let dm = self.devices.register(
            "/dev/mapper/cryptohome",
            DeviceKind::DmCrypt(DmCryptState {
                name: "cryptohome".into(),
                physical_device: "/dev/sda3".into(),
                key_material: vec![0x13, 0x37, 0xc0, 0xde],
                cipher: "aes-cbc-essiv:sha256".into(),
            }),
        );
        self.install_dev_node("/dev/mapper/cryptohome", dm, Mode(0o660), true)?;
        // The Protego /sys interface: physical-device topology without key
        // material (4-line change to dmcrypt-get-device in the paper).
        self.vfs.install_hook(
            "/sys/block/dm-0/protego_device",
            ProcHook::SysAttr("dm/cryptohome/device".into()),
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;

        let modem = self
            .devices
            .register("/dev/ttyS0", DeviceKind::Modem(ModemState::default()));
        // Paper §4.1.2: Protego relaxes /dev/ppp permissions, replacing a
        // capability check with device-file permissions. We install the
        // node 0666; the *baseline* ioctl path still demands CAP_NET_ADMIN.
        self.install_dev_node("/dev/ttyS0", modem, Mode(0o666), false)?;
        let ppp = self
            .devices
            .register("/dev/ppp", DeviceKind::Modem(ModemState::default()));
        self.install_dev_node("/dev/ppp", ppp, Mode(0o666), false)?;

        let video = self
            .devices
            .register("/dev/dri/card0", DeviceKind::Video(KmsState::default()));
        self.install_dev_node("/dev/dri/card0", video, Mode(0o666), false)?;

        self.vfs.install_hook(
            "/proc/mounts",
            ProcHook::Mounts,
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        self.vfs.install_hook(
            "/proc/uptime",
            ProcHook::Uptime,
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        // Per-pathway latency histograms from the span-timing subsystem;
        // root-only like the LSM metrics nodes.
        self.vfs.mkdir_p("/proc/kernel")?;
        self.vfs.install_hook(
            "/proc/kernel/histograms",
            ProcHook::Histograms,
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        Ok(())
    }

    fn install_dev_node(&mut self, path: &str, dev: DevId, mode: Mode, block: bool) -> KResult<()> {
        use crate::cred::Gid;
        let (dir_path, name) = path
            .rfind('/')
            .map(|i| (&path[..i.max(1)], &path[i + 1..]))
            .ok_or(Errno::EINVAL)?;
        let dir = self.vfs.mkdir_p(dir_path)?;
        let data = if block {
            InodeData::BlockDev(dev)
        } else {
            InodeData::CharDev(dev)
        };
        let ino = self.vfs.alloc(dir, mode, Uid::ROOT, Gid::ROOT, data);
        self.vfs.dir_add(dir, name, ino)?;
        Ok(())
    }

    /// Returns (creating on first use) the root directory of the media in
    /// block device `dev`, with small sample contents.
    pub fn media_root(&mut self, dev: DevId) -> KResult<Ino> {
        use crate::cred::Gid;
        if let Some(&ino) = self.media_roots.get(&dev) {
            return Ok(ino);
        }
        let root = self.vfs.root();
        let ino = self.vfs.alloc(
            root,
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(Default::default()),
        );
        let f = self
            .vfs
            .create_file(ino, "README", Mode(0o444), Uid::ROOT, Gid::ROOT, true)?;
        self.vfs.write_all(f, b"simulated removable media\n")?;
        self.media_roots.insert(dev, ino);
        Ok(ino)
    }

    /// Renders a `/sys` attribute (device-backed read-only nodes).
    pub fn sys_attr_read(&self, attr: &str) -> KResult<String> {
        let mut parts = attr.split('/');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("dm"), Some(name), Some("device")) => {
                for d in self.devices.iter() {
                    if let DeviceKind::DmCrypt(dm) = &d.kind {
                        if dm.name == name {
                            // Discloses topology only — never key material.
                            return Ok(format!("{}\n", dm.physical_device));
                        }
                    }
                }
                Err(Errno::ENOENT)
            }
            _ => Err(Errno::ENOENT),
        }
    }

    /// The auth-recency window in logical seconds.
    pub fn auth_window(&self) -> u64 {
        AUTH_WINDOW_SECS
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("lsm", &self.lsm.name())
            .field("tasks", &self.tasks.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Gid;

    #[test]
    fn boot_and_spawn() {
        let mut k = Kernel::new(SimNet::new());
        let init = k.spawn_init();
        assert_eq!(init, Pid(1));
        assert!(k.task(init).unwrap().cred.is_root());
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert_eq!(user, Pid(2));
        assert_eq!(k.task_count(), 2);
        assert_eq!(k.task(Pid(99)).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn capable_without_lsm_is_credential_based() {
        let mut k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(k.capable(root, Cap::SysAdmin));
        assert!(!k.capable(user, Cap::SysAdmin));
    }

    #[test]
    fn standard_devices_install() {
        let mut k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        assert!(k.devices.find_by_path("/dev/cdrom").is_some());
        assert!(k.vfs.resolve(k.vfs.root(), "/dev/cdrom").is_ok());
        assert!(k.vfs.resolve(k.vfs.root(), "/proc/mounts").is_ok());
        assert!(k
            .vfs
            .resolve(k.vfs.root(), "/sys/block/dm-0/protego_device")
            .is_ok());
    }

    #[test]
    fn sys_attr_discloses_topology_not_keys() {
        let mut k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        let s = k.sys_attr_read("dm/cryptohome/device").unwrap();
        assert_eq!(s, "/dev/sda3\n");
        assert!(!s.contains("1337"));
        assert_eq!(
            k.sys_attr_read("dm/nope/device").unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(k.sys_attr_read("bogus").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn media_root_is_cached() {
        let mut k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        let dev = k.devices.id_by_path("/dev/cdrom").unwrap();
        let a = k.media_root(dev).unwrap();
        let b = k.media_root(dev).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mark_authenticated_sets_recency() {
        let mut k = Kernel::new(SimNet::new());
        let pid = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(!k.task(pid).unwrap().recently_authenticated(k.clock, 300));
        k.mark_authenticated(pid).unwrap();
        assert!(k.task(pid).unwrap().recently_authenticated(k.clock, 300));
        k.advance_clock(301);
        assert!(!k.task(pid).unwrap().recently_authenticated(k.clock, 300));
    }

    #[test]
    fn run_auth_without_agent_fails() {
        let mut k = Kernel::new(SimNet::new());
        let pid = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(!k.run_auth(pid, AuthScope::User(Uid(1000))));
    }

    #[test]
    fn audit_respects_trace_flag_for_informational_events() {
        let mut k = Kernel::new(SimNet::new());
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "ignored".into(),
        );
        assert!(k.audit.is_empty());
        k.trace = true;
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "recorded".into(),
        );
        assert_eq!(k.audit.len(), 1);
        // Metrics saw both events even though only one was stored.
        assert_eq!(k.metrics.events, 2);
        // Sequence numbers reveal the gated event.
        assert_eq!(k.audit.next_seq(), 2);
        assert_eq!(k.audit.last().unwrap().seq, 1);
    }

    #[test]
    fn denials_are_recorded_even_with_trace_off() {
        // Regression: the legacy string log dropped *everything* when
        // `trace` was off, including security denials.
        let mut k = Kernel::new(SimNet::new());
        assert!(!k.trace);
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)),
            "denied".into(),
        );
        assert_eq!(k.audit.len(), 1);
        assert!(k.audit.last().unwrap().is_denial());
        assert_eq!(k.metrics.hook(crate::trace::Hook::SbMount).deny, 1);
    }

    #[test]
    fn syscall_denial_lands_in_ring_without_trace() {
        // End-to-end variant: an unprivileged mount attempt under stock
        // policy must leave a Deny event with provenance, trace off.
        let mut k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        k.spawn_init();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert_eq!(
            k.sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
            Err(Errno::EPERM)
        );
        let ev = k
            .audit
            .iter()
            .find(|e| e.is_denial() && e.provenance.hook == Hook::SbMount)
            .expect("mount denial recorded with trace off");
        assert_eq!(ev.pid, user.0);
        assert_eq!(ev.euid, 1000);
        assert_eq!(ev.provenance.errno, Some(Errno::EPERM));
    }

    #[test]
    fn sinks_observe_all_events() {
        use crate::trace::CollectingSink;
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut k = Kernel::new(SimNet::new());
        let feed = Rc::new(RefCell::new(CollectingSink::default()));
        k.subscribe_sink(Box::new(feed.clone()));
        // Informational event with trace off: ring skips it, sink sees it.
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "info".into(),
        );
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)),
            "denied".into(),
        );
        assert!(k.audit.len() == 1);
        assert_eq!(feed.borrow().events.len(), 2);
        assert!(feed.borrow().events[1].is_denial());
    }
}
