//! The kernel: global state, LSM and authentication plumbing, logical
//! clock, and audit tracing. The system-call surface is implemented in the
//! [`crate::syscall`] modules as further `impl Kernel` blocks.
//!
//! Every entry point takes `&self`: the kernel is designed to be wrapped
//! in an [`SharedKernel`] handle and dispatched into from many worker
//! threads at once. Mutable state lives behind fine-grained interior
//! locks — the sharded VFS namespace, a sharded task table, [`Locked`]
//! wrappers around the peripheral subsystems, atomics for the clock and
//! pid counter, and per-worker shards for metrics and audit staging. See
//! `DESIGN.md` §13 for the lock hierarchy.

use crate::caps::Cap;
use crate::cred::{Credentials, Uid};
use crate::dev::{
    BlockState, DevId, DeviceKind, DeviceRegistry, DmCryptState, KmsState, ModemState,
};
use crate::error::{Errno, KResult};
use crate::lsm::{AuthProvider, AuthScope, Decision, SecurityModule};
use crate::net::{NetStack, Netfilter, RouteTable, SimNet};
use crate::sync::{lock, read, write, Locked};
use crate::task::{Pid, PipeId, Task, TaskIdentity};
use crate::trace::DecisionKind;
use crate::trace::{
    AuditEvent, AuditObject, AuditSink, Hook, Metrics, Provenance, ShardedMetrics, SharedAuditRing,
};
use crate::vfs::{Ino, InodeData, Mode, ProcHook, Vfs};
use std::collections::{BTreeMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A pipe buffer.
#[derive(Debug, Default, Clone)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Live read ends.
    pub readers: u32,
    /// Live write ends.
    pub writers: u32,
}

/// The pipe arena: a slot vector with a free list, so open/close cycles
/// reuse slots instead of growing the kernel forever (the original
/// `Vec<Pipe>` leaked one slot per `pipe(2)` call).
///
/// A slot is freed when its last read *and* write end are released; the
/// [`PipeId`] is then eligible for reuse by a later `pipe(2)`.
#[derive(Debug, Default)]
pub struct PipeArena {
    inner: Mutex<PipeSlots>,
}

#[derive(Debug, Default)]
struct PipeSlots {
    slots: Vec<Option<Pipe>>,
    free: Vec<usize>,
}

impl PipeArena {
    /// Allocates a fresh pipe (one reader, one writer), reusing a freed
    /// slot when available.
    pub fn alloc(&self) -> PipeId {
        let mut inner = lock(&self.inner);
        let pipe = Pipe {
            buf: VecDeque::new(),
            readers: 1,
            writers: 1,
        };
        match inner.free.pop() {
            Some(i) => {
                inner.slots[i] = Some(pipe);
                PipeId(i)
            }
            None => {
                inner.slots.push(Some(pipe));
                PipeId(inner.slots.len() - 1)
            }
        }
    }

    /// Runs `f` over the live pipe in slot `id`; `EBADF` if the slot is
    /// dead or out of range.
    pub fn with<R>(&self, id: PipeId, f: impl FnOnce(&mut Pipe) -> KResult<R>) -> KResult<R> {
        let mut inner = lock(&self.inner);
        let p = inner
            .slots
            .get_mut(id.0)
            .and_then(|s| s.as_mut())
            .ok_or(Errno::EBADF)?;
        f(p)
    }

    /// Duplicates a read end (fork / dup).
    pub fn dup_read(&self, id: PipeId) {
        let _ = self.with(id, |p| {
            p.readers += 1;
            Ok(())
        });
    }

    /// Duplicates a write end (fork / dup).
    pub fn dup_write(&self, id: PipeId) {
        let _ = self.with(id, |p| {
            p.writers += 1;
            Ok(())
        });
    }

    /// Releases a read end; frees the slot when no ends remain.
    pub fn release_read(&self, id: PipeId) {
        self.release(id, true);
    }

    /// Releases a write end; frees the slot when no ends remain.
    pub fn release_write(&self, id: PipeId) {
        self.release(id, false);
    }

    fn release(&self, id: PipeId, reader: bool) {
        let mut inner = lock(&self.inner);
        let Some(slot) = inner.slots.get_mut(id.0) else {
            return;
        };
        let Some(p) = slot.as_mut() else { return };
        if reader {
            p.readers = p.readers.saturating_sub(1);
        } else {
            p.writers = p.writers.saturating_sub(1);
        }
        if p.readers == 0 && p.writers == 0 {
            *slot = None;
            inner.free.push(id.0);
        }
    }

    /// Number of live (referenced) pipes.
    pub fn live_count(&self) -> usize {
        lock(&self.inner).slots.iter().flatten().count()
    }

    /// Total slots ever allocated, live or free — the arena's footprint.
    pub fn capacity(&self) -> usize {
        lock(&self.inner).slots.len()
    }
}

/// The authentication recency window, in logical seconds (sudo's classic
/// 5 minutes, enforced by the Protego kernel per §4.3).
pub const AUTH_WINDOW_SECS: u64 = 300;

/// Number of task-table shards; pids map to shards round-robin, so a
/// fork storm on one worker does not serialize lookups on another.
const TSHARDS: usize = 64;

fn tshard(pid: u32) -> usize {
    (pid as usize) % TSHARDS
}

type TaskMap = BTreeMap<u32, Task>;

/// A shared borrow of one task, holding its shard's read lock.
///
/// Dereferences to [`Task`]. Keep the scope tight: drop it before calling
/// any kernel method that emits audit events or re-enters the task table
/// (same-shard relock on `std`'s writer-preferring `RwLock` can deadlock).
pub struct TaskRef<'a> {
    guard: RwLockReadGuard<'a, TaskMap>,
    pid: u32,
}

impl Deref for TaskRef<'_> {
    type Target = Task;
    fn deref(&self) -> &Task {
        // Existence was checked at construction and the read guard pins
        // the map, so the entry cannot have vanished.
        self.guard
            .get(&self.pid)
            .expect("task vanished under guard")
    }
}

impl std::fmt::Debug for TaskRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// An exclusive borrow of one task, holding its shard's write lock.
///
/// Dereferences to [`Task`]; same scoping discipline as [`TaskRef`].
pub struct TaskMut<'a> {
    guard: RwLockWriteGuard<'a, TaskMap>,
    pid: u32,
}

impl Deref for TaskMut<'_> {
    type Target = Task;
    fn deref(&self) -> &Task {
        self.guard
            .get(&self.pid)
            .expect("task vanished under guard")
    }
}

impl std::fmt::Debug for TaskMut<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl DerefMut for TaskMut<'_> {
    fn deref_mut(&mut self) -> &mut Task {
        self.guard
            .get_mut(&self.pid)
            .expect("task vanished under guard")
    }
}

/// A shared borrow of the active security module (read guard wrapper).
pub struct LsmRef<'a>(RwLockReadGuard<'a, Box<dyn SecurityModule>>);

impl Deref for LsmRef<'_> {
    type Target = dyn SecurityModule;
    fn deref(&self) -> &(dyn SecurityModule + 'static) {
        self.0.as_ref()
    }
}

/// An exclusive borrow of the active security module (write guard
/// wrapper) — configuration writes only.
pub struct LsmMut<'a>(RwLockWriteGuard<'a, Box<dyn SecurityModule>>);

impl Deref for LsmMut<'_> {
    type Target = dyn SecurityModule;
    fn deref(&self) -> &(dyn SecurityModule + 'static) {
        self.0.as_ref()
    }
}

impl DerefMut for LsmMut<'_> {
    fn deref_mut(&mut self) -> &mut (dyn SecurityModule + 'static) {
        self.0.as_mut()
    }
}

/// The simulated kernel.
pub struct Kernel {
    /// The virtual filesystem (internally sharded; all methods `&self`).
    pub vfs: Vfs,
    /// Socket arena and port table.
    pub net: Locked<NetStack>,
    /// OUTPUT-chain packet filter.
    pub netfilter: Locked<Netfilter>,
    /// Routing table.
    pub routes: Locked<RouteTable>,
    /// The world beyond this machine. Local IPs are fixed at topology
    /// build; the host table is interior-locked so hosts can be added
    /// after the kernel is shared, and the delivery path is `&self`.
    pub simnet: SimNet,
    /// Device registry.
    pub devices: Locked<DeviceRegistry>,
    /// Pipe arena with free-list slot reuse.
    pub pipes: PipeArena,
    /// Bounded audit trail of typed policy events, with per-worker write
    /// staging. Denials are always recorded; informational events
    /// require `trace`.
    pub audit: SharedAuditRing,
    /// Kernel-wide decision counters and latency aggregates (always on),
    /// accumulated per worker and merged on snapshot.
    pub metrics: ShardedMetrics,
    /// Whether unprivileged user-namespace creation is allowed — the
    /// Linux >= 3.8 behaviour (§4.6); the paper's 3.6 baseline is false.
    /// Set only at image-build time, before the kernel is shared.
    pub unprivileged_userns: bool,
    /// Logical clock in seconds.
    clock: AtomicU64,
    /// Whether to record non-denial (informational) audit events.
    trace: AtomicBool,
    tasks: Vec<RwLock<TaskMap>>,
    next_pid: AtomicU32,
    lsm: RwLock<Box<dyn SecurityModule>>,
    auth: Mutex<Option<Box<dyn AuthProvider>>>,
    media_roots: Mutex<BTreeMap<DevId, Ino>>,
    sinks: Mutex<Vec<Box<dyn AuditSink>>>,
    pub(crate) interceptors: Locked<InterceptorChain>,
    /// Per-binary syscall-allowlist state (profiles, mode, violations),
    /// shared with any [`crate::seccomp::SeccompInterceptor`] on the
    /// dispatch chain and surfaced under `/proc/seccomp/`.
    pub seccomp: crate::seccomp::Seccomp,
}

/// A stable handle onto one registered interceptor, returned by
/// [`Kernel::register_interceptor`]. The handle stays valid across
/// enable/disable/replace; it dies only with [`Kernel::remove_interceptor`]
/// or [`Kernel::clear_interceptors`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InterceptorSlot(u64);

struct ChainEntry {
    id: u64,
    enabled: bool,
    ic: Arc<dyn crate::syscall::Interceptor>,
}

/// The registered dispatch chain: entries keep their registration order
/// (which fixes `before`/`after` hook ordering) while individual slots
/// can be flipped off or swapped in place without rebuilding the chain —
/// disabling a slot keeps its position, so re-enabling restores exactly
/// the old ordering.
#[derive(Default)]
pub(crate) struct InterceptorChain {
    entries: Vec<ChainEntry>,
    next_id: u64,
}

impl InterceptorChain {
    fn register(&mut self, ic: Arc<dyn crate::syscall::Interceptor>) -> InterceptorSlot {
        self.next_id += 1;
        let id = self.next_id;
        self.entries.push(ChainEntry {
            id,
            enabled: true,
            ic,
        });
        InterceptorSlot(id)
    }

    fn entry_mut(&mut self, slot: InterceptorSlot) -> Option<&mut ChainEntry> {
        self.entries.iter_mut().find(|e| e.id == slot.0)
    }

    /// Enabled interceptors in registration order (what dispatch runs).
    pub(crate) fn enabled(&self) -> impl Iterator<Item = &Arc<dyn crate::syscall::Interceptor>> {
        self.entries.iter().filter(|e| e.enabled).map(|e| &e.ic)
    }

    /// How many interceptors are currently enabled.
    pub(crate) fn enabled_len(&self) -> usize {
        self.entries.iter().filter(|e| e.enabled).count()
    }
}

/// A cloneable, thread-shareable handle onto one kernel.
///
/// This is the "one kernel, many workers" entry point: clone the handle
/// into each worker thread and call [`Kernel::dispatch`] through it.
/// Derefs to [`Kernel`], so every kernel method is available directly.
#[derive(Clone)]
pub struct SharedKernel(Arc<Kernel>);

impl SharedKernel {
    /// Wraps a fully built kernel for sharing.
    pub fn new(kernel: Kernel) -> SharedKernel {
        SharedKernel(Arc::new(kernel))
    }

    /// The underlying reference-counted kernel.
    pub fn inner(&self) -> &Arc<Kernel> {
        &self.0
    }
}

impl From<Kernel> for SharedKernel {
    fn from(kernel: Kernel) -> SharedKernel {
        SharedKernel::new(kernel)
    }
}

impl Deref for SharedKernel {
    type Target = Kernel;
    fn deref(&self) -> &Kernel {
        &self.0
    }
}

impl std::fmt::Debug for SharedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedKernel({:?})", self.0)
    }
}

impl Kernel {
    /// Boots a kernel with the null LSM and an empty filesystem.
    pub fn new(simnet: SimNet) -> Kernel {
        Kernel {
            vfs: Vfs::new(),
            net: Locked::new(NetStack::new()),
            netfilter: Locked::new(Netfilter::new()),
            routes: Locked::new(RouteTable::new()),
            simnet,
            devices: Locked::new(DeviceRegistry::new()),
            pipes: PipeArena::default(),
            clock: AtomicU64::new(1_000_000),
            audit: SharedAuditRing::default(),
            metrics: ShardedMetrics::new(),
            trace: AtomicBool::new(false),
            unprivileged_userns: false,
            tasks: (0..TSHARDS).map(|_| RwLock::new(TaskMap::new())).collect(),
            next_pid: AtomicU32::new(1),
            lsm: RwLock::new(Box::new(crate::lsm::NullLsm)),
            auth: Mutex::new(None),
            media_roots: Mutex::new(BTreeMap::new()),
            sinks: Mutex::new(Vec::new()),
            interceptors: Locked::new(InterceptorChain::default()),
            seccomp: crate::seccomp::Seccomp::new(),
        }
    }

    /// The logical clock, in seconds.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the logical clock.
    pub fn advance_clock(&self, secs: u64) {
        self.clock.fetch_add(secs, Ordering::SeqCst);
    }

    /// Whether informational audit events are being recorded.
    pub fn trace(&self) -> bool {
        self.trace.load(Ordering::Relaxed)
    }

    /// Enables or disables recording of informational audit events.
    pub fn set_trace(&self, on: bool) {
        self.trace.store(on, Ordering::Relaxed);
    }

    /// Registers an interceptor on the dispatch chain and returns its
    /// [`InterceptorSlot`] handle. `before` hooks run in registration
    /// order, `after` hooks in reverse (see [`Kernel::dispatch`]); the
    /// slot can later be disabled, re-enabled, or have its interceptor
    /// replaced in place — the chain is never rebuilt, so relative
    /// ordering of the other interceptors is undisturbed.
    pub fn register_interceptor(
        &self,
        ic: Box<dyn crate::syscall::Interceptor>,
    ) -> InterceptorSlot {
        self.interceptors.write().register(Arc::from(ic))
    }

    /// Registers an interceptor, discarding the slot handle — for chains
    /// that are only ever torn down wholesale via
    /// [`Kernel::clear_interceptors`].
    pub fn push_interceptor(&self, ic: Box<dyn crate::syscall::Interceptor>) {
        let _ = self.register_interceptor(ic);
    }

    /// Enables or disables the interceptor in `slot` without removing it
    /// (a disabled slot keeps its chain position). Returns `false` if the
    /// slot no longer exists.
    pub fn set_interceptor_enabled(&self, slot: InterceptorSlot, enabled: bool) -> bool {
        match self.interceptors.write().entry_mut(slot) {
            Some(e) => {
                e.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Replaces the interceptor in `slot`, keeping its chain position and
    /// enabled state. Returns `false` if the slot no longer exists (the
    /// new interceptor is dropped).
    pub fn replace_interceptor(
        &self,
        slot: InterceptorSlot,
        ic: Box<dyn crate::syscall::Interceptor>,
    ) -> bool {
        match self.interceptors.write().entry_mut(slot) {
            Some(e) => {
                e.ic = Arc::from(ic);
                true
            }
            None => false,
        }
    }

    /// Unregisters the interceptor in `slot`. Returns `false` if the slot
    /// no longer exists.
    pub fn remove_interceptor(&self, slot: InterceptorSlot) -> bool {
        let mut guard = self.interceptors.write();
        let before = guard.entries.len();
        guard.entries.retain(|e| e.id != slot.0);
        guard.entries.len() != before
    }

    /// Removes all registered interceptors (every slot handle dies).
    pub fn clear_interceptors(&self) {
        self.interceptors.write().entries.clear();
    }

    /// Snapshots the identity of `pid`'s task — one task-shard read; see
    /// [`TaskIdentity`]. Returns [`TaskIdentity::unknown`] when the pid
    /// has no live task.
    pub fn task_identity(&self, pid: Pid) -> TaskIdentity {
        match self.task(pid) {
            Ok(t) => TaskIdentity::of(&t),
            Err(_) => TaskIdentity::unknown(pid),
        }
    }

    /// Registers the active security module: installs its `/proc/<name>/`
    /// configuration nodes and boot-time netfilter rules.
    pub fn register_lsm(&self, lsm: Box<dyn SecurityModule>) -> KResult<()> {
        {
            let mut nf = self.netfilter.write();
            for rule in lsm.boot_netfilter_rules() {
                nf.append(rule);
            }
        }
        let name = lsm.name();
        for node in lsm.config_nodes() {
            let path = format!("/proc/{}/{}", name, node);
            self.vfs.install_hook(
                &path,
                ProcHook::LsmConfig(node),
                Mode(0o600),
                Uid::ROOT,
                crate::cred::Gid::ROOT,
            )?;
        }
        // Observability nodes: the structured audit ring and the decision
        // counters, readable by root under the module's /proc directory.
        self.vfs.install_hook(
            &format!("/proc/{}/audit", name),
            ProcHook::Audit,
            Mode(0o600),
            Uid::ROOT,
            crate::cred::Gid::ROOT,
        )?;
        self.vfs.install_hook(
            &format!("/proc/{}/metrics", name),
            ProcHook::Metrics,
            Mode(0o600),
            Uid::ROOT,
            crate::cred::Gid::ROOT,
        )?;
        // Every registered module is wrapped so its hooks feed the
        // per-pathway latency histograms (trace::span) uniformly.
        *write(&self.lsm) = Box::new(crate::lsm::TimedLsm::new(lsm));
        self.emit_event(
            0,
            "register_lsm",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            format!("lsm: registered module '{}'", name),
        );
        Ok(())
    }

    /// The active security module's name.
    pub fn lsm_name(&self) -> &'static str {
        read(&self.lsm).name()
    }

    /// Borrows the active security module (hooks are `&self`). The
    /// returned guard holds the LSM read lock; keep its scope tight.
    pub fn lsm(&self) -> LsmRef<'_> {
        LsmRef(read(&self.lsm))
    }

    /// Mutably borrows the security module (configuration writes only).
    pub fn lsm_mut(&self) -> LsmMut<'_> {
        LsmMut(write(&self.lsm))
    }

    /// A self-contained copy of the kernel's metrics with the live cache
    /// counters (VFS dcache, the name interner, and the security
    /// module's policy caches) folded in — the same view `/proc/<lsm>/metrics` renders, but as a
    /// plain value that can cross threads and be [`Metrics::merge`]d
    /// into a fleet-wide aggregate.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.metrics.snapshot();
        m.record_cache("dcache", self.vfs.dcache_stats());
        m.record_cache("intern", crate::vfs::intern::stats());
        for (name, stats) in self.lsm().cache_stats() {
            m.record_cache(name, stats);
        }
        m
    }

    /// Registers the trusted authentication agent.
    pub fn register_auth(&self, auth: Box<dyn AuthProvider>) {
        *lock(&self.auth) = Some(auth);
    }

    /// Subscribes an audit sink; it observes every event emitted from now
    /// on, independent of the `trace` flag and of ring eviction.
    pub fn subscribe_sink(&self, sink: Box<dyn AuditSink>) {
        lock(&self.sinks).push(sink);
    }

    /// Emits one typed audit event: snapshots the subject's credentials,
    /// assigns a sequence number, folds the event into [`Metrics`],
    /// notifies subscribed sinks, and stores it in the ring.
    ///
    /// Recording policy: `Deny` events are security-relevant and always
    /// stored; every other kind is stored only when `trace` is on.
    /// Metrics and sinks see all events unconditionally.
    ///
    /// Callers must not hold a task guard for `pid` across this call —
    /// the credential snapshot re-reads the task table.
    pub fn emit_event(
        &self,
        pid: u32,
        syscall: &'static str,
        object: AuditObject,
        provenance: Provenance,
        message: String,
    ) {
        let _span = crate::trace::span(crate::trace::Pathway::AuditEmit);
        let (ruid, euid) = self
            .task(Pid(pid))
            .map(|t| (t.cred.ruid.0, t.cred.euid.0))
            .unwrap_or((0, 0));
        let ev = AuditEvent {
            seq: self.audit.assign_seq(),
            clock: self.clock(),
            pid,
            ruid,
            euid,
            syscall,
            object,
            provenance,
            message,
        };
        self.metrics.record(&ev);
        for sink in lock(&self.sinks).iter_mut() {
            sink.on_event(&ev);
        }
        if ev.is_denial() || self.trace() {
            self.audit.push(ev);
        }
    }

    /// Emits an event attributed to the active LSM, draining the rule it
    /// recorded for its most recent decision. Call immediately after the
    /// hook whose outcome is being reported.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_lsm_event(
        &self,
        pid: Pid,
        syscall: &'static str,
        hook: Hook,
        decision: DecisionKind,
        errno: Option<Errno>,
        object: AuditObject,
        message: String,
    ) {
        let (module, rule) = {
            let lsm = self.lsm();
            (lsm.name(), lsm.take_matched_rule())
        };
        self.emit_event(
            pid.0,
            syscall,
            object,
            Provenance::lsm(module, hook, rule, decision, errno),
            message,
        );
    }

    /// Emits an event attributed to stock kernel policy (no module rule).
    #[allow(clippy::too_many_arguments)]
    pub fn emit_kernel_event(
        &self,
        pid: Pid,
        syscall: &'static str,
        hook: Hook,
        decision: DecisionKind,
        errno: Option<Errno>,
        object: AuditObject,
        message: String,
    ) {
        // The stock path never involves a module rule; discard any stale
        // one so it cannot leak into a later LSM-attributed event.
        let _ = self.lsm().take_matched_rule();
        self.emit_event(
            pid.0,
            syscall,
            object,
            Provenance::kernel(hook, decision, errno),
            message,
        );
    }

    // ------------------------------------------------------------------
    // Tasks
    // ------------------------------------------------------------------

    /// Creates the first task (root's init/login shell).
    pub fn spawn_init(&self) -> Pid {
        let pid = self.alloc_pid();
        let root = self.vfs.root();
        let mut t = Task::new(pid, Pid(0), Credentials::root(), root, "/sbin/init");
        t.setenv("PATH", "/usr/sbin:/usr/bin:/sbin:/bin");
        self.insert_task(t);
        pid
    }

    /// Creates a task directly with the given credentials — used by image
    /// builders to set up login sessions without simulating getty.
    pub fn spawn_session(&self, cred: Credentials, binary: &str) -> Pid {
        let pid = self.alloc_pid();
        let root = self.vfs.root();
        let mut t = Task::new(pid, Pid(1), cred, root, binary);
        t.setenv("PATH", "/usr/sbin:/usr/bin:/sbin:/bin");
        self.insert_task(t);
        pid
    }

    /// Immutable task lookup. The returned guard holds the pid's shard
    /// read-locked; keep its scope tight (see [`TaskRef`]).
    pub fn task(&self, pid: Pid) -> KResult<TaskRef<'_>> {
        let guard = read(&self.tasks[tshard(pid.0)]);
        if guard.contains_key(&pid.0) {
            Ok(TaskRef { guard, pid: pid.0 })
        } else {
            Err(Errno::ESRCH)
        }
    }

    /// Mutable task lookup. The returned guard holds the pid's shard
    /// write-locked; keep its scope tight (see [`TaskMut`]).
    pub fn task_mut(&self, pid: Pid) -> KResult<TaskMut<'_>> {
        let guard = write(&self.tasks[tshard(pid.0)]);
        if guard.contains_key(&pid.0) {
            Ok(TaskMut { guard, pid: pid.0 })
        } else {
            Err(Errno::ESRCH)
        }
    }

    /// Allocates the next pid (used by fork).
    pub(crate) fn alloc_pid(&self) -> Pid {
        Pid(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    /// Inserts a task (used by fork). The caller must not hold any task
    /// guard — the new pid may land in an already-locked shard.
    pub(crate) fn insert_task(&self, task: Task) {
        write(&self.tasks[tshard(task.pid.0)]).insert(task.pid.0, task);
    }

    /// Removes a task's entry entirely (after wait), dropping any cached
    /// seccomp profile selection for the pid.
    pub fn reap(&self, pid: Pid) -> KResult<Task> {
        self.seccomp.forget_pid(pid);
        write(&self.tasks[tshard(pid.0)])
            .remove(&pid.0)
            .ok_or(Errno::ESRCH)
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.iter().map(|s| read(s).len()).sum()
    }

    // ------------------------------------------------------------------
    // Privilege
    // ------------------------------------------------------------------

    /// The kernel-wide `capable()` check: the credential must hold the
    /// capability *and* the LSM must not veto it. (LSMs restrict
    /// capabilities here; they grant access through the object-specific
    /// hooks instead, which is the paper's design point.)
    pub fn capable(&self, pid: Pid, cap: Cap) -> bool {
        // Borrow the task in place: the hook takes references, so the
        // common grant/fall-through path performs no clones. Both guards
        // (task shard read, LSM read) drop at the end of the block,
        // before any event is emitted.
        let (decision, has, euid) = {
            let t = match self.task(pid) {
                Ok(t) => t,
                Err(_) => return false,
            };
            (
                self.lsm().capable(&t.cred, &t.binary, cap),
                t.cred.has_cap(cap),
                t.cred.euid,
            )
        };
        match decision {
            Decision::UseDefault => has,
            Decision::Allow => true,
            Decision::Deny(e) => {
                let binary = self.task(pid).map(|t| t.binary.clone()).unwrap_or_default();
                let msg = format!(
                    "capable: lsm denied {} for {} ({})",
                    cap.name(),
                    euid,
                    binary
                );
                self.emit_lsm_event(
                    pid,
                    "capable",
                    Hook::Capable,
                    DecisionKind::Deny,
                    Some(e),
                    AuditObject::Capability(cap.name()),
                    msg,
                );
                false
            }
        }
    }

    /// Runs the trusted authentication agent for `scope` on behalf of
    /// `pid`. On success the kernel records the authentication time in the
    /// task (the paper's `task_struct` recency field).
    ///
    /// The agent mutex is held for the whole exchange, serializing
    /// concurrent authentication attempts (one terminal, one prompt).
    pub fn run_auth(&self, pid: Pid, scope: AuthScope) -> bool {
        let mut slot = lock(&self.auth);
        let Some(agent) = slot.as_mut() else {
            return false;
        };
        let mut input = match self.task_mut(pid) {
            Ok(mut t) => std::mem::take(&mut t.terminal_input),
            Err(_) => return false,
        };
        let ok = agent.authenticate(scope, &mut input, &self.vfs);
        let now = self.clock();
        let mut parent = None;
        let mut reprompt_gap = None;
        if let Ok(mut t) = self.task_mut(pid) {
            t.terminal_input = input;
            if ok {
                reprompt_gap = t.last_auth.map(|prev| now.saturating_sub(prev));
                t.last_auth = Some(now);
                t.last_auth_scope = Some(scope);
                parent = Some(t.ppid);
            }
        }
        // Logical-clock interval between successful prompts for the same
        // task: the usability metric the recency-window ablation sweeps.
        if let Some(gap) = reprompt_gap {
            self.metrics.observe_latency("auth_reprompt_gap", gap);
        }
        // Recency is a property of the login session, not just the one
        // process that prompted (sudo's classic per-terminal ticket): the
        // proof propagates to the parent, so subsequent commands forked
        // from the same shell inherit it within the window.
        if let Some(ppid) = parent {
            if let Ok(mut pt) = self.task_mut(ppid) {
                pt.last_auth = Some(now);
                pt.last_auth_scope = Some(scope);
            }
        }
        drop(slot);
        let msg = format!(
            "auth: {:?} for pid {} -> {}",
            scope,
            pid.0,
            if ok { "success" } else { "failure" }
        );
        let (kind, errno) = if ok {
            (DecisionKind::Info, None)
        } else {
            (DecisionKind::Deny, Some(Errno::EACCES))
        };
        self.emit_kernel_event(pid, "auth", Hook::Auth, kind, errno, AuditObject::None, msg);
        ok
    }

    /// Marks a task as authenticated "out of band" — used by the trusted
    /// login path at session creation, which has just verified the user's
    /// password itself.
    pub fn mark_authenticated(&self, pid: Pid) -> KResult<()> {
        let now = self.clock();
        let mut t = self.task_mut(pid)?;
        let who = t.cred.ruid;
        t.last_auth = Some(now);
        t.last_auth_scope = Some(AuthScope::User(who));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Devices and media
    // ------------------------------------------------------------------

    /// Registers the standard device complement used by the study:
    /// CD-ROM, USB flash, a dm-crypt mapping, a modem line, the video
    /// adapter, and `/dev/null`; creates the matching `/dev` nodes and the
    /// base `/proc` files.
    pub fn install_standard_devices(&self) -> KResult<()> {
        use crate::cred::Gid;
        self.vfs.mkdir_p("/dev/mapper")?;
        self.vfs.mkdir_p("/proc")?;
        self.vfs.mkdir_p("/sys/block")?;

        let null = self.devices.write().register("/dev/null", DeviceKind::Null);
        self.install_dev_node("/dev/null", null, Mode(0o666), false)?;

        let cdrom = self.devices.write().register(
            "/dev/cdrom",
            DeviceKind::Block(BlockState {
                fstype: "iso9660".into(),
                media_present: true,
                ejected: false,
            }),
        );
        self.install_dev_node("/dev/cdrom", cdrom, Mode(0o660), true)?;

        let usb = self.devices.write().register(
            "/dev/sdb1",
            DeviceKind::Block(BlockState {
                fstype: "vfat".into(),
                media_present: true,
                ejected: false,
            }),
        );
        self.install_dev_node("/dev/sdb1", usb, Mode(0o660), true)?;

        let dm = self.devices.write().register(
            "/dev/mapper/cryptohome",
            DeviceKind::DmCrypt(DmCryptState {
                name: "cryptohome".into(),
                physical_device: "/dev/sda3".into(),
                key_material: vec![0x13, 0x37, 0xc0, 0xde],
                cipher: "aes-cbc-essiv:sha256".into(),
            }),
        );
        self.install_dev_node("/dev/mapper/cryptohome", dm, Mode(0o660), true)?;
        // The Protego /sys interface: physical-device topology without key
        // material (4-line change to dmcrypt-get-device in the paper).
        self.vfs.install_hook(
            "/sys/block/dm-0/protego_device",
            ProcHook::SysAttr("dm/cryptohome/device".into()),
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;

        let modem = self
            .devices
            .write()
            .register("/dev/ttyS0", DeviceKind::Modem(ModemState::default()));
        // Paper §4.1.2: Protego relaxes /dev/ppp permissions, replacing a
        // capability check with device-file permissions. We install the
        // node 0666; the *baseline* ioctl path still demands CAP_NET_ADMIN.
        self.install_dev_node("/dev/ttyS0", modem, Mode(0o666), false)?;
        let ppp = self
            .devices
            .write()
            .register("/dev/ppp", DeviceKind::Modem(ModemState::default()));
        self.install_dev_node("/dev/ppp", ppp, Mode(0o666), false)?;

        let video = self
            .devices
            .write()
            .register("/dev/dri/card0", DeviceKind::Video(KmsState::default()));
        self.install_dev_node("/dev/dri/card0", video, Mode(0o666), false)?;

        self.vfs.install_hook(
            "/proc/mounts",
            ProcHook::Mounts,
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        self.vfs.install_hook(
            "/proc/uptime",
            ProcHook::Uptime,
            Mode(0o444),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        // Per-pathway latency histograms from the span-timing subsystem;
        // root-only like the LSM metrics nodes.
        self.vfs.mkdir_p("/proc/kernel")?;
        self.vfs.install_hook(
            "/proc/kernel/histograms",
            ProcHook::Histograms,
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        // The seccomp control plane (§15): profile load/inspect, mode
        // switch, and the violation log. Root-only (0600) like the LSM
        // config nodes — a confined binary must not be able to read or
        // rewrite its own allowlist.
        self.vfs.install_hook(
            "/proc/seccomp/profiles",
            ProcHook::SeccompProfiles,
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        self.vfs.install_hook(
            "/proc/seccomp/status",
            ProcHook::SeccompStatus,
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        self.vfs.install_hook(
            "/proc/seccomp/violations",
            ProcHook::SeccompViolations,
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )?;
        Ok(())
    }

    fn install_dev_node(&self, path: &str, dev: DevId, mode: Mode, block: bool) -> KResult<()> {
        use crate::cred::Gid;
        let (dir_path, name) = path
            .rfind('/')
            .map(|i| (&path[..i.max(1)], &path[i + 1..]))
            .ok_or(Errno::EINVAL)?;
        let dir = self.vfs.mkdir_p(dir_path)?;
        let data = if block {
            InodeData::BlockDev(dev)
        } else {
            InodeData::CharDev(dev)
        };
        let ino = self.vfs.alloc(dir, mode, Uid::ROOT, Gid::ROOT, data);
        self.vfs.dir_add(dir, name, ino)?;
        Ok(())
    }

    /// Returns (creating on first use) the root directory of the media in
    /// block device `dev`, with small sample contents.
    pub fn media_root(&self, dev: DevId) -> KResult<Ino> {
        use crate::cred::Gid;
        // Hold the map lock across creation so concurrent first mounts of
        // the same medium agree on one root (the VFS locks are
        // independent leaves, so nesting them under this mutex is safe).
        let mut roots = lock(&self.media_roots);
        if let Some(&ino) = roots.get(&dev) {
            return Ok(ino);
        }
        let root = self.vfs.root();
        let ino = self.vfs.alloc(
            root,
            Mode(0o755),
            Uid::ROOT,
            Gid::ROOT,
            InodeData::Directory(Default::default()),
        );
        let f = self
            .vfs
            .create_file(ino, "README", Mode(0o444), Uid::ROOT, Gid::ROOT, true)?;
        self.vfs.write_all(f, b"simulated removable media\n")?;
        roots.insert(dev, ino);
        Ok(ino)
    }

    /// Renders a `/sys` attribute (device-backed read-only nodes).
    pub fn sys_attr_read(&self, attr: &str) -> KResult<String> {
        let mut parts = attr.split('/');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("dm"), Some(name), Some("device")) => {
                let devices = self.devices.read();
                for d in devices.iter() {
                    if let DeviceKind::DmCrypt(dm) = &d.kind {
                        if dm.name == name {
                            // Discloses topology only — never key material.
                            return Ok(format!("{}\n", dm.physical_device));
                        }
                    }
                }
                Err(Errno::ENOENT)
            }
            _ => Err(Errno::ENOENT),
        }
    }

    /// The auth-recency window in logical seconds.
    pub fn auth_window(&self) -> u64 {
        AUTH_WINDOW_SECS
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("lsm", &self.lsm_name())
            .field("tasks", &self.task_count())
            .field("clock", &self.clock())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Gid;

    #[test]
    fn boot_and_spawn() {
        let k = Kernel::new(SimNet::new());
        let init = k.spawn_init();
        assert_eq!(init, Pid(1));
        assert!(k.task(init).unwrap().cred.is_root());
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert_eq!(user, Pid(2));
        assert_eq!(k.task_count(), 2);
        assert_eq!(k.task(Pid(99)).unwrap_err(), Errno::ESRCH);
    }

    #[test]
    fn capable_without_lsm_is_credential_based() {
        let k = Kernel::new(SimNet::new());
        let root = k.spawn_init();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(k.capable(root, Cap::SysAdmin));
        assert!(!k.capable(user, Cap::SysAdmin));
    }

    #[test]
    fn standard_devices_install() {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        assert!(k.devices.read().find_by_path("/dev/cdrom").is_some());
        assert!(k.vfs.resolve(k.vfs.root(), "/dev/cdrom").is_ok());
        assert!(k.vfs.resolve(k.vfs.root(), "/proc/mounts").is_ok());
        assert!(k
            .vfs
            .resolve(k.vfs.root(), "/sys/block/dm-0/protego_device")
            .is_ok());
    }

    #[test]
    fn sys_attr_discloses_topology_not_keys() {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        let s = k.sys_attr_read("dm/cryptohome/device").unwrap();
        assert_eq!(s, "/dev/sda3\n");
        assert!(!s.contains("1337"));
        assert_eq!(
            k.sys_attr_read("dm/nope/device").unwrap_err(),
            Errno::ENOENT
        );
        assert_eq!(k.sys_attr_read("bogus").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn media_root_is_cached() {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        let dev = k.devices.read().id_by_path("/dev/cdrom").unwrap();
        let a = k.media_root(dev).unwrap();
        let b = k.media_root(dev).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mark_authenticated_sets_recency() {
        let k = Kernel::new(SimNet::new());
        let pid = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(!k.task(pid).unwrap().recently_authenticated(k.clock(), 300));
        k.mark_authenticated(pid).unwrap();
        assert!(k.task(pid).unwrap().recently_authenticated(k.clock(), 300));
        k.advance_clock(301);
        assert!(!k.task(pid).unwrap().recently_authenticated(k.clock(), 300));
    }

    #[test]
    fn run_auth_without_agent_fails() {
        let k = Kernel::new(SimNet::new());
        let pid = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert!(!k.run_auth(pid, AuthScope::User(Uid(1000))));
    }

    #[test]
    fn audit_respects_trace_flag_for_informational_events() {
        let k = Kernel::new(SimNet::new());
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "ignored".into(),
        );
        assert!(k.audit.is_empty());
        k.set_trace(true);
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "recorded".into(),
        );
        assert_eq!(k.audit.len(), 1);
        // Metrics saw both events even though only one was stored.
        assert_eq!(k.metrics.snapshot().events, 2);
        // Sequence numbers reveal the gated event.
        assert_eq!(k.audit.next_seq(), 2);
        assert_eq!(k.audit.last().unwrap().seq, 1);
    }

    #[test]
    fn denials_are_recorded_even_with_trace_off() {
        // Regression: the legacy string log dropped *everything* when
        // `trace` was off, including security denials.
        let k = Kernel::new(SimNet::new());
        assert!(!k.trace());
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)),
            "denied".into(),
        );
        assert_eq!(k.audit.len(), 1);
        assert!(k.audit.last().unwrap().is_denial());
        assert_eq!(
            k.metrics.snapshot().hook(crate::trace::Hook::SbMount).deny,
            1
        );
    }

    #[test]
    fn syscall_denial_lands_in_ring_without_trace() {
        // End-to-end variant: an unprivileged mount attempt under stock
        // policy must leave a Deny event with provenance, trace off.
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        k.spawn_init();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        assert_eq!(
            k.sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
            Err(Errno::EPERM)
        );
        let ev = k
            .audit
            .events()
            .into_iter()
            .find(|e| e.is_denial() && e.provenance.hook == Hook::SbMount)
            .expect("mount denial recorded with trace off");
        assert_eq!(ev.pid, user.0);
        assert_eq!(ev.euid, 1000);
        assert_eq!(ev.provenance.errno, Some(Errno::EPERM));
    }

    #[test]
    fn sinks_observe_all_events() {
        use crate::trace::CollectingSink;
        let k = Kernel::new(SimNet::new());
        let feed = Arc::new(Mutex::new(CollectingSink::default()));
        k.subscribe_sink(Box::new(feed.clone()));
        // Informational event with trace off: ring skips it, sink sees it.
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::Lifecycle, DecisionKind::Info, None),
            "info".into(),
        );
        k.emit_event(
            0,
            "test",
            AuditObject::None,
            Provenance::kernel(Hook::SbMount, DecisionKind::Deny, Some(Errno::EPERM)),
            "denied".into(),
        );
        assert!(k.audit.len() == 1);
        assert_eq!(lock(&feed).events.len(), 2);
        assert!(lock(&feed).events[1].is_denial());
    }

    #[test]
    fn pipe_arena_reuses_closed_slots() {
        // Satellite: open/close cycles must not grow the arena.
        let arena = PipeArena::default();
        let first = arena.alloc();
        arena.release_read(first);
        arena.release_write(first);
        assert_eq!(arena.live_count(), 0);
        for _ in 0..100 {
            let id = arena.alloc();
            assert_eq!(id, first, "freed slot is reused");
            arena.dup_read(id);
            arena.release_read(id);
            arena.release_read(id);
            arena.release_write(id);
        }
        assert_eq!(arena.capacity(), 1, "arena footprint stays bounded");
        assert_eq!(arena.live_count(), 0);
    }

    #[test]
    fn shared_kernel_is_send_and_sync() {
        // Satellite: the whole point of the refactor — a kernel handle
        // that crosses threads. A compile-time assertion.
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<SharedKernel>();
        fn assert_kernel_shareable<T: Send + Sync>() {}
        assert_kernel_shareable::<Kernel>();
    }
}
