//! Plain-text renderers producing paper-style tables.

use crate::interfaces::{RemainingRow, TABLE4, TABLE8};
use crate::loc::{LocRow, TABLE2, TABLE2_PRINTED_TOTAL};
use crate::popularity::{weighted_average, PopularityRow, TABLE3};
use crate::summary::Table1;

/// Renders Table 1.
pub fn render_table1(t: &Table1) -> String {
    let mut s = String::new();
    s.push_str("Table 1. Summary of results.\n");
    s.push_str(&format!(
        "  Net lines of code de-privileged:                         {}\n",
        t.net_loc_deprivileged
    ));
    s.push_str(&format!(
        "  Deployed systems that can eliminate the setuid bit:      {:.1}%\n",
        t.systems_covered_pct
    ));
    s.push_str(&format!(
        "  Historical exploits unprivileged on Protego:             {}/{}\n",
        t.exploits_defeated.0, t.exploits_defeated.1
    ));
    s.push_str(&format!(
        "  Performance overheads:                                   <= {:.1}%\n",
        t.max_overhead_pct
    ));
    s.push_str(&format!(
        "  System calls changed:                                    {}\n",
        t.syscalls_changed
    ));
    s
}

/// Renders Table 2.
pub fn render_table2(rows: &[LocRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 2. Lines of code written or changed in Protego.\n");
    s.push_str(&format!("  {:<28} {:>7}\n", "Component", "Lines"));
    for r in rows {
        s.push_str(&format!("  {:<28} {:>7}\n", r.component, r.lines));
    }
    let sum: i64 = rows.iter().map(|r| r.lines).sum();
    s.push_str(&format!(
        "  {:<28} {:>7}   (paper prints {})\n",
        "Row sum", sum, TABLE2_PRINTED_TOTAL
    ));
    s
}

/// Renders Table 3.
pub fn render_table3(rows: &[PopularityRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 3. Percent of systems installing setuid-to-root packages.\n");
    s.push_str(&format!(
        "  {:<20} {:>10} {:>10} {:>10}\n",
        "Package", "Ubuntu(%)", "Debian(%)", "Wt.Avg(%)"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<20} {:>10.2} {:>10.2} {:>10.2}\n",
            r.package,
            r.ubuntu_pct,
            r.debian_pct,
            weighted_average(r.ubuntu_pct, r.debian_pct)
        ));
    }
    s
}

/// Renders Table 4 (abbreviated columns).
pub fn render_table4() -> String {
    let mut s = String::new();
    s.push_str("Table 4. System abstractions used by setuid utilities.\n");
    for r in TABLE4 {
        s.push_str(&format!("  interface: {}\n", r.interface));
        s.push_str(&format!("    used by:   {}\n", r.used_by));
        s.push_str(&format!("    approach:  {}\n", r.approach));
        if !r.hooks.is_empty() {
            s.push_str(&format!("    hooks:     {}\n", r.hooks.join(", ")));
        }
    }
    s
}

/// Renders Table 8.
pub fn render_table8(rows: &[RemainingRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 8. Interfaces used by the remaining setuid binaries.\n");
    s.push_str(&format!(
        "  {:<30} {:>8}  {}\n",
        "Interface", "Binaries", "Status"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<30} {:>8}  {}\n",
            r.interface,
            r.binaries,
            if r.addressed {
                "addressed by Protego"
            } else {
                "future work"
            }
        ));
    }
    s
}

/// Convenience: render the published Table 2/3/8.
pub fn render_published() -> String {
    format!(
        "{}\n{}\n{}\n{}",
        render_table2(TABLE2),
        render_table3(TABLE3),
        render_table4(),
        render_table8(TABLE8)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{table1, MeasuredInputs};

    #[test]
    fn renders_contain_key_cells() {
        let t1 = render_table1(&table1(MeasuredInputs {
            exploits_escalated_legacy: 40,
            exploits_escalated_protego: 0,
            exploits_total: 40,
            max_overhead_pct: 7.4,
        }));
        assert!(t1.contains("40/40"));
        assert!(t1.contains("89.5%") || t1.contains("89.4%") || t1.contains("89.6%"));

        let t2 = render_table2(TABLE2);
        assert!(t2.contains("Protego LSM module"));
        assert!(t2.contains("1200"));

        let t3 = render_table3(TABLE3);
        assert!(t3.contains("mount"));
        assert!(t3.contains("99.99"));

        let t4 = render_table4();
        assert!(t4.contains("sb_mount"));

        let t8 = render_table8(TABLE8);
        assert!(t8.contains("future work"));
    }
}
