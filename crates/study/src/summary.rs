//! Table 1: the headline summary, recomputed from the other experiments'
//! measured outputs rather than restated.

use crate::interfaces::CHANGED_SYSCALLS;
use crate::loc;
use crate::popularity;

/// Measured inputs from the reproduction's own experiments.
#[derive(Clone, Copy, Debug)]
pub struct MeasuredInputs {
    /// Exploits that escalated on the legacy system (expect 40).
    pub exploits_escalated_legacy: u32,
    /// Exploits that escalated on Protego (expect 0).
    pub exploits_escalated_protego: u32,
    /// Corpus size (expect 40).
    pub exploits_total: u32,
    /// Worst-case measured overhead, percent.
    pub max_overhead_pct: f64,
}

/// The Table 1 summary.
#[derive(Clone, Copy, Debug)]
pub struct Table1 {
    /// Net lines of code de-privileged.
    pub net_loc_deprivileged: i64,
    /// Percentage of deployed systems that can eliminate the setuid bit.
    pub systems_covered_pct: f64,
    /// Historical exploits unprivileged on Protego, over the corpus size.
    pub exploits_defeated: (u32, u32),
    /// Maximum performance overhead, percent.
    pub max_overhead_pct: f64,
    /// System calls changed.
    pub syscalls_changed: usize,
}

/// Builds Table 1 from study data plus measured experiment outputs.
pub fn table1(m: MeasuredInputs) -> Table1 {
    Table1 {
        net_loc_deprivileged: loc::net_trusted_reduction(),
        systems_covered_pct: popularity::adoption_coverage_pct(),
        exploits_defeated: (
            m.exploits_total - m.exploits_escalated_protego,
            m.exploits_total,
        ),
        max_overhead_pct: m.max_overhead_pct,
        syscalls_changed: CHANGED_SYSCALLS.len(),
    }
}

/// The values the paper's Table 1 prints, for comparison.
pub struct PaperTable1;

impl PaperTable1 {
    /// Net lines of code de-privileged.
    pub const NET_LOC: i64 = 12_717;
    /// Percent of systems covered.
    pub const COVERAGE_PCT: f64 = 89.5;
    /// Exploits defeated.
    pub const EXPLOITS: (u32, u32) = (40, 40);
    /// Max overhead percent.
    pub const MAX_OVERHEAD_PCT: f64 = 7.4;
    /// Syscalls changed.
    pub const SYSCALLS: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_paper_shape() {
        let t = table1(MeasuredInputs {
            exploits_escalated_legacy: 40,
            exploits_escalated_protego: 0,
            exploits_total: 40,
            max_overhead_pct: 6.1,
        });
        // LoC: the paper's own two figures differ by 15; we land on the
        // §5.2 arithmetic.
        assert!((t.net_loc_deprivileged - PaperTable1::NET_LOC).abs() <= 15);
        assert!((t.systems_covered_pct - PaperTable1::COVERAGE_PCT).abs() < 0.2);
        assert_eq!(t.exploits_defeated, PaperTable1::EXPLOITS);
        assert_eq!(t.syscalls_changed, PaperTable1::SYSCALLS);
    }
}
