//! Table 3: installation frequency of packages containing setuid-to-root
//! binaries, from the Debian and Ubuntu popularity-contest surveys.

/// Survey population: Ubuntu systems reporting.
pub const UBUNTU_SYSTEMS: u64 = 2_502_647;
/// Survey population: Debian systems reporting.
pub const DEBIAN_SYSTEMS: u64 = 134_020;

/// One Table 3 row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopularityRow {
    /// Package name.
    pub package: &'static str,
    /// Percent of Ubuntu systems installing it.
    pub ubuntu_pct: f64,
    /// Percent of Debian systems installing it.
    pub debian_pct: f64,
    /// Whether the paper's study fully investigated the package (the
    /// packages through ecryptfs-utils).
    pub investigated: bool,
}

/// The 20 most frequently installed packages (Table 3).
pub const TABLE3: &[PopularityRow] = &[
    PopularityRow {
        package: "mount",
        ubuntu_pct: 100.00,
        debian_pct: 99.75,
        investigated: true,
    },
    PopularityRow {
        package: "login",
        ubuntu_pct: 99.99,
        debian_pct: 99.82,
        investigated: true,
    },
    PopularityRow {
        package: "passwd",
        ubuntu_pct: 99.97,
        debian_pct: 99.84,
        investigated: true,
    },
    PopularityRow {
        package: "iputils-ping",
        ubuntu_pct: 99.87,
        debian_pct: 99.60,
        investigated: true,
    },
    PopularityRow {
        package: "openssh-client",
        ubuntu_pct: 99.54,
        debian_pct: 99.48,
        investigated: true,
    },
    PopularityRow {
        package: "eject",
        ubuntu_pct: 99.68,
        debian_pct: 90.95,
        investigated: true,
    },
    PopularityRow {
        package: "sudo",
        ubuntu_pct: 99.48,
        debian_pct: 74.34,
        investigated: true,
    },
    PopularityRow {
        package: "ppp",
        ubuntu_pct: 99.54,
        debian_pct: 45.65,
        investigated: true,
    },
    PopularityRow {
        package: "iputils-tracepath",
        ubuntu_pct: 99.78,
        debian_pct: 13.06,
        investigated: true,
    },
    PopularityRow {
        package: "mtr-tiny",
        ubuntu_pct: 99.54,
        debian_pct: 11.79,
        investigated: true,
    },
    PopularityRow {
        package: "iputils-arping",
        ubuntu_pct: 99.60,
        debian_pct: 3.55,
        investigated: true,
    },
    PopularityRow {
        package: "libc-bin",
        ubuntu_pct: 50.14,
        debian_pct: 86.15,
        investigated: true,
    },
    PopularityRow {
        package: "fping",
        ubuntu_pct: 27.70,
        debian_pct: 12.42,
        investigated: true,
    },
    PopularityRow {
        package: "nfs-common",
        ubuntu_pct: 9.76,
        debian_pct: 82.89,
        investigated: true,
    },
    PopularityRow {
        package: "ecryptfs-utils",
        ubuntu_pct: 11.64,
        debian_pct: 0.72,
        investigated: true,
    },
    PopularityRow {
        package: "virtualbox",
        ubuntu_pct: 10.56,
        debian_pct: 7.78,
        investigated: false,
    },
    PopularityRow {
        package: "kppp",
        ubuntu_pct: 10.11,
        debian_pct: 4.97,
        investigated: false,
    },
    PopularityRow {
        package: "cifs-utils",
        ubuntu_pct: 2.59,
        debian_pct: 19.23,
        investigated: false,
    },
    PopularityRow {
        package: "tcptraceroute",
        ubuntu_pct: 0.33,
        debian_pct: 23.38,
        investigated: false,
    },
    PopularityRow {
        package: "chromium-browser",
        ubuntu_pct: 0.48,
        debian_pct: 8.49,
        investigated: false,
    },
];

/// Total packages containing setuid-to-root binaries in the archives.
pub const TOTAL_SETUID_PACKAGES: u32 = 82;
/// Packages not in Table 3 (each installed by fewer than 0.89% of
/// systems).
pub const LONG_TAIL_PACKAGES: u32 = 62;
/// Binaries studied in §4.
pub const STUDIED_BINARIES: u32 = 28;

/// The survey-weighted average the paper's last column reports.
pub fn weighted_average(ubuntu_pct: f64, debian_pct: f64) -> f64 {
    let u = UBUNTU_SYSTEMS as f64;
    let d = DEBIAN_SYSTEMS as f64;
    (ubuntu_pct * u + debian_pct * d) / (u + d)
}

/// Fraction of systems for which *every installed setuid package* is
/// investigated — the paper's "roughly 89.5% of sample systems could
/// adopt Protego with no loss of functionality".
///
/// The bound is driven by the most-popular uninvestigated package: a
/// system is not fully covered if it installs any of them; the paper
/// approximates this with the top uninvestigated package's install rate.
pub fn adoption_coverage_pct() -> f64 {
    let max_uninvestigated = TABLE3
        .iter()
        .filter(|r| !r.investigated)
        .map(|r| weighted_average(r.ubuntu_pct, r.debian_pct))
        .fold(0.0, f64::max);
    100.0 - max_uninvestigated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_average_matches_published_column() {
        // Spot-check rows against the printed Wt.Avg numbers (±0.01).
        let cases = [
            ("mount", 99.99),
            ("eject", 99.24),
            ("sudo", 98.21),
            ("ppp", 96.81),
            ("iputils-tracepath", 95.39),
            ("mtr-tiny", 95.10),
            ("iputils-arping", 94.74),
            ("libc-bin", 51.96),
            ("fping", 26.92),
            ("nfs-common", 13.46),
            ("ecryptfs-utils", 11.08),
            ("virtualbox", 10.41),
            ("cifs-utils", 3.43),
            ("tcptraceroute", 1.50),
            ("chromium-browser", 0.89),
        ];
        for (pkg, expected) in cases {
            let row = TABLE3.iter().find(|r| r.package == pkg).unwrap();
            let got = weighted_average(row.ubuntu_pct, row.debian_pct);
            // The survey percentages are themselves rounded to two
            // decimals, so recomputation can differ by a few hundredths.
            assert!(
                (got - expected).abs() < 0.03,
                "{}: computed {:.2}, paper prints {:.2}",
                pkg,
                got,
                expected
            );
        }
    }

    #[test]
    fn coverage_is_roughly_89_5_percent() {
        let c = adoption_coverage_pct();
        assert!(
            (c - 89.5).abs() < 0.2,
            "computed coverage {:.2}% vs paper's 89.5%",
            c
        );
    }

    #[test]
    fn package_accounting() {
        assert_eq!(TABLE3.len(), 20);
        assert_eq!(TOTAL_SETUID_PACKAGES - LONG_TAIL_PACKAGES, 20);
        assert_eq!(TABLE3.iter().filter(|r| r.investigated).count(), 15);
    }

    #[test]
    fn rows_sorted_by_weighted_average() {
        let w: Vec<f64> = TABLE3
            .iter()
            .map(|r| weighted_average(r.ubuntu_pct, r.debian_pct))
            .collect();
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9);
        }
    }
}
