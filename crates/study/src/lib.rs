//! # setuid-study
//!
//! The data artifacts of the paper's setuid-to-root study, as typed Rust:
//!
//! * [`popularity`] — Table 3's installation survey and the 89.5%
//!   adoption-coverage computation;
//! * [`loc`] — Tables 1/2's lines-of-code accounting (including the
//!   paper's own small internal inconsistencies, preserved and tested);
//! * [`interfaces`] — Table 4's interface/policy study, cross-referenced
//!   to the reproduction's LSM hooks, and Table 8's remaining binaries;
//! * [`summary`] — Table 1 recomputed from measured experiment outputs;
//! * [`render`] — paper-style plain-text table renderers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interfaces;
pub mod loc;
pub mod popularity;
pub mod render;
pub mod summary;
