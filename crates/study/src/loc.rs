//! Tables 1 and 2: lines-of-code accounting for the Protego prototype.

/// Where a changed component lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComponentKind {
    /// Kernel code (trusted).
    Kernel,
    /// Trusted userspace service.
    TrustedService,
    /// Command-line utility (untrusted under Protego).
    Utility,
}

/// One Table 2 row.
#[derive(Clone, Copy, Debug)]
pub struct LocRow {
    /// Component name.
    pub component: &'static str,
    /// What it is.
    pub kind: ComponentKind,
    /// Description as printed.
    pub description: &'static str,
    /// Lines written or changed (negative = removed).
    pub lines: i64,
}

/// Table 2 as published.
pub const TABLE2: &[LocRow] = &[
    LocRow {
        component: "Linux",
        kind: ComponentKind::Kernel,
        description: "Additional LSM hooks, /proc filesystem interface.",
        lines: 415,
    },
    LocRow {
        component: "Protego LSM module",
        kind: ComponentKind::Kernel,
        description: "Implement security policies, called by additional LSM hooks in Linux.",
        lines: 200,
    },
    LocRow {
        component: "Netfilter",
        kind: ComponentKind::Kernel,
        description: "Extensions for raw sockets.",
        lines: 100,
    },
    LocRow {
        component: "Monitoring daemon",
        kind: ComponentKind::TrustedService,
        description:
            "Trusted process that monitors changes in policy-relevant configuration files.",
        lines: 400,
    },
    LocRow {
        component: "Authentication utility",
        kind: ComponentKind::TrustedService,
        description: "Trusted binary launched by the kernel to authenticate user sessions.",
        lines: 1200,
    },
    LocRow {
        component: "iptables",
        kind: ComponentKind::Utility,
        description: "Extension for raw sockets.",
        lines: 175,
    },
    LocRow {
        component: "vipw",
        kind: ComponentKind::Utility,
        description: "Modified to edit per-user files instead of a shared database file.",
        lines: 40,
    },
    LocRow {
        component: "dmcrypt-get-device",
        kind: ComponentKind::Utility,
        description: "Switch to /sys to read underlying device information.",
        lines: 4,
    },
    LocRow {
        component: "mount/umount, sudo, pppd",
        kind: ComponentKind::Utility,
        description: "Disable hard-coded root uid checks.",
        lines: -25,
    },
];

/// The grand total Table 2 prints. (Summing the printed rows gives 2,509;
/// the 89-line difference is unexplained in the paper — we preserve both
/// numbers.)
pub const TABLE2_PRINTED_TOTAL: i64 = 2_598;

/// Sum of the printed rows.
pub fn table2_row_sum() -> i64 {
    TABLE2.iter().map(|r| r.lines).sum()
}

/// Lines of kernel code Protego adds (Table 1/§5.2's "715 lines of Linux
/// kernel code": LSM-hook plumbing, the module, and the netfilter
/// extension).
pub fn kernel_lines_added() -> i64 {
    TABLE2
        .iter()
        .filter(|r| r.kind == ComponentKind::Kernel)
        .map(|r| r.lines)
        .sum()
}

/// Lines of previously-privileged binary code that no longer execute with
/// privilege (§5.2's conservative count).
pub const DEPRIVILEGED_LINES: i64 = 15_047;

/// Trusted lines added (kernel + trusted services), per §5.2's arithmetic:
/// 715 (kernel) + 400 (monitoring) + 1200 (authentication).
pub fn trusted_lines_added() -> i64 {
    kernel_lines_added() + 400 + 1200
}

/// Net reduction in trusted lines. §5.2 states "at least 12,732"; Table 1
/// prints 12,717 — the two published numbers differ by 15, and the direct
/// subtraction gives 12,732. We compute, and keep the printed Table 1
/// value alongside.
pub fn net_trusted_reduction() -> i64 {
    DEPRIVILEGED_LINES - trusted_lines_added()
}

/// The value Table 1 prints.
pub const TABLE1_PRINTED_NET_REDUCTION: i64 = 12_717;

/// LoC comparisons the paper cites against point solutions.
pub mod comparisons {
    /// Protego's trusted-code cost of user mounts (Table 4 discussion).
    pub const PROTEGO_MOUNT_LOC: i64 = 258;
    /// The Linux automounter's TCB growth, including its kernel patch.
    pub const AUTOMOUNTER_LOC: i64 = 21_674;
    /// The automounter's kernel patch alone.
    pub const AUTOMOUNTER_KERNEL_PATCH_LOC: i64 = 79;
    /// Protego's credential-database change.
    pub const PROTEGO_CREDDB_LOC: i64 = 240;
    /// OpenLDAP 2.8, the record-granularity alternative.
    pub const OPENLDAP_LOC: i64 = 175_368;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_lines_are_715() {
        assert_eq!(kernel_lines_added(), 715);
    }

    #[test]
    fn net_reduction_matches_section_5_2() {
        assert_eq!(trusted_lines_added(), 2_315);
        // 15,047 - (715 + 400 + 1200) = 12,732 per §5.2.
        assert_eq!(net_trusted_reduction(), 12_732);
        // Table 1 prints 12,717; the delta between the paper's own
        // numbers is 15 lines.
        assert_eq!(net_trusted_reduction() - TABLE1_PRINTED_NET_REDUCTION, 15);
    }

    #[test]
    fn table2_sum_vs_printed_total() {
        assert_eq!(table2_row_sum(), 2_509);
        assert_eq!(TABLE2_PRINTED_TOTAL - table2_row_sum(), 89);
    }

    #[test]
    fn point_solution_comparisons() {
        use comparisons::*;
        // Bind through locals so the comparisons are evaluated, not
        // constant-folded assertions.
        let (m, a) = (PROTEGO_MOUNT_LOC, AUTOMOUNTER_LOC);
        assert!(m * 80 < a);
        let (c, l) = (PROTEGO_CREDDB_LOC, OPENLDAP_LOC);
        assert!(c * 700 < l);
    }
}
