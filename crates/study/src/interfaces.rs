//! Table 4: the system abstractions used by commonly installed setuid
//! utilities, and Table 8: the interfaces used by the remaining packages.

/// A Table 4 row: one privileged interface and its policy analysis.
#[derive(Clone, Copy, Debug)]
pub struct InterfaceRow {
    /// Interface (system call or abstraction).
    pub interface: &'static str,
    /// Binaries that use it.
    pub used_by: &'static str,
    /// The kernel's hard-coded policy.
    pub kernel_policy: &'static str,
    /// The policy the system actually wants.
    pub system_policy: &'static str,
    /// The underlying security concern.
    pub security_concern: &'static str,
    /// Protego's approach.
    pub approach: &'static str,
    /// The LSM hook(s) in our reproduction that realize the approach
    /// (empty for rows Protego resolves without a hook).
    pub hooks: &'static [&'static str],
}

/// Table 4 as published, cross-referenced to the reproduction's hooks.
pub const TABLE4: &[InterfaceRow] = &[
    InterfaceRow {
        interface: "socket",
        used_by: "ping, ping6, arping, mtr, traceroute6, iputils",
        kernel_policy: "Creating raw or packet sockets requires CAP_NET_RAW.",
        system_policy: "Users may send and receive safe, non TCP/UDP packets, such as ICMP.",
        security_concern: "Raw sockets allow sending packets that appear to come from sockets owned by another process.",
        approach: "Allow any user to create a raw or packet socket; outgoing packets are subject to firewall rules that filter unsafe packets.",
        hooks: &["socket_create", "netfilter OUTPUT"],
    },
    InterfaceRow {
        interface: "ioctl (routes/modem)",
        used_by: "pppd",
        kernel_policy: "Only the administrator may configure modem hardware or modify routing tables.",
        system_policy: "A user may configure an unused modem and add routes that don't conflict with existing routes.",
        security_concern: "Protect the integrity of routes for unrelated applications.",
        approach: "LSM hooks verify routes do not conflict with old rules when requested by non-root users.",
        hooks: &["ioctl_route_add", "ioctl_modem"],
    },
    InterfaceRow {
        interface: "ioctl (dm-crypt)",
        used_by: "dmcrypt-get-device",
        kernel_policy: "Require CAP_SYS_ADMIN to read dmcrypt metadata.",
        system_policy: "Any user may read the public portion of dmcrypt metadata (e.g., device set).",
        security_concern: "The same ioctl discloses both the physical devices and the encryption keys.",
        approach: "Abandon this ioctl for a /sys file that only discloses the physical devices.",
        hooks: &["sysfs attribute"],
    },
    InterfaceRow {
        interface: "bind",
        used_by: "procmail, sensible-mda, exim4",
        kernel_policy: "Require CAP_NET_BIND_SERVICE to bind to ports < 1024.",
        system_policy: "Mail server should generally run without root privilege.",
        security_concern: "Prevent untrustworthy applications from running on well-known ports.",
        approach: "System policies allocating low-numbered ports to specific (binary, userid) pairs.",
        hooks: &["socket_bind"],
    },
    InterfaceRow {
        interface: "mount, umount",
        used_by: "fusermount, mount, umount",
        kernel_policy: "Mounting or unmounting a file system requires CAP_SYS_ADMIN.",
        system_policy: "Any user may mount or unmount entries in /etc/fstab with the user(s) option.",
        security_concern: "Protect the integrity of trusted directories (e.g., /etc, /lib).",
        approach: "LSM hooks permit anyone to mount a white-listed file system with safe locations and options.",
        hooks: &["sb_mount", "sb_umount"],
    },
    InterfaceRow {
        interface: "setuid, setgid",
        used_by: "polkit-agent-helper-1, sudo, pkexec, dbus-daemon-launch-helper, su, sudoedit, newgrp",
        kernel_policy: "Only allowed with CAP_SETUID.",
        system_policy: "Permit delegation of commands as configured by the administrator, in some cases requiring recent reauthentication.",
        security_concern: "Require authentication and authorization to execute as another user.",
        approach: "LSM hooks check delegation rules encoded in files like /etc/sudoers, and a kernel abstraction for recency.",
        hooks: &["task_setuid", "task_setgid", "bprm_check"],
    },
    InterfaceRow {
        interface: "credential databases",
        used_by: "chfn, chsh, gpasswd, lppasswd, passwd",
        kernel_policy: "Only root can modify these files (or read /etc/shadow).",
        system_policy: "A user may change her own entry to update password, shell, etc.",
        security_concern: "Prevent users from accessing or modifying each other's accounts.",
        approach: "Fragment the database to per-user or per-group configuration files, matching DAC granularity.",
        hooks: &["file_open"],
    },
    InterfaceRow {
        interface: "host private ssh key",
        used_by: "ssh-keysign",
        kernel_policy: "Only root may read the key (FS permissions).",
        system_policy: "Allow non-root users to sign their public key with the host key (disabled by default).",
        security_concern: "A user should acquire a host key signature without copying the host key.",
        approach: "Restrict file access to specific binaries instead of, or in addition to, user IDs.",
        hooks: &["file_open"],
    },
    InterfaceRow {
        interface: "video driver control state",
        used_by: "X",
        kernel_policy: "Root must set the video card control state, required by older drivers.",
        system_policy: "Any user may start an X server.",
        security_concern: "An untrustworthy application could misconfigure another application's video state.",
        approach: "Linux now context switches video devices in the kernel (KMS).",
        hooks: &["ioctl_kms"],
    },
    InterfaceRow {
        interface: "/dev/pts* terminal slaves",
        used_by: "pt_chown",
        kernel_policy: "Root must allocate pts slaves on pre-2.1 kernels.",
        system_policy: "Users may create terminal sessions.",
        security_concern: "This utility has been obviated for 17 years, but is still shipped.",
        approach: "Ignore.",
        hooks: &[],
    },
];

/// The system calls Protego changes ("8 system calls" throughout the
/// paper).
pub const CHANGED_SYSCALLS: &[&str] = &[
    "socket", "ioctl", "bind", "mount", "umount", "setuid", "setgid", "open",
];

/// A Table 8 row: interfaces used by the remaining (long-tail) setuid
/// binaries.
#[derive(Clone, Copy, Debug)]
pub struct RemainingRow {
    /// Interface.
    pub interface: &'static str,
    /// Number of remaining setuid binaries using it.
    pub binaries: u32,
    /// Whether Protego's existing abstractions already address it (rows
    /// above Table 8's double line).
    pub addressed: bool,
}

/// Table 8 as published.
pub const TABLE8: &[RemainingRow] = &[
    RemainingRow {
        interface: "socket",
        binaries: 14,
        addressed: true,
    },
    RemainingRow {
        interface: "bind",
        binaries: 23,
        addressed: true,
    },
    RemainingRow {
        interface: "mount",
        binaries: 3,
        addressed: true,
    },
    RemainingRow {
        interface: "setuid, setgid",
        binaries: 24,
        addressed: true,
    },
    RemainingRow {
        interface: "video driver control state",
        binaries: 13,
        addressed: true,
    },
    RemainingRow {
        interface: "chroot/namespace",
        binaries: 6,
        addressed: false,
    },
    RemainingRow {
        interface: "miscellaneous",
        binaries: 8,
        addressed: false,
    },
];

/// Packages outside the §4 study.
pub const REMAINING_PACKAGES: u32 = 67;
/// Binaries in those packages.
pub const REMAINING_BINARIES: u32 = 91;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_changed_syscalls() {
        assert_eq!(CHANGED_SYSCALLS.len(), 8);
    }

    #[test]
    fn table4_covers_nine_abstractions() {
        // Ten printed rows (ioctl appears twice: pppd and dm-crypt), nine
        // distinct kernel abstractions.
        assert_eq!(TABLE4.len(), 10);
        let mut names: Vec<&str> = TABLE4
            .iter()
            .map(|r| r.interface.split_whitespace().next().unwrap())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn table8_binaries_sum_to_91() {
        let sum: u32 = TABLE8.iter().map(|r| r.binaries).sum();
        assert_eq!(sum, REMAINING_BINARIES);
    }

    #[test]
    fn table8_addressed_count_is_77() {
        let addressed: u32 = TABLE8
            .iter()
            .filter(|r| r.addressed)
            .map(|r| r.binaries)
            .sum();
        assert_eq!(addressed, 77);
        let future: u32 = TABLE8
            .iter()
            .filter(|r| !r.addressed)
            .map(|r| r.binaries)
            .sum();
        assert_eq!(future, 14);
    }

    #[test]
    fn every_enforced_row_names_a_hook() {
        for row in TABLE4 {
            if row.approach != "Ignore." {
                assert!(!row.hooks.is_empty(), "row {} has no hook", row.interface);
            }
        }
    }
}
