//! A vendored, zero-dependency stand-in for the `criterion` crate so the
//! workspace's benches compile and run offline (the real crates-io
//! registry is unreachable in this environment).
//!
//! It implements the subset of the criterion API the workspace's benches
//! use — `Criterion::benchmark_group`, `sample_size`, `bench_function`
//! (with `&str` or [`BenchmarkId`] ids), `Bencher::iter`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — measuring
//! with `std::time::Instant` and printing one median line per benchmark
//! instead of producing HTML reports.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard black box to defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one("", &id.0, 10, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a `group/id: median` line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&self.name, &id.0, self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut per_iter_nanos: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 4,
            elapsed_nanos: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter_nanos.push(b.elapsed_nanos / b.iters as u128);
        }
    }
    per_iter_nanos.sort_unstable();
    let median = per_iter_nanos
        .get(per_iter_nanos.len() / 2)
        .copied()
        .unwrap_or(0);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{}/{}", group, id)
    };
    println!("bench {:<48} median {:>12} ns/iter", label, median);
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    iters: u32,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Runs `f` a fixed number of iterations, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
    }
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
