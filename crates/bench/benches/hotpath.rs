//! Criterion benches for the hot-path caches: compiled vs interpreted
//! glob matching, cold vs dcache-hit path resolution, and the full
//! `file_open` hook round-trip cached vs uncached.

use apparmor_lsm::{glob_match, AppArmorLsm, CompiledGlob};
use bench::fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::lsm::{FileOpenCtx, SecurityModule};
use sim_kernel::vfs::{Access, Ino, Mode};
use userland::SystemMode;

fn glob(c: &mut Criterion) {
    let pattern = "/usr/{lib,lib64,share}/**";
    let path = "/usr/lib64/protego/policy.bin";
    let compiled = CompiledGlob::new(pattern);
    let mut group = c.benchmark_group("glob");
    group.bench_function("interpreted", |b| b.iter(|| glob_match(pattern, path)));
    group.bench_function("compiled", |b| b.iter(|| compiled.matches(path)));
    group.finish();
}

fn resolve(c: &mut Criterion) {
    let mut f = fixture(SystemMode::Protego);
    const DEEP: &str = "/srv/bench/a/b/c/d/e/f/g/h/i/j/leaf.conf";
    f.sys
        .kernel
        .vfs
        .install_file(DEEP, b"x", Mode(0o644), Uid::ROOT, Gid::ROOT)
        .expect("bench file installs");
    let vfs = &f.sys.kernel.vfs;
    let mut group = c.benchmark_group("resolve");
    vfs.set_dcache_enabled(false);
    group.bench_function("cold", |b| {
        b.iter(|| vfs.resolve(Ino(0), DEEP).expect("resolves"))
    });
    vfs.set_dcache_enabled(true);
    group.bench_function("dcache_hit", |b| {
        b.iter(|| vfs.resolve(Ino(0), DEEP).expect("resolves"))
    });
    group.finish();
}

fn file_open_hook(c: &mut Criterion) {
    let a = AppArmorLsm::with_ubuntu_defaults();
    let ctx = FileOpenCtx {
        cred: Credentials::root(),
        path: "/etc/fstab".to_string(),
        binary: "/bin/mount".to_string(),
        access: Access::READ,
        dac_allows: true,
        file_owner: Uid::ROOT,
        last_auth: None,
        last_auth_scope: None,
        now: 0,
    };
    let mut group = c.benchmark_group("file_open_hook");
    a.set_caching(false);
    group.bench_function("interpreted", |b| b.iter(|| a.file_open(&ctx)));
    a.set_caching(true);
    group.bench_function("cached", |b| b.iter(|| a.file_open(&ctx)));
    group.finish();
}

criterion_group!(benches, glob, resolve, file_open_hook);
criterion_main!(benches);
