//! Criterion ablation benches: netfilter rule cost on the packet path,
//! raw-socket whitelist traversal, and mount-whitelist scaling.

use bench::{ablations, fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use userland::SystemMode;

fn netfilter_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("netfilter");
    group.sample_size(20);
    {
        let mut f = fixture(SystemMode::Protego);
        group.bench_function("udp_with_protego_rules", |b| {
            b.iter(|| ablations::udp_burst(&mut f, 10))
        });
    }
    {
        let mut f = fixture(SystemMode::Protego);
        ablations::flush_netfilter(&mut f);
        group.bench_function("udp_rules_flushed", |b| {
            b.iter(|| ablations::udp_burst(&mut f, 10))
        });
    }
    {
        let mut f = fixture(SystemMode::Protego);
        let user = f.user;
        group.bench_function("raw_icmp_whitelisted", |b| {
            b.iter(|| ablations::raw_send_burst(&mut f, user, 10))
        });
    }
    group.finish();
}

fn mount_whitelist_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mount_whitelist");
    group.sample_size(10);
    for rules in [10usize, 100, 1000] {
        group.bench_function(BenchmarkId::from_parameter(rules), |b| {
            b.iter(|| ablations::mount_lookup_cost(rules, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, netfilter_cost, mount_whitelist_scaling);
criterion_main!(benches);
