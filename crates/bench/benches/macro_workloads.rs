//! Criterion macro benchmarks: Postal, kernel compile, and ApacheBench
//! (Table 5's application rows).

use bench::{fixture, workloads};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use userland::SystemMode;

fn postal(c: &mut Criterion) {
    let mut group = c.benchmark_group("postal");
    group.sample_size(10);
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut f = fixture(mode);
        let (mta, fd) = workloads::start_mta(&mut f);
        let name = if mode == SystemMode::Legacy {
            "linux"
        } else {
            "protego"
        };
        group.bench_function(BenchmarkId::new(name, 20), |b| {
            b.iter(|| workloads::postal(&mut f, mta, fd, 20))
        });
    }
    group.finish();
}

fn kernel_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_compile");
    group.sample_size(10);
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut f = fixture(mode);
        let name = if mode == SystemMode::Legacy {
            "linux"
        } else {
            "protego"
        };
        group.bench_function(BenchmarkId::new(name, 20), |b| {
            b.iter(|| workloads::compile(&mut f, 20))
        });
    }
    group.finish();
}

fn apache_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("apachebench");
    group.sample_size(10);
    for conc in [25u64, 50, 100, 200] {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut f = fixture(mode);
            let (web, fd) = workloads::start_httpd(&mut f);
            let name = if mode == SystemMode::Legacy {
                "linux"
            } else {
                "protego"
            };
            group.bench_function(BenchmarkId::new(name, conc), |b| {
                b.iter(|| workloads::apache_bench(&mut f, web, fd, 100, conc))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, postal, kernel_compile, apache_bench);
criterion_main!(benches);
