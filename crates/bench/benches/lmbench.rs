//! Criterion microbenchmarks: every Table 5 micro row, measured on both
//! systems (groups named `<row>/linux` and `<row>/protego`).

use bench::fixture;
use bench::micro::all_micro_ops;
use criterion::{criterion_group, criterion_main, Criterion};
use userland::SystemMode;

fn lmbench(c: &mut Criterion) {
    for op in all_micro_ops() {
        let mut group = c.benchmark_group(op.name);
        group.sample_size(20);
        {
            let mut f = fixture(SystemMode::Legacy);
            let p = (op.prepare)(&mut f);
            group.bench_function("linux", |b| b.iter(|| (op.run)(&mut f, &p)));
        }
        {
            let mut f = fixture(SystemMode::Protego);
            let p = (op.prepare)(&mut f);
            group.bench_function("protego", |b| b.iter(|| (op.run)(&mut f, &p)));
        }
        group.finish();
    }
}

criterion_group!(benches, lmbench);
criterion_main!(benches);
