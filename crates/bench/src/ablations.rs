//! Ablation studies isolating the design choices DESIGN.md calls out:
//!
//! 1. **Netfilter cost** — the paper attributes the 2–4% ApacheBench
//!    overhead to the raw-socket netfilter rules evaluated on every
//!    outgoing packet; we measure the packet path with the Protego rules
//!    installed vs flushed.
//! 2. **Authentication recency window** — sweep the window and count the
//!    password prompts a scripted session generates (usability vs
//!    re-authentication exposure).
//! 3. **Whitelist scaling** — mount-policy lookup with 10/100/1000 rules.

use crate::Fixture;
use sim_kernel::net::{Domain, Ipv4, Packet, SockType};
use sim_kernel::task::Pid;
use userland::SystemMode;

/// Sends `n` kernel-built UDP datagrams (the non-raw fast path the
/// ApacheBench overhead rides on) and returns the elapsed nanoseconds.
pub fn udp_burst(f: &mut Fixture, n: u32) -> u128 {
    let fd = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Dgram, 0)
        .expect("socket");
    let start = std::time::Instant::now();
    for _ in 0..n {
        let _ = f
            .sys
            .kernel
            .sys_sendto(f.user, fd, Ipv4::new(8, 8, 8, 8), 7, b"x");
        let _ = f.sys.kernel.sys_recv_packet(f.user, fd);
    }
    let elapsed = start.elapsed().as_nanos();
    let _ = f.sys.kernel.sys_close(f.user, fd);
    elapsed
}

/// Flushes the netfilter OUTPUT chain (the ablated configuration).
pub fn flush_netfilter(f: &mut Fixture) {
    f.sys.kernel.netfilter.write().flush();
}

/// Number of rules currently installed.
pub fn rule_count(f: &Fixture) -> usize {
    f.sys.kernel.netfilter.read().rules().len()
}

/// Runs a scripted interactive session (six sudo invocations spaced
/// `spacing_secs` apart) and returns how many password prompts the
/// trusted agent served. Only meaningful on Protego.
pub fn prompts_for_window(spacing_secs: u64) -> u64 {
    let mut f = crate::fixture(SystemMode::Protego);
    f.sys.kernel.set_trace(true);
    let carol = f.sys.login("carol", "carolpw").expect("login");
    for _ in 0..6 {
        f.sys.kernel.advance_clock(spacing_secs);
        let _ = f
            .sys
            .run(carol, "/usr/bin/sudo", &["/bin/id"], &["carolpw"])
            .expect("sudo");
    }
    // Each kernel-launched authentication logs one audit event.
    f.sys
        .kernel
        .audit
        .events()
        .into_iter()
        .filter(|l| l.starts_with("auth:"))
        .count() as u64
}

/// Installs `n` mount whitelist rules and times `iters` user mounts that
/// match the *last* rule (worst-case linear scan).
pub fn mount_lookup_cost(n: usize, iters: u32) -> u128 {
    let f = crate::fixture(SystemMode::Protego);
    let mut rules = String::new();
    for i in 0..n.saturating_sub(1) {
        rules.push_str(&format!("/dev/fake{} /mnt/fake{} iso9660 user\n", i, i));
    }
    rules.push_str("/dev/cdrom /mnt/cdrom iso9660 user ro\n");
    f.sys
        .kernel
        .write_file(
            f.root,
            "/proc/protego/mounts",
            rules.as_bytes(),
            sim_kernel::vfs::Mode(0o600),
        )
        .expect("policy write");
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let _ = f
            .sys
            .kernel
            .sys_mount(f.user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro");
        let _ = f.sys.kernel.sys_umount(f.user, "/mnt/cdrom");
    }
    start.elapsed().as_nanos()
}

/// Raw-socket send with the Protego whitelist present (ICMP echo — the
/// allowed case traverses all preceding rules).
pub fn raw_send_burst(f: &mut Fixture, user: Pid, n: u32) -> u128 {
    let fd = f
        .sys
        .kernel
        .sys_socket(user, Domain::Inet, SockType::Raw, 1)
        .expect("raw socket");
    let start = std::time::Instant::now();
    for i in 0..n {
        let pkt = Packet::echo_request(
            Ipv4::new(10, 0, 0, 100),
            Ipv4::new(10, 0, 0, 1),
            1,
            i as u16,
            f.sys.kernel.task(user).unwrap().cred.euid,
        );
        let _ = f.sys.kernel.sys_send_packet(user, fd, pkt);
        let _ = f.sys.kernel.sys_recv_packet(user, fd);
    }
    let elapsed = start.elapsed().as_nanos();
    let _ = f.sys.kernel.sys_close(user, fd);
    elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfilter_flush_ablation() {
        let mut f = crate::fixture(SystemMode::Protego);
        assert!(rule_count(&f) >= 5);
        let _with = udp_burst(&mut f, 50);
        flush_netfilter(&mut f);
        assert_eq!(rule_count(&f), 0);
        let _without = udp_burst(&mut f, 50);
        // Both paths work; relative cost is reported by the bench.
    }

    #[test]
    fn recency_window_reduces_prompts() {
        // Spaced inside the window: one prompt amortizes over the session.
        let close = prompts_for_window(10);
        // Spaced beyond the window: every invocation prompts.
        let far = prompts_for_window(400);
        assert_eq!(far, 6);
        assert_eq!(close, 1);
    }

    #[test]
    fn mount_lookup_scales() {
        // Just exercise both sizes; timing is the bench's business.
        let _small = mount_lookup_cost(10, 5);
        let _large = mount_lookup_cost(200, 5);
    }

    #[test]
    fn raw_send_works_for_user_on_protego() {
        let mut f = crate::fixture(SystemMode::Protego);
        let user = f.user;
        let _ = raw_send_burst(&mut f, user, 10);
    }
}
