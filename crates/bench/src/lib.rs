//! # bench
//!
//! Workloads and fixtures for regenerating the paper's evaluation
//! (Table 5 and the ablations), shared by the Criterion benches and the
//! `tables` binary.
//!
//! The measured quantity is the cost of the simulated operation path:
//! Protego and the legacy system run the *identical* kernel mechanism
//! plus their respective policy code, so the relative overhead isolates
//! exactly what the paper measured — the added policy checks per
//! operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fuzz;
pub mod json;
pub mod macro_fleet;
pub mod micro;
pub mod profile;
pub mod seccomp_derive;
pub mod table5;
pub mod workloads;

use sim_kernel::task::Pid;
use userland::{boot, System, SystemMode};

/// A booted system plus ready sessions for benchmarking.
pub struct Fixture {
    /// The system under test.
    pub sys: System,
    /// A root session.
    pub root: Pid,
    /// An unprivileged session (alice).
    pub user: Pid,
}

/// Boots a benchmark fixture in the given mode.
pub fn fixture(mode: SystemMode) -> Fixture {
    let mut sys = boot(mode);
    let root = sys.login("root", "rootpw").expect("root login");
    let user = sys.login("alice", "alicepw").expect("user login");
    Fixture { sys, root, user }
}

/// Both systems, for side-by-side measurements.
pub fn both() -> (Fixture, Fixture) {
    (fixture(SystemMode::Legacy), fixture(SystemMode::Protego))
}

/// Measures the mean wall-clock nanoseconds of `op` over `iters`
/// iterations (after `warmup` unmeasured ones) — the quick estimator used
/// by the `tables` binary; Criterion provides the rigorous version.
pub fn quick_time_ns<F: FnMut()>(warmup: u32, iters: u32, mut op: F) -> f64 {
    for _ in 0..warmup {
        op();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Percent overhead of `b` over `a`.
pub fn overhead_pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        0.0
    } else {
        (b - a) / a * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_boot() {
        let (l, p) = both();
        assert_eq!(l.sys.mode, SystemMode::Legacy);
        assert_eq!(p.sys.mode, SystemMode::Protego);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead_pct(100.0, 107.4) - 7.4).abs() < 1e-9);
        assert_eq!(overhead_pct(0.0, 5.0), 0.0);
        assert!(overhead_pct(100.0, 95.0) < 0.0);
    }
}
