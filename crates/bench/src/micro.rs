//! lmbench-style microbenchmarks: one entry per Table 5 micro row,
//! including the five extra tests the paper adds for the modified system
//! calls (mount/umount, setuid, setgid, ioctl, bind).

use crate::Fixture;
use sim_kernel::dev::ModemOpt;
use sim_kernel::net::{Domain, Ipv4, SockType};
use sim_kernel::syscall::{IoctlCmd, OpenFlags, Whence};
use sim_kernel::vfs::Mode;

/// Per-op prepared state (descriptors etc. created once, reused across
/// iterations — lmbench's methodology).
#[derive(Default, Debug)]
pub struct Prepared {
    /// File/socket descriptors, op-defined ordering.
    pub fds: Vec<i32>,
    /// Auxiliary value (e.g. a port number).
    pub aux: u64,
}

/// One microbenchmark.
pub struct MicroOp {
    /// Row name, matching Table 5.
    pub name: &'static str,
    /// The paper's Linux measurement in microseconds.
    pub paper_linux_us: Option<f64>,
    /// The paper's Protego measurement in microseconds.
    pub paper_protego_us: Option<f64>,
    /// One-time setup.
    pub prepare: fn(&mut Fixture) -> Prepared,
    /// One iteration of the operation.
    pub run: fn(&mut Fixture, &Prepared),
}

fn no_prep(_f: &mut Fixture) -> Prepared {
    Prepared::default()
}

fn prep_rw_file(f: &mut Fixture) -> Prepared {
    f.sys
        .kernel
        .write_file(f.user, "/tmp/bench.dat", b"0123456789abcdef", Mode(0o644))
        .expect("bench file");
    let fd = f
        .sys
        .kernel
        .sys_open(f.user, "/tmp/bench.dat", OpenFlags::read_write())
        .expect("open");
    Prepared {
        fds: vec![fd],
        aux: 0,
    }
}

fn prep_modem(f: &mut Fixture) -> Prepared {
    let fd = f
        .sys
        .kernel
        .sys_open(f.root, "/dev/ttyS0", OpenFlags::read_write())
        .expect("modem open");
    Prepared {
        fds: vec![fd],
        aux: 0,
    }
}

fn prep_socketpair(f: &mut Fixture) -> Prepared {
    let (a, b) = f.sys.kernel.sys_socketpair(f.user).expect("socketpair");
    Prepared {
        fds: vec![a, b],
        aux: 0,
    }
}

fn prep_pipe(f: &mut Fixture) -> Prepared {
    let (r, w) = f.sys.kernel.sys_pipe(f.user).expect("pipe");
    Prepared {
        fds: vec![r, w],
        aux: 0,
    }
}

fn prep_tcp_listener(f: &mut Fixture) -> Prepared {
    let srv = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
        .expect("socket");
    f.sys
        .kernel
        .sys_bind(f.user, srv, Ipv4::ANY, 9090)
        .expect("bind");
    f.sys.kernel.sys_listen(f.user, srv).expect("listen");
    Prepared {
        fds: vec![srv],
        aux: 9090,
    }
}

fn prep_tcp_pair(f: &mut Fixture) -> Prepared {
    // A dedicated port: the "TCP connect" row owns 9090.
    let srv = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
        .expect("socket");
    f.sys
        .kernel
        .sys_bind(f.user, srv, Ipv4::ANY, 9092)
        .expect("bind");
    f.sys.kernel.sys_listen(f.user, srv).expect("listen");
    let cli = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
        .expect("socket");
    f.sys
        .kernel
        .sys_connect(f.user, cli, Ipv4::LOOPBACK, 9092)
        .expect("connect");
    let conn = f.sys.kernel.sys_accept(f.user, srv).expect("accept");
    Prepared {
        fds: vec![cli, conn],
        aux: 0,
    }
}

fn prep_udp_pair(f: &mut Fixture) -> Prepared {
    let rx = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Dgram, 0)
        .expect("socket");
    f.sys
        .kernel
        .sys_bind(f.user, rx, Ipv4::ANY, 9091)
        .expect("bind");
    let tx = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Dgram, 0)
        .expect("socket");
    Prepared {
        fds: vec![tx, rx],
        aux: 9091,
    }
}

fn prep_remote_udp(f: &mut Fixture) -> Prepared {
    let fd = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Dgram, 0)
        .expect("socket");
    Prepared {
        fds: vec![fd],
        aux: 0,
    }
}

fn prep_remote_tcp(f: &mut Fixture) -> Prepared {
    let fd = f
        .sys
        .kernel
        .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
        .expect("socket");
    f.sys
        .kernel
        .sys_connect(f.user, fd, Ipv4::new(8, 8, 8, 8), 7)
        .expect("connect echo");
    Prepared {
        fds: vec![fd],
        aux: 0,
    }
}

/// All Table 5 micro rows.
pub fn all_micro_ops() -> Vec<MicroOp> {
    vec![
        MicroOp {
            name: "syscall",
            paper_linux_us: Some(0.04),
            paper_protego_us: Some(0.04),
            prepare: no_prep,
            run: |f, _| {
                let _ = f.sys.kernel.sys_getuid(f.user);
            },
        },
        MicroOp {
            name: "read",
            paper_linux_us: Some(0.09),
            paper_protego_us: Some(0.09),
            prepare: prep_rw_file,
            run: |f, p| {
                let _ = f.sys.kernel.sys_lseek(f.user, p.fds[0], 0, Whence::Set);
                let mut buf = Vec::with_capacity(1);
                let _ = f.sys.kernel.sys_read(f.user, p.fds[0], &mut buf, 1);
            },
        },
        MicroOp {
            name: "write",
            paper_linux_us: Some(0.09),
            paper_protego_us: Some(0.09),
            prepare: prep_rw_file,
            run: |f, p| {
                let _ = f.sys.kernel.sys_lseek(f.user, p.fds[0], 0, Whence::Set);
                let _ = f.sys.kernel.sys_write(f.user, p.fds[0], b"x");
            },
        },
        MicroOp {
            name: "stat",
            paper_linux_us: Some(0.34),
            paper_protego_us: Some(0.33),
            prepare: no_prep,
            run: |f, _| {
                let _ = f.sys.kernel.sys_stat(f.user, "/etc/motd");
            },
        },
        MicroOp {
            name: "open/close",
            paper_linux_us: Some(1.17),
            paper_protego_us: Some(1.17),
            prepare: no_prep,
            run: |f, _| {
                if let Ok(fd) = f
                    .sys
                    .kernel
                    .sys_open(f.user, "/etc/motd", OpenFlags::read_only())
                {
                    let _ = f.sys.kernel.sys_close(f.user, fd);
                }
            },
        },
        MicroOp {
            name: "mount/umnt",
            paper_linux_us: Some(525.15),
            paper_protego_us: Some(531.13),
            prepare: no_prep,
            run: |f, _| {
                let _ = f
                    .sys
                    .kernel
                    .sys_mount(f.root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro");
                let _ = f.sys.kernel.sys_umount(f.root, "/mnt/cdrom");
            },
        },
        MicroOp {
            name: "setuid",
            paper_linux_us: Some(0.82),
            paper_protego_us: Some(0.83),
            prepare: no_prep,
            run: |f, _| {
                let uid = f.sys.kernel.sys_getuid(f.user).unwrap();
                let _ = f.sys.kernel.sys_setuid(f.user, uid);
            },
        },
        MicroOp {
            name: "setgid",
            paper_linux_us: Some(0.82),
            paper_protego_us: Some(0.83),
            prepare: no_prep,
            run: |f, _| {
                let gid = f.sys.kernel.sys_getgid(f.user).unwrap();
                let _ = f.sys.kernel.sys_setgid(f.user, gid);
            },
        },
        MicroOp {
            name: "ioctl",
            paper_linux_us: Some(2.76),
            paper_protego_us: Some(2.78),
            prepare: prep_modem,
            run: |f, p| {
                let _ = f.sys.kernel.sys_ioctl(
                    f.root,
                    p.fds[0],
                    IoctlCmd::Modem(ModemOpt::Baud(57600)),
                );
            },
        },
        MicroOp {
            name: "bind",
            paper_linux_us: Some(1.77),
            paper_protego_us: Some(1.81),
            prepare: no_prep,
            run: |f, _| {
                if let Ok(fd) = f
                    .sys
                    .kernel
                    .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
                {
                    let _ = f.sys.kernel.sys_bind(f.user, fd, Ipv4::ANY, 8088);
                    let _ = f.sys.kernel.sys_close(f.user, fd);
                }
            },
        },
        MicroOp {
            name: "fork+exit",
            paper_linux_us: Some(159.00),
            paper_protego_us: Some(158.00),
            prepare: no_prep,
            run: |f, _| {
                if let Ok(child) = f.sys.kernel.sys_fork(f.user) {
                    let _ = f.sys.kernel.sys_exit(child, 0);
                    let _ = f.sys.kernel.sys_wait(f.user, child);
                }
            },
        },
        MicroOp {
            name: "fork+execve",
            paper_linux_us: Some(554.00),
            paper_protego_us: Some(573.00),
            prepare: no_prep,
            run: |f, _| {
                let _ = f.sys.run(f.user, "/bin/id", &[], &[]);
            },
        },
        MicroOp {
            name: "fork+/bin/sh",
            paper_linux_us: Some(1360.00),
            paper_protego_us: Some(1413.00),
            prepare: no_prep,
            run: |f, _| {
                let _ = f.sys.run(f.user, "/bin/sh", &[], &[]);
            },
        },
        MicroOp {
            name: "0KB create+delete",
            paper_linux_us: Some(5.57 + 3.93),
            paper_protego_us: Some(5.43 + 3.79),
            prepare: no_prep,
            run: |f, _| {
                let _ = f.sys.kernel.write_file(f.user, "/tmp/c0", b"", Mode(0o644));
                let _ = f.sys.kernel.sys_unlink(f.user, "/tmp/c0");
            },
        },
        MicroOp {
            name: "10KB create+delete",
            paper_linux_us: Some(11.00 + 5.90),
            paper_protego_us: Some(10.80 + 5.85),
            prepare: no_prep,
            run: |f, _| {
                let data = [0u8; 10 * 1024];
                let _ = f
                    .sys
                    .kernel
                    .write_file(f.user, "/tmp/c10", &data, Mode(0o644));
                let _ = f.sys.kernel.sys_unlink(f.user, "/tmp/c10");
            },
        },
        MicroOp {
            name: "AF_UNIX",
            paper_linux_us: Some(9.30),
            paper_protego_us: Some(9.69),
            prepare: prep_socketpair,
            run: |f, p| {
                let _ = f.sys.kernel.sys_send(f.user, p.fds[0], b"x");
                let _ = f.sys.kernel.sys_recv(f.user, p.fds[1], 1);
            },
        },
        MicroOp {
            name: "Pipe",
            paper_linux_us: Some(6.73),
            paper_protego_us: Some(6.88),
            prepare: prep_pipe,
            run: |f, p| {
                let _ = f.sys.kernel.sys_write(f.user, p.fds[1], b"x");
                let mut buf = Vec::with_capacity(1);
                let _ = f.sys.kernel.sys_read(f.user, p.fds[0], &mut buf, 1);
            },
        },
        MicroOp {
            name: "TCP connect",
            paper_linux_us: Some(18.00),
            paper_protego_us: Some(18.55),
            prepare: prep_tcp_listener,
            run: |f, _| {
                if let Ok(cli) = f
                    .sys
                    .kernel
                    .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
                {
                    let _ = f.sys.kernel.sys_connect(f.user, cli, Ipv4::LOOPBACK, 9090);
                    let _ = f.sys.kernel.sys_close(f.user, cli);
                }
            },
        },
        MicroOp {
            name: "Local TCP lat",
            paper_linux_us: Some(19.63),
            paper_protego_us: Some(20.87),
            prepare: prep_tcp_pair,
            run: |f, p| {
                let _ = f.sys.kernel.sys_send(f.user, p.fds[0], b"ping");
                let _ = f.sys.kernel.sys_recv(f.user, p.fds[1], 4);
                let _ = f.sys.kernel.sys_send(f.user, p.fds[1], b"pong");
                let _ = f.sys.kernel.sys_recv(f.user, p.fds[0], 4);
            },
        },
        MicroOp {
            name: "Local UDP lat",
            paper_linux_us: Some(16.70),
            paper_protego_us: Some(17.90),
            prepare: prep_udp_pair,
            run: |f, p| {
                let _ =
                    f.sys
                        .kernel
                        .sys_sendto(f.user, p.fds[0], Ipv4::LOOPBACK, p.aux as u16, b"x");
                let _ = f.sys.kernel.sys_recv_packet(f.user, p.fds[1]);
            },
        },
        MicroOp {
            name: "Rem. UDP lat",
            paper_linux_us: Some(543.60),
            paper_protego_us: Some(578.30),
            prepare: prep_remote_udp,
            run: |f, p| {
                let _ = f
                    .sys
                    .kernel
                    .sys_sendto(f.user, p.fds[0], Ipv4::new(8, 8, 8, 8), 7, b"x");
                let _ = f.sys.kernel.sys_recv_packet(f.user, p.fds[0]);
            },
        },
        MicroOp {
            name: "Rem. TCP lat",
            paper_linux_us: Some(588.10),
            paper_protego_us: Some(631.50),
            prepare: prep_remote_tcp,
            run: |f, p| {
                let _ = f.sys.kernel.sys_send(f.user, p.fds[0], b"x");
                let _ = f.sys.kernel.sys_recv(f.user, p.fds[0], 1);
            },
        },
        MicroOp {
            name: "Pipe BW (64KB)",
            paper_linux_us: Some(64.0 * 1024.0 / 5316.60),
            paper_protego_us: Some(64.0 * 1024.0 / 5170.69),
            prepare: prep_pipe,
            run: |f, p| {
                let data = [7u8; 64 * 1024];
                let _ = f.sys.kernel.sys_write(f.user, p.fds[1], &data);
                let mut buf = Vec::with_capacity(64 * 1024);
                let _ = f.sys.kernel.sys_read(f.user, p.fds[0], &mut buf, 64 * 1024);
            },
        },
    ]
}

/// Cost of the typed-ABI boundary itself: the same `stat` measured three
/// ways — direct `sys_stat`, through [`sim_kernel::kernel::Kernel::dispatch`]
/// with an empty interceptor chain, and dispatched with a
/// [`sim_kernel::syscall::SyscallMeter`] attached. Returns
/// `(direct_ns, dispatched_ns, metered_ns)`.
pub fn dispatch_overhead(f: &mut Fixture, warmup: u32, iters: u32) -> (f64, f64, f64) {
    use sim_kernel::syscall::Syscall;

    let direct = {
        let sys = &mut f.sys;
        let user = f.user;
        crate::quick_time_ns(warmup, iters, || {
            let _ = sys.kernel.sys_stat(user, "/etc/motd");
        })
    };
    let dispatched = {
        let sys = &mut f.sys;
        let user = f.user;
        crate::quick_time_ns(warmup, iters, || {
            let _ = sys.kernel.dispatch(
                user,
                Syscall::Stat {
                    path: "/etc/motd".into(),
                },
            );
        })
    };
    let meter_slot = f.sys.attach_meter();
    let metered = {
        let sys = &mut f.sys;
        let user = f.user;
        crate::quick_time_ns(warmup, iters, || {
            let _ = sys.kernel.dispatch(
                user,
                Syscall::Stat {
                    path: "/etc/motd".into(),
                },
            );
        })
    };
    f.sys.kernel.remove_interceptor(meter_slot);
    (direct, dispatched, metered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;
    use userland::SystemMode;

    #[test]
    fn every_op_runs_on_both_modes() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut f = fixture(mode);
            for op in all_micro_ops() {
                let p = (op.prepare)(&mut f);
                for _ in 0..3 {
                    (op.run)(&mut f, &p);
                }
            }
        }
    }

    #[test]
    fn dispatch_overhead_measures_all_three_ways() {
        let mut f = fixture(SystemMode::Protego);
        let (direct, dispatched, metered) = dispatch_overhead(&mut f, 2, 20);
        assert!(direct > 0.0 && dispatched > 0.0 && metered > 0.0);
        // The meter must have fed class counters into the registry.
        assert!(f
            .sys
            .kernel
            .metrics
            .snapshot()
            .render()
            .contains("syscall_class_fs"));
    }

    #[test]
    fn ops_cover_the_modified_syscalls() {
        let names: Vec<_> = all_micro_ops().iter().map(|o| o.name).collect();
        for required in ["mount/umnt", "setuid", "setgid", "ioctl", "bind"] {
            assert!(names.contains(&required), "missing {}", required);
        }
        assert!(names.len() >= 20);
    }
}
