//! Macro workloads of Table 5: the Postal mail benchmark, the kernel
//! compile, and ApacheBench.

use crate::Fixture;
use sim_kernel::vfs::Mode;
use userland::bins::mail;
use userland::workload;

/// Result of a throughput workload.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock nanoseconds.
    pub elapsed_ns: u128,
}

impl Throughput {
    /// Operations per simulated minute of wall-clock time.
    pub fn per_minute(&self) -> f64 {
        self.ops as f64 / (self.elapsed_ns as f64 / 60e9)
    }

    /// Nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.elapsed_ns as f64 / self.ops as f64
    }
}

/// Starts the image's mail service and returns (server task, listen fd).
pub fn start_mta(f: &mut Fixture) -> (sim_kernel::Pid, i32) {
    let srv = workload::start_mail_service(&mut f.sys).expect("spawn mta");
    (srv.pid, srv.listen_fd)
}

/// The Postal benchmark: `messages` SMTP round-trips through the MTA.
pub fn postal(f: &mut Fixture, server: sim_kernel::Pid, fd: i32, messages: u64) -> Throughput {
    let start = std::time::Instant::now();
    for i in 0..messages {
        let rcpt = if i % 2 == 0 { "alice" } else { "bob" };
        let _ = mail::smtp_send(
            &mut f.sys,
            f.user,
            server,
            fd,
            rcpt,
            "postal benchmark body",
        );
    }
    Throughput {
        ops: messages,
        elapsed_ns: start.elapsed().as_nanos(),
    }
}

/// The kernel-compile stand-in: per "translation unit", fork+exec a
/// compiler process that reads the source and writes an object file —
/// the fork/exec/open/read/write mix that dominates a real build.
pub fn compile(f: &mut Fixture, units: u64) -> Throughput {
    // Lay out the "source tree" once.
    for i in 0..units {
        let _ = f.sys.kernel.write_file(
            f.user,
            &format!("/tmp/src{}.c", i),
            b"int main(void) { return 0; }\n",
            Mode(0o644),
        );
    }
    let start = std::time::Instant::now();
    for i in 0..units {
        // cc: fork + exec + read source + write object.
        let _ = f.sys.run(f.user, "/bin/sh", &[], &[]);
        let src = f
            .sys
            .kernel
            .read_file(f.user, &format!("/tmp/src{}.c", i))
            .unwrap_or_default();
        let _ = f
            .sys
            .kernel
            .write_file(f.user, &format!("/tmp/src{}.o", i), &src, Mode(0o644));
    }
    let t = Throughput {
        ops: units,
        elapsed_ns: start.elapsed().as_nanos(),
    };
    for i in 0..units {
        let _ = f.sys.kernel.sys_unlink(f.user, &format!("/tmp/src{}.c", i));
        let _ = f.sys.kernel.sys_unlink(f.user, &format!("/tmp/src{}.o", i));
    }
    t
}

/// Starts the image's web service and returns (server task, listen fd).
pub fn start_httpd(f: &mut Fixture) -> (sim_kernel::Pid, i32) {
    let srv = workload::start_web_service(&mut f.sys).expect("spawn httpd");
    (srv.pid, srv.listen_fd)
}

/// ApacheBench: `requests` HTTP round-trips issued in batches of
/// `concurrency` open connections (connect all, serve all, read all).
pub fn apache_bench(
    f: &mut Fixture,
    server: sim_kernel::Pid,
    fd: i32,
    requests: u64,
    concurrency: u64,
) -> Throughput {
    use sim_kernel::net::{Domain, Ipv4, SockType};
    let start = std::time::Instant::now();
    let mut done = 0u64;
    while done < requests {
        let batch = concurrency.min(requests - done);
        let mut clients = Vec::with_capacity(batch as usize);
        for _ in 0..batch {
            if let Ok(cli) = f
                .sys
                .kernel
                .sys_socket(f.user, Domain::Inet, SockType::Stream, 0)
            {
                if f.sys
                    .kernel
                    .sys_connect(f.user, cli, Ipv4::LOOPBACK, 80)
                    .is_ok()
                {
                    let _ = f
                        .sys
                        .kernel
                        .sys_send(f.user, cli, b"GET / HTTP/1.0\r\n\r\n");
                    clients.push(cli);
                }
            }
        }
        for _ in 0..clients.len() {
            let _ = mail::httpd_serve_one(&mut f.sys, server, fd);
        }
        for cli in clients {
            let _ = f.sys.kernel.sys_recv(f.user, cli, 65536);
            let _ = f.sys.kernel.sys_close(f.user, cli);
            done += 1;
        }
    }
    Throughput {
        ops: requests,
        elapsed_ns: start.elapsed().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;
    use userland::SystemMode;

    #[test]
    fn postal_runs_on_both_modes() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut f = fixture(mode);
            let (mta, fd) = start_mta(&mut f);
            let t = postal(&mut f, mta, fd, 10);
            assert_eq!(t.ops, 10);
            // Mail actually landed.
            let init = f.sys.init_pid();
            let spool = f.sys.kernel.read_to_string(init, "/var/mail/bob").unwrap();
            assert!(spool.contains("postal benchmark body"));
        }
    }

    #[test]
    fn compile_runs_and_cleans_up() {
        let mut f = fixture(SystemMode::Protego);
        let t = compile(&mut f, 5);
        assert_eq!(t.ops, 5);
        assert!(f.sys.kernel.read_file(f.user, "/tmp/src0.o").is_err());
    }

    #[test]
    fn apache_bench_serves_all_requests() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut f = fixture(mode);
            let (web, fd) = start_httpd(&mut f);
            let t = apache_bench(&mut f, web, fd, 20, 5);
            assert_eq!(t.ops, 20);
            assert!(t.ns_per_op() > 0.0);
        }
    }
}
