//! A dependency-free JSON writer, parser and the `BENCH_table5.json`
//! schema validator.
//!
//! The bench crate must not pull serde into the workspace, so the
//! machine-readable results file is produced and checked with this small
//! hand-rolled subset: objects, arrays, strings, finite numbers, booleans
//! and null — exactly what the table emitter needs, round-trippable by
//! any real JSON tool.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                // NaN/inf have no JSON representation; emit null so the
                // document stays parseable whatever the measurement did.
                if n.is_finite() {
                    out.push_str(&format!("{}", n));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for inclusion between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {:?} at byte {}", text, start))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// The schema tag of legacy best-of-two Table 5 results files.
pub const TABLE5_SCHEMA: &str = "bench_table5/v1";

/// The schema tag of Table 5 documents whose micro rows were measured
/// with the paired interleaved median-of-K protocol: the document carries
/// `runs_per_mode` and every micro row carries its per-run samples.
pub const TABLE5_SCHEMA_V2: &str = "bench_table5/v2";

/// The per-row overhead budget enforced on every micro row of a full
/// (non-quick) `bench_table5/v2` document, in percent.
pub const MICRO_BUDGET_PCT: f64 = 10.0;

/// The overhead budget for the `dispatch_seccomp` section of a full
/// (non-quick) `bench_table5/v2` document, in percent: an enforcing
/// seccomp profile's flat array lookup must stay within 1% of the bare
/// dispatch row.
pub const DISPATCH_SECCOMP_BUDGET_PCT: f64 = 1.0;

fn require_num(row: &Value, field: &str, ctx: &str) -> Result<f64, String> {
    row.get(field)
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("{}: field {:?} missing or not a finite number", ctx, field))
}

fn require_rows(doc: &Value, key: &str) -> Result<Vec<(String, f64, f64)>, String> {
    let rows = doc
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing {:?} array", key))?;
    if rows.is_empty() {
        return Err(format!("{:?} array is empty", key));
    }
    let mut out = Vec::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{} row without a string name", key))?;
        let ctx = format!("{} row {:?}", key, name);
        let linux = require_num(row, "linux_ns", &ctx)?;
        let protego = require_num(row, "protego_ns", &ctx)?;
        require_num(row, "overhead_pct", &ctx)?;
        if linux <= 0.0 || protego <= 0.0 {
            return Err(format!("{}: non-positive measurement", ctx));
        }
        out.push((name.to_string(), linux, protego));
    }
    Ok(out)
}

fn cache_hits(doc: &Value, name: &str) -> Result<f64, String> {
    let metrics = doc
        .get("cache_metrics")
        .ok_or("missing \"cache_metrics\" object")?;
    let entry = metrics
        .get(name)
        .ok_or_else(|| format!("cache_metrics missing {:?}", name))?;
    require_num(entry, "hits", &format!("cache_metrics.{}", name))
}

/// Validates a `BENCH_table5.json` document against the acceptance
/// criteria: schema tag, non-empty numeric micro *and* macro rows, the two
/// required hot-path rows at ≥2x speedup, and nonzero dcache plus
/// profile-cache hit counters.
///
/// `bench_table5/v2` documents must additionally carry `runs_per_mode`
/// (>= 3) and per-run sample arrays of exactly that length on every micro
/// row, with the reported median inside the sample range; full (non-quick)
/// v2 documents must keep every micro row within [`MICRO_BUDGET_PCT`].
/// v2 documents must also carry the `dispatch_seccomp` section with the
/// same per-run evidence, bounded by [`DISPATCH_SECCOMP_BUDGET_PCT`] on
/// full runs.
pub fn validate_table5(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {}", e))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" string")?;
    if schema != TABLE5_SCHEMA && schema != TABLE5_SCHEMA_V2 {
        return Err(format!(
            "schema {:?}, expected {:?} or {:?}",
            schema, TABLE5_SCHEMA, TABLE5_SCHEMA_V2
        ));
    }
    require_rows(&doc, "micro")?;
    require_rows(&doc, "macro")?;
    if schema == TABLE5_SCHEMA_V2 {
        validate_table5_micro_v2(&doc)?;
    } else if doc.get("runs_per_mode").is_some() {
        return Err("v1 document carries \"runs_per_mode\" (should be tagged v2)".into());
    }

    let hotpath = doc
        .get("hotpath")
        .and_then(Value::as_arr)
        .ok_or("missing \"hotpath\" array")?;
    for required in ["path_resolution", "file_open"] {
        let row = hotpath
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some(required))
            .ok_or_else(|| format!("hotpath missing required row {:?}", required))?;
        let ctx = format!("hotpath row {:?}", required);
        require_num(row, "before_ns", &ctx)?;
        require_num(row, "after_ns", &ctx)?;
        let speedup = require_num(row, "speedup", &ctx)?;
        if speedup < 2.0 {
            return Err(format!(
                "{}: speedup {:.2}x below the required 2x",
                ctx, speedup
            ));
        }
    }

    if cache_hits(&doc, "dcache")? <= 0.0 {
        return Err("dcache reported zero hits".into());
    }
    let profile_hits = ["apparmor_binary_lookup", "protego_keyfile_lookup"]
        .iter()
        .filter_map(|n| cache_hits(&doc, n).ok())
        .sum::<f64>();
    if profile_hits <= 0.0 {
        return Err("profile caches reported zero hits".into());
    }
    Ok(())
}

/// Checks one per-run sample array of a v2 row: exactly `runs` finite
/// positive samples, with the reported median inside the sample range.
fn require_run_samples(
    row: &Value,
    field: &str,
    median_field: &str,
    runs: f64,
    ctx: &str,
) -> Result<(), String> {
    let arr = row.get(field).and_then(Value::as_arr).ok_or_else(|| {
        format!(
            "{}: missing {:?} (v2 rows carry per-run samples)",
            ctx, field
        )
    })?;
    if arr.len() != runs as usize {
        return Err(format!(
            "{}: {} has {} samples, document says runs_per_mode={}",
            ctx,
            field,
            arr.len(),
            runs
        ));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in arr {
        let n = v
            .as_f64()
            .filter(|n| n.is_finite() && *n > 0.0)
            .ok_or_else(|| format!("{}: {} sample is not a finite positive number", ctx, field))?;
        lo = lo.min(n);
        hi = hi.max(n);
    }
    let median = require_num(row, median_field, ctx)?;
    if median < lo || median > hi {
        return Err(format!(
            "{}: {} {} outside its own sample range [{}, {}]",
            ctx, median_field, median, lo, hi
        ));
    }
    Ok(())
}

/// Validates the v2-only parts of a Table 5 document: the paired
/// median-of-K evidence on every micro row and on the `dispatch_seccomp`
/// section, and (for full runs) the per-row micro overhead budget plus
/// the seccomp hot-path budget.
fn validate_table5_micro_v2(doc: &Value) -> Result<(), String> {
    let runs = require_num(doc, "runs_per_mode", "document")?;
    if runs < 3.0 {
        return Err(format!(
            "runs_per_mode {} below the minimum 3 for a median to discard outliers",
            runs
        ));
    }
    let quick = matches!(doc.get("quick"), Some(Value::Bool(true)));
    let rows = doc
        .get("micro")
        .and_then(Value::as_arr)
        .ok_or("missing \"micro\" array")?;
    for row in rows {
        let name = row
            .get("name")
            .and_then(Value::as_str)
            .ok_or("micro row without a string name")?;
        let ctx = format!("micro row {:?}", name);
        require_run_samples(row, "linux_runs_ns", "linux_ns", runs, &ctx)?;
        require_run_samples(row, "protego_runs_ns", "protego_ns", runs, &ctx)?;
        if !quick {
            let overhead = require_num(row, "overhead_pct", &ctx)?;
            if overhead > MICRO_BUDGET_PCT {
                return Err(format!(
                    "{}: overhead {:.2}% exceeds the {:.0}% micro budget",
                    ctx, overhead, MICRO_BUDGET_PCT
                ));
            }
        }
    }

    let row = doc
        .get("dispatch_seccomp")
        .ok_or("v2 document missing \"dispatch_seccomp\" object")?;
    let ctx = "dispatch_seccomp";
    require_run_samples(row, "base_runs_ns", "base_ns", runs, ctx)?;
    require_run_samples(row, "seccomp_runs_ns", "seccomp_ns", runs, ctx)?;
    if !quick {
        let overhead = require_num(row, "overhead_pct", ctx)?;
        if overhead > DISPATCH_SECCOMP_BUDGET_PCT {
            return Err(format!(
                "{}: overhead {:.2}% exceeds the {:.0}% seccomp hot-path budget",
                ctx, overhead, DISPATCH_SECCOMP_BUDGET_PCT
            ));
        }
    }
    Ok(())
}

/// The schema tag of per-thread-only `BENCH_macro.json` documents.
pub const MACRO_SCHEMA: &str = "bench_macro/v1";

/// The schema tag of documents that also carry shared-kernel contention
/// curves (the `shared` section).
pub const MACRO_SCHEMA_V2: &str = "bench_macro/v2";

fn require_bool(v: &Value, field: &str, ctx: &str) -> Result<bool, String> {
    match v.get(field) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("{}: field {:?} missing or not a bool", ctx, field)),
    }
}

/// Validates a `BENCH_macro.json` document against the acceptance
/// criteria: schema tag, both `web` and `mail` workload curves with
/// finite positive throughput at every fleet size, finite overhead, and
/// a clean soak (storm fired, zero panicked workers, zero privileged
/// artifacts). Full (non-smoke) documents must additionally cover fleet
/// sizes 1/2/4/8 and show ≥3x aggregate Protego scaling from 1 to 8
/// workers per workload.
///
/// `bench_macro/v2` documents must additionally carry the shared-kernel
/// `shared` section: contention
/// curves for both workloads at 1/8/32/128 workers (1/8 in smoke), ≥2.5×
/// Protego throughput from 1 to 8 workers on one kernel, and ≤8% Protego
/// overhead at the 8-worker contention point.
pub fn validate_macro(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {}", e))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" string")?;
    if schema != MACRO_SCHEMA && schema != MACRO_SCHEMA_V2 {
        return Err(format!(
            "schema {:?}, expected {:?} or {:?}",
            schema, MACRO_SCHEMA, MACRO_SCHEMA_V2
        ));
    }
    let smoke = require_bool(&doc, "smoke", "document")?;
    if schema == MACRO_SCHEMA_V2 {
        validate_macro_shared(&doc, smoke)?;
    } else if doc.get("shared").is_some() {
        return Err("v1 document carries a \"shared\" section (should be tagged v2)".into());
    }

    let workloads = doc
        .get("workloads")
        .and_then(Value::as_arr)
        .ok_or("missing \"workloads\" array")?;
    for required in ["web", "mail"] {
        let wl = workloads
            .iter()
            .find(|w| w.get("name").and_then(Value::as_str) == Some(required))
            .ok_or_else(|| format!("workloads missing required entry {:?}", required))?;
        let points = wl
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("workload {:?} without a points array", required))?;
        if points.is_empty() {
            return Err(format!("workload {:?} has no points", required));
        }
        let mut sizes = Vec::new();
        for p in points {
            let ctx = format!("workload {:?} point", required);
            let workers = require_num(p, "workers", &ctx)?;
            let ctx = format!("workload {:?} x{}", required, workers);
            sizes.push(workers as u64);
            for field in ["legacy_ops_per_sec", "protego_ops_per_sec"] {
                if require_num(p, field, &ctx)? <= 0.0 {
                    return Err(format!("{}: non-positive {}", ctx, field));
                }
            }
            require_num(p, "overhead_pct", &ctx)?;
        }
        if !smoke {
            if sizes != [1, 2, 4, 8] {
                return Err(format!(
                    "workload {:?} fleet sizes {:?}, expected [1, 2, 4, 8]",
                    required, sizes
                ));
            }
            let scaling = require_num(wl, "protego_scaling_1_to_max", &format!("{:?}", required))?;
            if scaling < 3.0 {
                return Err(format!(
                    "workload {:?} scaled only {:.2}x from 1 to 8 workers (need >= 3x)",
                    required, scaling
                ));
            }
        }
    }

    let soak = doc.get("soak").ok_or("missing \"soak\" object")?;
    if !require_bool(soak, "completed", "soak")? {
        return Err("soak did not complete".into());
    }
    if require_num(soak, "injected", "soak")? <= 0.0 {
        return Err("soak storm never injected a fault".into());
    }
    if require_num(soak, "panicked_workers", "soak")? != 0.0 {
        return Err("soak had panicked workers".into());
    }
    if require_num(soak, "privileged_artifacts", "soak")? != 0.0 {
        return Err("soak left privileged artifacts".into());
    }
    Ok(())
}

/// Validates the `shared` section of a `bench_macro/v2` document: the
/// shared-kernel contention curves and their gated criteria.
fn validate_macro_shared(doc: &Value, smoke: bool) -> Result<(), String> {
    let shared = doc
        .get("shared")
        .ok_or("v2 document missing \"shared\" object")?;
    let workloads = shared
        .get("workloads")
        .and_then(Value::as_arr)
        .ok_or("shared section missing \"workloads\" array")?;
    for required in ["web", "mail"] {
        let wl = workloads
            .iter()
            .find(|w| w.get("name").and_then(Value::as_str) == Some(required))
            .ok_or_else(|| format!("shared workloads missing required entry {:?}", required))?;
        let points = wl
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("shared workload {:?} without a points array", required))?;
        let mut sizes = Vec::new();
        let mut overhead_at_8 = None;
        for p in points {
            let ctx = format!("shared workload {:?} point", required);
            let workers = require_num(p, "workers", &ctx)?;
            let ctx = format!("shared workload {:?} x{}", required, workers);
            sizes.push(workers as u64);
            for field in ["legacy_ops_per_sec", "protego_ops_per_sec"] {
                if require_num(p, field, &ctx)? <= 0.0 {
                    return Err(format!("{}: non-positive {}", ctx, field));
                }
            }
            let overhead = require_num(p, "overhead_pct", &ctx)?;
            if workers as u64 == 8 {
                overhead_at_8 = Some(overhead);
            }
        }
        let expected: &[u64] = if smoke { &[1, 8] } else { &[1, 8, 32, 128] };
        if sizes != expected {
            return Err(format!(
                "shared workload {:?} worker counts {:?}, expected {:?}",
                required, sizes, expected
            ));
        }
        if !smoke {
            let scaling = require_num(
                wl,
                "protego_scaling_1_to_8",
                &format!("shared {:?}", required),
            )?;
            if scaling < 2.5 {
                return Err(format!(
                    "shared workload {:?} scaled only {:.2}x from 1 to 8 workers on one kernel (need >= 2.5x)",
                    required, scaling
                ));
            }
            match overhead_at_8 {
                Some(o) if o <= 8.0 => {}
                Some(o) => {
                    return Err(format!(
                        "shared workload {:?}: protego overhead {:.2}% at 8 workers (budget <= 8%)",
                        required, o
                    ));
                }
                None => {
                    return Err(format!(
                        "shared workload {:?} has no 8-worker contention point",
                        required
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The schema tag every generated `BENCH_profile.json` carries.
pub const PROFILE_SCHEMA: &str = "bench_profile/v1";

/// Validates a `bench_profile/v1` document: schema tag, one run per mode
/// (`legacy` and `protego`), each with positive dispatched wall time, a
/// non-empty pathway table whose rows carry finite timing fields, and —
/// the pipeline's acceptance criterion — at least 95% of dispatched wall
/// time attributed to named pathways.
pub fn validate_profile(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {}", e))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" string")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!(
            "schema {:?}, expected {:?}",
            schema, PROFILE_SCHEMA
        ));
    }
    require_bool(&doc, "smoke", "document")?;
    let runs = doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("missing \"runs\" array")?;
    for required in ["legacy", "protego"] {
        let run = runs
            .iter()
            .find(|r| r.get("mode").and_then(Value::as_str) == Some(required))
            .ok_or_else(|| format!("runs missing required mode {:?}", required))?;
        let ctx = format!("run {:?}", required);
        if require_num(run, "root_total_ns", &ctx)? <= 0.0 {
            return Err(format!("{}: no dispatched wall time recorded", ctx));
        }
        require_num(run, "root_spans", &ctx)?;
        require_num(run, "attributed_self_ns", &ctx)?;
        let pct = require_num(run, "attributed_pct", &ctx)?;
        if pct < 95.0 {
            return Err(format!(
                "{}: only {:.2}% of dispatched time attributed (need >= 95%)",
                ctx, pct
            ));
        }
        let pathways = run
            .get("pathways")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{} without a pathways array", ctx))?;
        if pathways.is_empty() {
            return Err(format!("{}: pathway table is empty", ctx));
        }
        for p in pathways {
            let name = p
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{}: pathway row without a string name", ctx))?;
            let ctx = format!("{} pathway {:?}", ctx, name);
            for field in [
                "count", "total_ns", "self_ns", "pct", "min_ns", "p50_ns", "p95_ns", "p99_ns",
                "max_ns",
            ] {
                require_num(p, field, &ctx)?;
            }
        }
    }
    Ok(())
}

/// The schema tag of committed `SECCOMP_PROFILES.json` documents.
pub const SECCOMP_SCHEMA: &str = "seccomp_profiles/v1";

/// The acceptance ceiling on the average per-binary ABI reachability a
/// `seccomp_profiles/v1` document may report, in percent.
pub const SECCOMP_AVG_REACHABLE_PCT: f64 = 50.0;

/// Validates a `seccomp_profiles/v1` document (`SECCOMP_PROFILES.json`):
/// schema tag, `abi_count` matching the typed ABI, a non-empty `binaries`
/// array whose entries carry a unique binary path, a duplicate-free
/// allowlist of real ABI syscall names with consistent `count`/`pct`
/// fields, and an `average_pct` that both matches the per-binary numbers
/// and stays under [`SECCOMP_AVG_REACHABLE_PCT`] — the measured
/// attack-surface-reduction acceptance gate.
pub fn validate_seccomp_profiles(text: &str) -> Result<(), String> {
    use sim_kernel::syscall::Syscall;

    let doc = parse(text).map_err(|e| format!("not valid JSON: {}", e))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" string")?;
    if schema != SECCOMP_SCHEMA {
        return Err(format!(
            "schema {:?}, expected {:?}",
            schema, SECCOMP_SCHEMA
        ));
    }
    let abi = require_num(&doc, "abi_count", "document")?;
    if abi != Syscall::COUNT as f64 {
        return Err(format!(
            "abi_count {} does not match the {}-variant typed ABI",
            abi,
            Syscall::COUNT
        ));
    }
    let binaries = doc
        .get("binaries")
        .and_then(Value::as_arr)
        .ok_or("missing \"binaries\" array")?;
    if binaries.is_empty() {
        return Err("\"binaries\" array is empty (nothing was profiled)".into());
    }
    let mut seen_binaries = std::collections::BTreeSet::new();
    let mut pct_sum = 0.0;
    for b in binaries {
        let binary = b
            .get("binary")
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("binaries entry without a non-empty \"binary\" string")?;
        let ctx = format!("profile {:?}", binary);
        if !seen_binaries.insert(binary.to_string()) {
            return Err(format!("{}: duplicate binary entry", ctx));
        }
        b.get("default")
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("{}: missing \"default\" action string", ctx))?;
        let calls = b
            .get("syscalls")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{}: missing \"syscalls\" array", ctx))?;
        let mut seen_calls = std::collections::BTreeSet::new();
        for c in calls {
            let name = c
                .as_str()
                .ok_or_else(|| format!("{}: non-string syscall entry", ctx))?;
            if Syscall::name_index(name).is_none() {
                return Err(format!("{}: unknown syscall name {:?}", ctx, name));
            }
            if !seen_calls.insert(name) {
                return Err(format!("{}: duplicate syscall {:?}", ctx, name));
            }
        }
        let count = require_num(b, "count", &ctx)?;
        if count != calls.len() as f64 {
            return Err(format!(
                "{}: count {} disagrees with {} listed syscalls",
                ctx,
                count,
                calls.len()
            ));
        }
        let pct = require_num(b, "pct", &ctx)?;
        let expected = count / abi * 100.0;
        if (pct - expected).abs() > 0.05 {
            return Err(format!(
                "{}: pct {:.3} inconsistent with count {} of {} ({:.3})",
                ctx, pct, count, abi, expected
            ));
        }
        pct_sum += pct;
    }
    let average = require_num(&doc, "average_pct", "document")?;
    let expected = pct_sum / binaries.len() as f64;
    if (average - expected).abs() > 0.05 {
        return Err(format!(
            "average_pct {:.3} inconsistent with the per-binary percentages ({:.3})",
            average, expected
        ));
    }
    if average >= SECCOMP_AVG_REACHABLE_PCT {
        return Err(format!(
            "average_pct {:.1} is not under the {:.0}% attack-surface ceiling",
            average, SECCOMP_AVG_REACHABLE_PCT
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::Obj(vec![
            ("s".into(), Value::Str("a\"b\\c\nd".into())),
            ("n".into(), Value::Num(-12.5)),
            (
                "a".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Num(3.0)]),
            ),
            ("o".into(), Value::Obj(vec![])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"\\u0041\\n\" , null ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("A\n"));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    fn valid_doc() -> String {
        r#"{
          "schema": "bench_table5/v1",
          "quick": true,
          "micro": [{"name":"read","linux_ns":90.0,"protego_ns":91.0,"overhead_pct":1.1,"paper_overhead_pct":0.0}],
          "macro": [{"name":"Postal (msg)","linux_ns":900.0,"protego_ns":910.0,"overhead_pct":1.1,"paper_overhead_pct":null}],
          "hotpath": [
            {"name":"glob_match","before_ns":100.0,"after_ns":10.0,"speedup":10.0},
            {"name":"path_resolution","before_ns":100.0,"after_ns":20.0,"speedup":5.0},
            {"name":"file_open","before_ns":100.0,"after_ns":25.0,"speedup":4.0}
          ],
          "cache_metrics": {
            "dcache": {"hits":10,"misses":2,"invalidations":1},
            "apparmor_binary_lookup": {"hits":5,"misses":1,"invalidations":0}
          }
        }"#
        .to_string()
    }

    #[test]
    fn validator_accepts_a_good_document() {
        validate_table5(&valid_doc()).unwrap();
    }

    #[test]
    fn validator_rejects_slow_hotpath_and_cold_caches() {
        let slow = valid_doc().replace("\"speedup\":5.0", "\"speedup\":1.4");
        assert!(validate_table5(&slow).unwrap_err().contains("below"));
        let cold = valid_doc().replace("\"hits\":10", "\"hits\":0");
        assert!(validate_table5(&cold).unwrap_err().contains("dcache"));
        let wrong_schema = valid_doc().replace("bench_table5/v1", "v0");
        assert!(validate_table5(&wrong_schema).is_err());
        assert!(validate_table5("not json").is_err());
        let no_macro = valid_doc().replace("\"macro\"", "\"macros\"");
        assert!(validate_table5(&no_macro).unwrap_err().contains("macro"));
    }

    fn valid_macro_doc() -> String {
        r#"{
          "schema": "bench_macro/v1",
          "smoke": false,
          "iters_per_worker": 300,
          "workloads": [
            {"name":"web","points":[
              {"workers":1,"legacy_ops_per_sec":100.0,"protego_ops_per_sec":95.0,"overhead_pct":5.2},
              {"workers":2,"legacy_ops_per_sec":200.0,"protego_ops_per_sec":190.0,"overhead_pct":5.2},
              {"workers":4,"legacy_ops_per_sec":400.0,"protego_ops_per_sec":380.0,"overhead_pct":5.2},
              {"workers":8,"legacy_ops_per_sec":800.0,"protego_ops_per_sec":760.0,"overhead_pct":5.2}
            ],"protego_scaling_1_to_max":8.0},
            {"name":"mail","points":[
              {"workers":1,"legacy_ops_per_sec":50.0,"protego_ops_per_sec":48.0,"overhead_pct":4.1},
              {"workers":2,"legacy_ops_per_sec":100.0,"protego_ops_per_sec":96.0,"overhead_pct":4.1},
              {"workers":4,"legacy_ops_per_sec":200.0,"protego_ops_per_sec":192.0,"overhead_pct":4.1},
              {"workers":8,"legacy_ops_per_sec":400.0,"protego_ops_per_sec":384.0,"overhead_pct":4.1}
            ],"protego_scaling_1_to_max":8.0}
          ],
          "soak": {"workers":8,"fault_rate_pct":1,"injected":42,"ops":2400,"failures":31,
                   "panicked_workers":0,"privileged_artifacts":0,"completed":true}
        }"#
        .to_string()
    }

    fn valid_profile_doc() -> String {
        r#"{
          "schema": "bench_profile/v1",
          "smoke": true,
          "runs": [
            {"mode":"legacy","ops":100,"root_spans":1200,"root_total_ns":900000,
             "attributed_self_ns":890000,"attributed_pct":98.9,
             "pathways":[{"name":"sys_fs","count":800,"total_ns":500000,"self_ns":400000,
                          "pct":44.4,"min_ns":100,"p50_ns":512,"p95_ns":2047,"p99_ns":4095,"max_ns":9000}]},
            {"mode":"protego","ops":100,"root_spans":1300,"root_total_ns":1000000,
             "attributed_self_ns":990000,"attributed_pct":99.0,
             "pathways":[{"name":"sys_fs","count":800,"total_ns":520000,"self_ns":410000,
                          "pct":41.0,"min_ns":100,"p50_ns":512,"p95_ns":2047,"p99_ns":4095,"max_ns":9000},
                         {"name":"lsm_file_open","count":800,"total_ns":40000,"self_ns":40000,
                          "pct":4.0,"min_ns":20,"p50_ns":63,"p95_ns":127,"p99_ns":255,"max_ns":400}]}
          ]
        }"#
        .to_string()
    }

    #[test]
    fn profile_validator_accepts_a_good_document() {
        validate_profile(&valid_profile_doc()).unwrap();
    }

    #[test]
    fn profile_validator_enforces_attribution_modes_and_shape() {
        let leaky =
            valid_profile_doc().replace("\"attributed_pct\":99.0", "\"attributed_pct\":80.0");
        assert!(validate_profile(&leaky).unwrap_err().contains("95%"));
        let one_mode = valid_profile_doc().replace("\"mode\":\"legacy\"", "\"mode\":\"linux\"");
        assert!(validate_profile(&one_mode).unwrap_err().contains("legacy"));
        let no_paths = valid_profile_doc().replace("\"p50_ns\":512,", "");
        assert!(validate_profile(&no_paths).unwrap_err().contains("p50_ns"));
        let wrong_schema = valid_profile_doc().replace("bench_profile/v1", "bench_profile/v0");
        assert!(validate_profile(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        assert!(validate_profile("not json").is_err());
    }

    #[test]
    fn macro_validator_accepts_a_good_document() {
        validate_macro(&valid_macro_doc()).unwrap();
    }

    #[test]
    fn macro_validator_enforces_scaling_soak_and_shape() {
        let flat = valid_macro_doc().replace(
            "\"protego_scaling_1_to_max\":8.0",
            "\"protego_scaling_1_to_max\":1.2",
        );
        assert!(validate_macro(&flat).unwrap_err().contains("3x"));
        let dirty =
            valid_macro_doc().replace("\"privileged_artifacts\":0", "\"privileged_artifacts\":2");
        assert!(validate_macro(&dirty).unwrap_err().contains("artifacts"));
        let panicky = valid_macro_doc().replace("\"panicked_workers\":0", "\"panicked_workers\":1");
        assert!(validate_macro(&panicky).unwrap_err().contains("panicked"));
        let no_storm = valid_macro_doc().replace("\"injected\":42", "\"injected\":0");
        assert!(validate_macro(&no_storm).unwrap_err().contains("injected"));
        let no_mail = valid_macro_doc().replace("\"name\":\"mail\"", "\"name\":\"imap\"");
        assert!(validate_macro(&no_mail).unwrap_err().contains("mail"));
        let short = valid_macro_doc().replace(
            "{\"workers\":8,\"legacy_ops_per_sec\":800.0,\"protego_ops_per_sec\":760.0,\"overhead_pct\":5.2}\n            ],",
            "],",
        );
        assert!(validate_macro(&short).is_err());
        assert!(validate_macro("not json").is_err());
        // Smoke documents skip the 1/2/4/8 + scaling requirements.
        let smoke = valid_macro_doc()
            .replace("\"smoke\": false", "\"smoke\": true")
            .replace(
                "\"protego_scaling_1_to_max\":8.0",
                "\"protego_scaling_1_to_max\":1.0",
            );
        validate_macro(&smoke).unwrap();
    }

    fn valid_v2_doc() -> String {
        valid_doc()
            .replace("bench_table5/v1", "bench_table5/v2")
            .replace(
                "\"quick\": true,",
                "\"quick\": false,\n          \"runs_per_mode\": 3,",
            )
            .replace(
                "\"linux_ns\":90.0,\"protego_ns\":91.0,",
                "\"linux_ns\":90.0,\"protego_ns\":91.0,\"linux_runs_ns\":[89.0,90.0,92.0],\"protego_runs_ns\":[90.5,91.0,93.0],",
            )
            .replace(
                "\"cache_metrics\": {",
                "\"dispatch_seccomp\": {\"base_ns\":200.0,\"seccomp_ns\":201.0,\"overhead_pct\":0.5,\n            \"base_runs_ns\":[199.0,200.0,202.0],\"seccomp_runs_ns\":[200.0,201.0,203.0]},\n          \"cache_metrics\": {",
            )
    }

    #[test]
    fn v2_validator_accepts_and_gates_the_seccomp_dispatch_row() {
        validate_table5(&valid_v2_doc()).unwrap();
        let missing = valid_v2_doc().replace("\"dispatch_seccomp\"", "\"dispatch_secomp\"");
        assert!(validate_table5(&missing)
            .unwrap_err()
            .contains("dispatch_seccomp"));
        let hot = valid_v2_doc().replace("\"overhead_pct\":0.5", "\"overhead_pct\":1.7");
        assert!(validate_table5(&hot)
            .unwrap_err()
            .contains("seccomp hot-path budget"));
        // Quick documents carry the evidence but skip the budget.
        let quick = valid_v2_doc()
            .replace("\"quick\": false", "\"quick\": true")
            .replace("\"overhead_pct\":0.5", "\"overhead_pct\":1.7");
        validate_table5(&quick).unwrap();
        let skewed = valid_v2_doc().replace("\"seccomp_ns\":201.0", "\"seccomp_ns\":250.0");
        assert!(validate_table5(&skewed)
            .unwrap_err()
            .contains("sample range"));
    }

    fn valid_seccomp_doc() -> String {
        r#"{
          "schema": "seccomp_profiles/v1",
          "abi_count": 46,
          "binaries": [
            {"binary":"/bin/ping","default":"deny(EPERM)",
             "syscalls":["socket","sendto","close","getuid"],"count":4,"pct":8.695652173913043},
            {"binary":"/bin/sh","default":"deny(EPERM)",
             "syscalls":["open","read","write","close","fork"],"count":5,"pct":10.869565217391305}
          ],
          "average_pct": 9.782608695652174
        }"#
        .to_string()
    }

    #[test]
    fn seccomp_validator_accepts_a_good_document() {
        validate_seccomp_profiles(&valid_seccomp_doc()).unwrap();
    }

    #[test]
    fn seccomp_validator_enforces_names_consistency_and_ceiling() {
        let bad_name = valid_seccomp_doc().replace("\"sendto\"", "\"frobnicate\"");
        assert!(validate_seccomp_profiles(&bad_name)
            .unwrap_err()
            .contains("frobnicate"));
        let dup_call = valid_seccomp_doc().replace("\"sendto\"", "\"socket\"");
        assert!(validate_seccomp_profiles(&dup_call)
            .unwrap_err()
            .contains("duplicate syscall"));
        let dup_bin = valid_seccomp_doc().replace("/bin/sh", "/bin/ping");
        assert!(validate_seccomp_profiles(&dup_bin)
            .unwrap_err()
            .contains("duplicate binary"));
        let wrong_count = valid_seccomp_doc().replace("\"count\":4", "\"count\":6");
        assert!(validate_seccomp_profiles(&wrong_count)
            .unwrap_err()
            .contains("disagrees"));
        let wrong_abi = valid_seccomp_doc().replace("\"abi_count\": 46", "\"abi_count\": 64");
        assert!(validate_seccomp_profiles(&wrong_abi)
            .unwrap_err()
            .contains("typed ABI"));
        let wrong_avg =
            valid_seccomp_doc().replace("\"average_pct\": 9.78", "\"average_pct\": 19.78");
        assert!(validate_seccomp_profiles(&wrong_avg)
            .unwrap_err()
            .contains("inconsistent"));
        // A consistent document whose single profile reaches 30/46 of the
        // ABI averages 65% — over the 50% attack-surface ceiling.
        use sim_kernel::syscall::Syscall;
        let names: Vec<String> = Syscall::NAMES
            .iter()
            .take(30)
            .map(|n| format!("\"{}\"", n))
            .collect();
        let pct = 30.0 / Syscall::COUNT as f64 * 100.0;
        let wide_open = format!(
            "{{\"schema\":\"seccomp_profiles/v1\",\"abi_count\":{},\"binaries\":[{{\"binary\":\"/bin/wide\",\"default\":\"deny(EPERM)\",\"syscalls\":[{}],\"count\":30,\"pct\":{}}}],\"average_pct\":{}}}",
            Syscall::COUNT,
            names.join(","),
            pct,
            pct
        );
        assert!(validate_seccomp_profiles(&wide_open)
            .unwrap_err()
            .contains("ceiling"));
        assert!(validate_seccomp_profiles("not json").is_err());
    }
}
