//! Regenerates every table of the paper from the reproduction:
//!
//! ```text
//! tables [table1|table2|table3|table4|table5|table6|table7|table8|ablations|all] [--quick]
//! tables bench-json [--quick] [--out PATH]   # write BENCH_table5.json
//! tables bench-macro [--smoke] [--shared] [--out PATH]  # fleet macro benchmark -> BENCH_macro.json (--shared adds one-kernel contention curves, schema v2)
//! tables profile [--smoke] [--out PATH]      # overhead attribution -> BENCH_profile.json
//! tables bench-verify PATH                   # validate a results file (schema-dispatched)
//! tables replay-smoke                        # record + replay determinism check
//! tables seccomp-derive [--smoke] [--check] [--out PATH]  # derive per-binary allowlists -> SECCOMP_PROFILES.json
//! tables seccomp-report [PATH]               # KASR-style attack-surface report from a profiles file
//! tables fuzz [--seed N] [--mins M] [--smoke]  # adversarial differential fuzzing (legacy vs Protego)
//! ```

use bench::{json, macro_fleet, profile, seccomp_derive, table5};
use setuid_study::render;
use setuid_study::summary::{table1, MeasuredInputs};
use userland::suite::{run_divergence_suite, run_functional_suite, run_service_suite};
use userland::{boot, SystemMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    if which == "bench-json" {
        run_bench_json(quick, &args);
        return;
    }
    if which == "bench-macro" {
        run_bench_macro(&args);
        return;
    }
    if which == "profile" {
        run_profile_cmd(&args);
        return;
    }
    if which == "bench-verify" {
        run_bench_verify(&args);
        return;
    }
    if which == "replay-smoke" {
        run_replay_smoke();
        return;
    }
    if which == "seccomp-derive" {
        run_seccomp_derive(&args);
        return;
    }
    if which == "seccomp-report" {
        run_seccomp_report(&args);
        return;
    }
    if which == "fuzz" {
        run_fuzz(&args);
        return;
    }

    let all = which == "all";
    if all || which == "table5" {
        print_table5(quick);
    }
    if all || which == "table6" {
        print_table6();
    }
    if all || which == "table7" {
        print_table7();
    }
    if all || which == "table1" {
        print_table1(quick);
    }
    if all || which == "table2" {
        println!("{}", render::render_table2(setuid_study::loc::TABLE2));
    }
    if all || which == "table3" {
        println!(
            "{}",
            render::render_table3(setuid_study::popularity::TABLE3)
        );
        println!(
            "  Systems able to adopt Protego with no loss of functionality: {:.1}% (paper: 89.5%)\n",
            setuid_study::popularity::adoption_coverage_pct()
        );
    }
    if all || which == "table4" {
        println!("{}", render::render_table4());
    }
    if all || which == "table8" {
        println!(
            "{}",
            render::render_table8(setuid_study::interfaces::TABLE8)
        );
    }
    if all || which == "ablations" {
        print_ablations(quick);
    }
}

fn bench_sizes(quick: bool) -> (u32, u32, u64, u64, u64) {
    if quick {
        (10, 200, 50, 20, 100)
    } else {
        (100, 5_000, 500, 200, 1_000)
    }
}

fn print_table5(quick: bool) {
    let (warm, iters, postal, compile, ab) = bench_sizes(quick);
    println!("== Table 5: Protego overheads vs Linux(+AppArmor) ==");
    println!("(simulated-kernel operation costs; the comparable quantity is %OH)\n");
    let mut rows = table5::measure_micro(warm, iters);
    rows.extend(table5::measure_macro(postal, compile, ab));
    println!("{}", table5::render(&rows));
    println!(
        "  max measured overhead: {:.2}%  (paper: <= 7.4%)\n",
        table5::max_overhead(&rows)
    );
    let mut f = bench::fixture(SystemMode::Protego);
    let (direct, dispatched, metered) = bench::micro::dispatch_overhead(&mut f, warm, iters);
    println!(
        "  syscall ABI dispatch: direct {:.0} ns, dispatched {:.0} ns ({:+.2}%), +meter {:.0} ns ({:+.2}%)",
        direct,
        dispatched,
        bench::overhead_pct(direct, dispatched),
        metered,
        bench::overhead_pct(direct, metered),
    );
    let seccomp = table5::measure_dispatch_seccomp(warm, iters);
    println!(
        "  seccomp hot path: dispatch off {:.0} ns, enforcing profile {:.0} ns ({:+.2}%, budget <{:.0}%)\n",
        seccomp.base_ns,
        seccomp.seccomp_ns,
        seccomp.overhead_pct,
        json::DISPATCH_SECCOMP_BUDGET_PCT,
    );
}

/// The ci smoke test for deterministic record/replay: record the full
/// functional battery, replay a fresh boot against the recorded trace,
/// and fail loudly on any divergence.
fn run_replay_smoke() {
    use sim_kernel::trace::{Trace, TraceReplayer};

    let mut sys = boot(SystemMode::Protego);
    let (_rec_slot, trace) = sys.attach_recorder();
    let outcomes = run_functional_suite(&mut sys);
    let serialized = trace.lock().unwrap().render();
    let recorded = trace.lock().unwrap().len();

    let expected = match Trace::parse(&serialized) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: recorded trace does not parse: {}", e);
            std::process::exit(1);
        }
    };
    let replayer = TraceReplayer::new(expected);
    let divergences = replayer.divergences();
    let mut sys2 = boot(SystemMode::Protego);
    sys2.kernel.push_interceptor(Box::new(replayer));
    let outcomes2 = run_functional_suite(&mut sys2);

    let divs = divergences.lock().unwrap();
    if !divs.is_empty() {
        eprintln!("error: replay diverged at {} point(s):", divs.len());
        for d in divs.iter().take(5) {
            eprintln!("  {}", d);
        }
        std::process::exit(1);
    }
    if outcomes != outcomes2 {
        eprintln!("error: step outcomes differ between record and replay runs");
        std::process::exit(1);
    }
    println!(
        "replay-smoke: OK ({} dispatched syscalls, {} battery steps, 0 divergences)",
        recorded,
        outcomes.len()
    );
}

fn print_table6() {
    println!("== Table 6: historical privilege-escalation CVEs ==");
    let s = exploits::replay_corpus();
    println!(
        "  {:<24} {:>6} {:>10} {:>16} {:>16}",
        "Utilities", "Total", "Priv.Esc.", "escalate(Linux)", "escalate(Protego)"
    );
    for row in exploits::TABLE6_ROWS {
        let ids: Vec<&str> = exploits::CVES
            .iter()
            .filter(|c| c.utility == row.utilities)
            .map(|c| c.id)
            .collect();
        let legacy = s
            .per_cve
            .iter()
            .filter(|c| ids.contains(&c.id) && c.legacy_escalated)
            .count();
        let protego = s
            .per_cve
            .iter()
            .filter(|c| ids.contains(&c.id) && c.protego_escalated)
            .count();
        println!(
            "  {:<24} {:>6} {:>10} {:>16} {:>16}",
            row.utilities,
            row.total_cves
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            row.priv_esc,
            legacy,
            protego
        );
    }
    println!(
        "\n  corpus: {} CVEs; escalate on Linux: {}; escalate on Protego: {}  (paper: 40/40 deprivileged)\n",
        s.per_cve.len(),
        s.escalated_legacy,
        s.escalated_protego
    );

    println!("  Protego decision counts per LSM hook (aggregated over all replays):");
    println!(
        "  {:<16} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "hook", "allow", "deny", "use_default", "defer", "info"
    );
    for (hook, c) in &s.protego_metrics.per_hook {
        println!(
            "  {:<16} {:>8} {:>8} {:>12} {:>8} {:>8}",
            hook, c.allow, c.deny, c.use_default, c.defer, c.info
        );
    }
    let audited = s.per_cve.iter().filter(|c| c.protego_denials > 0).count();
    println!(
        "  denial provenance: {}/{} blocked CVEs emitted >=1 denial audit event\n",
        audited,
        s.per_cve.len()
    );
}

fn print_table7() {
    println!("== Table 7: functional-test coverage of the setuid binaries ==");
    let mut merged = userland::coverage::Coverage::new();
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut sys = boot(mode);
        run_functional_suite(&mut sys);
        run_service_suite(&mut sys);
        run_divergence_suite(&mut sys);
        merged.merge_from(&sys.coverage);
    }
    println!("  {:<36} {:>10}", "Binary", "Coverage %");
    for row in merged.report() {
        if row.declared >= 4 {
            println!("  {:<36} {:>10.1}", row.binary, row.percent);
        }
    }
    println!();
}

fn print_table1(quick: bool) {
    println!("== Table 1: summary ==");
    let s = exploits::replay_corpus();
    let (warm, iters, ..) = bench_sizes(quick);
    let rows = table5::measure_micro(warm, iters);
    let t = table1(MeasuredInputs {
        exploits_escalated_legacy: s.escalated_legacy,
        exploits_escalated_protego: s.escalated_protego,
        exploits_total: s.per_cve.len() as u32,
        max_overhead_pct: table5::max_overhead(&rows),
    });
    println!("{}", render::render_table1(&t));
}

fn run_bench_json(quick: bool, args: &[String]) {
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_table5.json".to_string());
    let (warm, iters, postal, compile, ab) = bench_sizes(quick);
    eprintln!(
        "generating {} ({} mode)...",
        out,
        if quick { "quick" } else { "full" }
    );
    let mut text = table5::table5_json(quick, warm, iters, postal, compile, ab);
    text.push('\n');
    if let Err(e) = json::validate_table5(&text) {
        eprintln!("error: generated document fails validation: {}", e);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write {}: {}", out, e);
        std::process::exit(1);
    }
    // Human summary of the machine-readable file.
    let doc = json::parse(&text).expect("self-emitted JSON parses");
    if let Some(rows) = doc.get("hotpath").and_then(json::Value::as_arr) {
        for r in rows {
            println!(
                "  hotpath {:<16} {:>10.0} ns -> {:>8.0} ns  ({:.1}x)",
                r.get("name").and_then(json::Value::as_str).unwrap_or("?"),
                r.get("before_ns")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
                r.get("after_ns")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
                r.get("speedup")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
            );
        }
    }
    if let Some(caches) = doc.get("cache_metrics").and_then(json::Value::as_obj) {
        for (name, stats) in caches {
            println!(
                "  cache {:<24} hits={} misses={} invalidations={}",
                name,
                stats
                    .get("hits")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
                stats
                    .get("misses")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
                stats
                    .get("invalidations")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0),
            );
        }
    }
    println!("wrote {}", out);
}

fn run_bench_macro(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let shared = args.iter().any(|a| a == "--shared");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_macro.json".to_string());
    let options = macro_fleet::MacroOptions {
        smoke,
        seed: 0xC0FFEE,
        shared,
    };
    eprintln!(
        "running fleet macro benchmark ({} mode, fleets of {:?} workers{})...",
        if smoke { "smoke" } else { "full" },
        options.worker_counts(),
        if shared {
            format!(
                ", shared-kernel fleets of {:?} workers",
                options.shared_worker_counts()
            )
        } else {
            String::new()
        }
    );
    let results = macro_fleet::run_macro_matrix(options);
    if let Err(e) = results.check() {
        eprintln!("error: fleet run failed its invariants: {}", e);
        std::process::exit(1);
    }
    if smoke {
        // Determinism gate: the whole matrix again with the same seed
        // must reproduce every op/failure/fault/syscall-class count
        // (timings excluded by construction of the fingerprint).
        let again = macro_fleet::run_macro_matrix(options);
        if results.fingerprint() != again.fingerprint() {
            eprintln!("error: fleet counts are not deterministic per seed:");
            eprintln!("--- first run ---\n{}", results.fingerprint());
            eprintln!("--- second run ---\n{}", again.fingerprint());
            std::process::exit(1);
        }
    }
    let mut text = macro_fleet::macro_json(&results);
    text.push('\n');
    if let Err(e) = json::validate_macro(&text) {
        eprintln!("error: generated document fails validation: {}", e);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write {}: {}", out, e);
        std::process::exit(1);
    }
    for (wl, points) in &results.curves {
        for p in points {
            println!(
                "  {:<5} x{:<2} legacy {:>12.0} ops/s | protego {:>12.0} ops/s  ({:+.2}%)",
                wl.name(),
                p.workers,
                p.legacy.ops_per_sec,
                p.protego.ops_per_sec,
                p.overhead_pct()
            );
        }
        println!(
            "  {:<5} protego scaling 1 -> {} workers: {:.2}x",
            wl.name(),
            points.iter().map(|p| p.workers).max().unwrap_or(1),
            results.scaling(*wl)
        );
    }
    for (wl, points) in &results.shared_curves {
        for p in points {
            println!(
                "  shared {:<5} x{:<3} legacy {:>12.0} ops/s | protego {:>12.0} ops/s  ({:+.2}%, median of {})",
                wl.name(),
                p.workers,
                p.legacy.ops_per_sec,
                p.protego.ops_per_sec,
                p.overhead_pct(),
                p.runs
            );
        }
        println!(
            "  shared {:<5} protego scaling 1 -> 8 workers on one kernel: {:.2}x",
            wl.name(),
            results.shared_scaling_1_to_8(*wl)
        );
    }
    println!(
        "  soak: {} workers, 1% storm, {} ops, {} injected faults, {} failed ops, {} panics, {} artifacts",
        results.soak.workers,
        results.soak.ops,
        results.soak.injected,
        results.soak.failures,
        results.soak.panicked,
        results.soak.artifacts.len()
    );
    if smoke {
        println!("  determinism: double-run fingerprints identical");
    }
    println!("wrote {}", out);
}

fn run_profile_cmd(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_profile.json".to_string());
    eprintln!(
        "profiling kernel pathways ({} mode, both images)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = profile::run_profile(smoke);
    if let Err(e) = report.check() {
        eprintln!("error: profile failed its attribution gate: {}", e);
        std::process::exit(1);
    }
    let mut text = report.to_json();
    text.push('\n');
    if let Err(e) = json::validate_profile(&text) {
        eprintln!("error: generated document fails validation: {}", e);
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write {}: {}", out, e);
        std::process::exit(1);
    }
    println!("== Overhead attribution (protego, top 15 pathways by self time) ==");
    print!("{}", report.render(15));
    println!("wrote {}", out);
}

/// Derives the per-binary syscall allowlists from a full battery +
/// workload run on both images, proves the batteries still pass with the
/// profiles enforced, and writes (or, with `--check`, diffs against) the
/// committed `SECCOMP_PROFILES.json`.
fn run_seccomp_derive(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "SECCOMP_PROFILES.json".to_string());
    eprintln!(
        "deriving syscall allowlists (batteries + web/mail/compile workloads, both images)..."
    );
    let specs = seccomp_derive::derive_profiles();
    let mut text = seccomp_derive::profiles_json(&specs);
    text.push('\n');
    if let Err(e) = json::validate_seccomp_profiles(&text) {
        eprintln!("error: derived document fails validation: {}", e);
        std::process::exit(1);
    }
    eprintln!(
        "verifying enforcement ({} mode): batteries must reproduce baseline outcomes with zero violations...",
        if smoke { "smoke" } else { "full" }
    );
    match seccomp_derive::enforcement_check(&specs, smoke) {
        Ok(summary) => eprintln!(
            "enforcement OK: {} battery steps identical across {} image(s), 0 violations",
            summary.steps, summary.modes
        ),
        Err(e) => {
            eprintln!("error: enforcement check failed: {}", e);
            std::process::exit(1);
        }
    }
    if check {
        let committed = match std::fs::read_to_string(&out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "error: cannot read {}: {} (run `tables seccomp-derive` to create it)",
                    out, e
                );
                std::process::exit(1);
            }
        };
        if committed != text {
            eprintln!(
                "error: {} is stale: a fresh derivation disagrees; re-run `tables seccomp-derive`",
                out
            );
            std::process::exit(1);
        }
        println!("{}: up to date ({} profiles)", out, specs.len());
    } else {
        if let Err(e) = std::fs::write(&out, &text) {
            eprintln!("error: cannot write {}: {}", out, e);
            std::process::exit(1);
        }
        println!("wrote {} ({} profiles)", out, specs.len());
    }
    print!("{}", seccomp_derive::render_report(&specs));
}

/// Prints the KASR-style attack-surface report from a committed (or
/// freshly written) `seccomp_profiles/v1` document.
fn run_seccomp_report(args: &[String]) {
    let path = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "SECCOMP_PROFILES.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: cannot read {}: {} (run `tables seccomp-derive` first)",
                path, e
            );
            std::process::exit(1);
        }
    };
    let specs = match seccomp_derive::parse_profiles(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {} is invalid: {}", path, e);
            std::process::exit(1);
        }
    };
    print!("{}", seccomp_derive::render_report(&specs));
}

fn run_bench_verify(args: &[String]) {
    let path = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_table5.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {}", path, e);
            std::process::exit(1);
        }
    };
    // Dispatch on the document's own schema tag.
    let schema = json::parse(&text)
        .ok()
        .and_then(|d| {
            d.get("schema")
                .and_then(json::Value::as_str)
                .map(String::from)
        })
        .unwrap_or_default();
    let checked = if schema == json::MACRO_SCHEMA || schema == json::MACRO_SCHEMA_V2 {
        json::validate_macro(&text)
    } else if schema == json::PROFILE_SCHEMA {
        json::validate_profile(&text)
    } else if schema == json::SECCOMP_SCHEMA {
        json::validate_seccomp_profiles(&text)
    } else {
        json::validate_table5(&text)
    };
    match checked {
        Ok(()) => println!("{}: OK", path),
        Err(e) => {
            eprintln!("error: {} is invalid: {}", path, e);
            std::process::exit(1);
        }
    }
}

fn print_ablations(quick: bool) {
    use bench::ablations;
    let n = if quick { 200 } else { 2_000 };
    println!("== Ablations ==");

    // 1. Netfilter rules on the packet path.
    let mut f = bench::fixture(SystemMode::Protego);
    let with_rules = ablations::udp_burst(&mut f, n);
    ablations::flush_netfilter(&mut f);
    let without = ablations::udp_burst(&mut f, n);
    println!(
        "  netfilter: {} rules -> {:.0} ns/pkt; flushed -> {:.0} ns/pkt  ({:+.2}%)",
        5,
        with_rules as f64 / n as f64,
        without as f64 / n as f64,
        bench::overhead_pct(without as f64, with_rules as f64)
    );

    // 2. Authentication recency window.
    for spacing in [10u64, 100, 299, 301, 400] {
        let prompts = ablations::prompts_for_window(spacing);
        println!(
            "  auth window 300s, sudo every {:>3}s: {} prompts in 6 invocations",
            spacing, prompts
        );
    }

    // 3. Mount whitelist scaling.
    for rules in [10usize, 100, 1000] {
        let t = ablations::mount_lookup_cost(rules, if quick { 20 } else { 200 });
        println!(
            "  mount whitelist {} rules: {:.0} ns/mount-umount",
            rules,
            t as f64 / if quick { 20.0 } else { 200.0 }
        );
    }
    println!();
}

/// Adversarial differential fuzzing: generate seeded scenarios across
/// the five families, run each under legacy and Protego, and fail with
/// a shrunk reproducer on the first oracle violation. `--smoke` runs a
/// small fixed-seed tier (the ci gate) including the byte-identical
/// double-generation determinism check.
fn run_fuzz(args: &[String]) {
    let seed = match args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) => {
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse::<u64>(),
            };
            match parsed {
                Ok(v) => v,
                Err(_) => {
                    eprintln!("error: --seed {} is not a u64 (decimal or 0x-hex)", s);
                    std::process::exit(2);
                }
            }
        }
        None => 0xF0CC,
    };
    let mins = args
        .iter()
        .position(|a| a == "--mins")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    let smoke = args.iter().any(|a| a == "--smoke");

    let opts = bench::fuzz::FuzzOptions { seed, mins, smoke };
    eprintln!(
        "fuzzing: seed {:#x}, {} (families: {})",
        seed,
        if smoke {
            "smoke tier (fixed seeds)".to_string()
        } else {
            format!("{} min budget", mins)
        },
        bench::fuzz::Family::ALL
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let result = bench::fuzz::run_campaign(opts);
    println!(
        "fuzz: {} scenarios, {} ops, generation deterministic: {}",
        result.scenarios, result.ops, result.generation_deterministic
    );
    if !result.generation_deterministic {
        eprintln!("error: double-generation produced different bytes for the same seed");
        std::process::exit(1);
    }
    if let Some((original, failure, minimized)) = result.failure {
        eprintln!("\nFAILURE in scenario `{}`:", original.name);
        eprintln!("{}", failure);
        eprintln!(
            "\nminimized to {} ops (from {}):\n{}",
            minimized.ops.len(),
            original.ops.len(),
            minimized.render()
        );
        eprintln!("regression snippet for tests/fuzz_regressions.rs:\n");
        eprintln!("{}", bench::fuzz::regression_snippet(&minimized, &failure));
        std::process::exit(1);
    }
    println!("fuzz: no oracle violations");
}
