//! The fleet macro-benchmark engine: the paper's §6 macro workloads
//! (ApacheBench web serving, Postal mail delivery) scaled out over a
//! fleet of kernels.
//!
//! ## Worker topologies
//!
//! Two fleet shapes are measured:
//!
//! * **Thread-per-kernel** ([`run_fleet`]): each OS thread boots its
//!   *own* deterministic [`userland::System`] in-thread, starts the
//!   service under test, and drives a closed-loop workload against it.
//!   These workers share nothing; the curve proves harness scaling.
//! * **Shared-kernel** ([`run_shared_fleet`]): the driver boots *one*
//!   system and hands each worker thread a [`userland::System::worker_view`]
//!   onto the same interior-locked kernel. Every worker runs its own
//!   service instance on a disjoint port with a disjoint mail spool, so
//!   all contention measured is kernel-lock contention, not workload
//!   aliasing. This is the curve the tentpole refactor unlocks: N
//!   workers × 1 kernel.
//!
//! In both shapes workers report plain-data reports — op counts,
//! per-class syscall counters, cache hit rates, busy time — over an
//! [`std::sync::mpsc`] channel, and the driver folds them into a
//! [`FleetAggregate`] with [`sim_kernel::trace::Metrics::merge`].
//!
//! ## Paired interleaved runs (shared mode)
//!
//! Shared-kernel points are measured as K interleaved legacy/protego
//! pairs (L, P, L, P, ...) and reported as the **median-of-K by on-CPU
//! throughput**, so a background scheduling hiccup in one run cannot
//! flip the ≤8% overhead verdict. Counts are deterministic across the K
//! runs; only timings differ.
//!
//! ## Throughput metric
//!
//! Aggregate fleet throughput is the **sum of per-worker rates**, each
//! worker's rate being its ops over its own *on-CPU* time (read from
//! `/proc/thread-self/schedstat`, falling back to wall clock where
//! schedstats are unavailable). On-CPU time excludes runqueue wait, so
//! the aggregate reflects what the fleet sustains per unit of hardware
//! rather than how a particular core count happens to interleave the
//! threads. Determinism guarantees cover op/syscall/fault *counts* —
//! never timings.
//!
//! ## Soak mode
//!
//! [`run_fleet`] with a [`FaultSpec`] composes the existing seeded
//! [`FaultInjector`](sim_kernel::syscall::FaultInjector) (1-in-`rate`
//! errno storm) over every worker's
//! steady-state loop and proves the fleet completes with **zero
//! panics** (every worker joins cleanly) and **zero privileged
//! artifacts** (per-worker [`userland::workload::privileged_artifacts`]
//! audit).

use crate::json::Value;
use sim_kernel::syscall::{FaultConfig, SyscallClass};
use sim_kernel::trace::{span, Metrics, Pathway, TimingSnapshot};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Instant;
use userland::workload::{self, Service};
use userland::{boot, System, SystemMode};

/// Which §6 macro workload a fleet drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacroWorkload {
    /// ApacheBench-style closed loop: one HTTP round trip per op, the
    /// server doing stat + open + read + close on the docroot.
    Web,
    /// Postal-style closed loop: one SMTP delivery per op, committed
    /// with write-to-tmp + atomic-replace `rename` over the spool.
    Mail,
}

impl MacroWorkload {
    /// Stable name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            MacroWorkload::Web => "web",
            MacroWorkload::Mail => "mail",
        }
    }
}

/// Seeded errno-storm parameters for soak runs.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Base PRNG seed; worker `i` storms with `seed + i`.
    pub seed: u64,
    /// Injection rate as 1-in-`rate` per eligible call (100 = 1%).
    pub rate: u64,
}

/// One fleet run: a workload, a mode, a worker count.
#[derive(Clone, Copy, Debug)]
pub struct FleetSpec {
    /// The workload every worker drives.
    pub workload: MacroWorkload,
    /// Which image the workers boot.
    pub mode: SystemMode,
    /// Number of worker threads (each with its own kernel).
    pub workers: usize,
    /// Measured iterations per worker.
    pub iters: u64,
    /// Unmeasured warmup iterations per worker.
    pub warmup: u64,
    /// Optional errno storm over the measured loop (soak mode).
    pub fault: Option<FaultSpec>,
}

/// What one worker observed; plain data, sent over the results channel.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index within the fleet.
    pub worker: usize,
    /// Operations attempted in the measured loop.
    pub ops: u64,
    /// Operations that returned an error (nonzero only under faults).
    pub failures: u64,
    /// On-CPU nanoseconds of the measured loop (wall-clock fallback).
    pub busy_ns: u64,
    /// Wall-clock nanoseconds of the measured loop.
    pub wall_ns: u64,
    /// Whether `busy_ns` came from `/proc/thread-self/schedstat`.
    pub used_schedstat: bool,
    /// Full-run metrics snapshot (kernel counters + cache stats).
    pub metrics: Metrics,
    /// Per-class (calls, errors) deltas over the measured loop only.
    pub loop_classes: BTreeMap<&'static str, (u64, u64)>,
    /// Per-pathway latency histograms over the measured loop only.
    pub timing: TimingSnapshot,
    /// Faults the storm injected (0 without a [`FaultSpec`]).
    pub injected: u64,
    /// Privileged-artifact audit findings (must be empty).
    pub artifacts: Vec<String>,
}

/// The driver's fold over every [`WorkerReport`] of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetAggregate {
    /// The spec this aggregate came from.
    pub workers: usize,
    /// Total ops attempted across the fleet.
    pub ops: u64,
    /// Total failed ops across the fleet.
    pub failures: u64,
    /// Aggregate throughput: Σ per-worker (ops / busy seconds).
    pub ops_per_sec: f64,
    /// True when every worker measured with schedstat (not wall clock).
    pub used_schedstat: bool,
    /// Merged kernel metrics across the fleet.
    pub metrics: Metrics,
    /// Summed per-class (calls, errors) over the measured loops.
    pub loop_classes: BTreeMap<&'static str, (u64, u64)>,
    /// Merged per-pathway latency histograms over the measured loops.
    /// Excluded from [`FleetAggregate::fingerprint`] — timings never
    /// participate in determinism checks.
    pub timing: TimingSnapshot,
    /// Total injected faults.
    pub injected: u64,
    /// Concatenated privileged-artifact findings (must be empty).
    pub artifacts: Vec<String>,
    /// Workers that panicked instead of reporting (must be 0).
    pub panicked: usize,
}

impl FleetAggregate {
    /// Fleet-wide dcache hit rate in [0, 1].
    pub fn dcache_hit_rate(&self) -> f64 {
        match self.metrics.caches.get("dcache") {
            Some(c) if c.hits + c.misses > 0 => c.hits as f64 / (c.hits + c.misses) as f64,
            _ => 0.0,
        }
    }

    /// A timing-free digest of everything that must reproduce per seed:
    /// op/failure/fault counts and per-class syscall counts.
    pub fn fingerprint(&self) -> String {
        let mut out = format!(
            "workers={} ops={} failures={} injected={}",
            self.workers, self.ops, self.failures, self.injected
        );
        for (class, (calls, errors)) in &self.loop_classes {
            out.push_str(&format!(" {}={}:{}", class, calls, errors));
        }
        out
    }
}

/// On-CPU nanoseconds of the calling thread, when the kernel exposes
/// populated schedstats.
fn thread_busy_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let first = text.split_whitespace().next()?;
    // Zero is a legitimate reading for a freshly spawned thread; the
    // caller falls back to wall clock only when the counter never moves
    // (schedstats compiled out report zero forever).
    first.parse::<u64>().ok()
}

fn run_one_op(
    sys: &mut System,
    wl: MacroWorkload,
    client: sim_kernel::Pid,
    srv: Service,
    worker: usize,
    i: u64,
    shared: bool,
) -> bool {
    match wl {
        MacroWorkload::Web => workload::web_request(sys, client, srv).is_ok(),
        MacroWorkload::Mail => {
            // Shared-kernel workers deliver to their own spool so the
            // atomic-replace renames of concurrent workers never collide.
            let rcpt = if shared {
                workload::worker_rcpt(worker)
            } else if i.is_multiple_of(2) {
                "alice".to_string()
            } else {
                "bob".to_string()
            };
            workload::mail_delivery(
                sys,
                client,
                srv,
                &rcpt,
                &format!("fleet w{} op{}", worker, i),
            )
            .is_ok()
        }
    }
}

/// One worker: boots its own kernel in-thread, starts the service,
/// drives the closed loop, and reports. Never shares kernel state.
fn worker_body(spec: FleetSpec, worker: usize) -> WorkerReport {
    let mut sys = boot(spec.mode);
    sys.attach_meter();
    let srv = match spec.workload {
        MacroWorkload::Web => workload::start_web_service(&mut sys),
        MacroWorkload::Mail => workload::start_mail_service(&mut sys),
    }
    .expect("fleet worker: service start on a clean boot");
    let client = workload::client_session(&mut sys).expect("fleet worker: client login");

    for i in 0..spec.warmup {
        run_one_op(&mut sys, spec.workload, client, srv, worker, i, false);
    }
    if spec.workload == MacroWorkload::Mail {
        workload::drain_spools(&mut sys, srv);
    }

    // The storm covers the steady-state loop: startup ran clean so every
    // worker measures the same loop, fault stream seeded per worker.
    let fault_stats = spec.fault.map(|f| {
        let (_slot, stats) = sys.attach_fault_injector(FaultConfig::storm(
            f.seed.wrapping_add(worker as u64),
            f.rate,
        ));
        stats
    });

    let before = sys.kernel.metrics_snapshot();
    // Span timing covers exactly the measured loop: boot, service start
    // and warmup stay out of the histograms. The registry is thread-local,
    // so each worker gets an isolated copy for free.
    span::reset();
    span::set_enabled(true);
    let wall_start = Instant::now();
    let busy_start = thread_busy_ns();
    let mut failures = 0u64;
    for i in 0..spec.iters {
        // The closed loop includes the consumer: every 256 deliveries
        // the spool is drained, keeping the per-op commit cost bounded.
        if spec.workload == MacroWorkload::Mail && i > 0 && i % 256 == 0 {
            workload::drain_spools(&mut sys, srv);
        }
        if !run_one_op(
            &mut sys,
            spec.workload,
            client,
            srv,
            worker,
            spec.warmup + i,
            false,
        ) {
            failures += 1;
            // A fault injected into the server half can strand the
            // client's connection in the listen backlog; reap it so the
            // next op starts from a clean queue instead of wedging.
            workload::drain_backlog(&mut sys, srv);
        }
    }
    let wall_ns = (wall_start.elapsed().as_nanos() as u64).max(1);
    let (busy_ns, used_schedstat) = match (busy_start, thread_busy_ns()) {
        (Some(a), Some(b)) if b > a => (b - a, true),
        _ => (wall_ns, false),
    };
    span::set_enabled(false);
    let timing = span::snapshot();

    let metrics = sys.kernel.metrics_snapshot();
    let mut loop_classes = BTreeMap::new();
    for (class, after) in &metrics.classes {
        let prior = before.classes.get(class).copied().unwrap_or_default();
        loop_classes.insert(
            class,
            (after.calls - prior.calls, after.errors - prior.errors),
        );
    }
    let injected = fault_stats.map(|s| s.lock().unwrap().injected).unwrap_or(0);
    let artifacts = workload::privileged_artifacts(&mut sys);

    WorkerReport {
        worker,
        ops: spec.iters,
        failures,
        busy_ns,
        wall_ns,
        used_schedstat,
        metrics,
        loop_classes,
        timing,
        injected,
        artifacts,
    }
}

/// Runs one fleet: spawns `spec.workers` OS threads, each booting its
/// own kernel, and folds their channel reports into a
/// [`FleetAggregate`]. A panicking worker is counted, never propagated
/// — `panicked == 0` is the soak's zero-panic proof.
pub fn run_fleet(spec: FleetSpec) -> FleetAggregate {
    let (tx, rx) = mpsc::channel::<WorkerReport>();
    let mut handles = Vec::with_capacity(spec.workers);
    for worker in 0..spec.workers {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let report = worker_body(spec, worker);
            // A send can only fail if the driver vanished; the worker
            // has nothing useful to do about that.
            let _ = tx.send(report);
        }));
    }
    drop(tx);

    let mut agg = FleetAggregate {
        workers: spec.workers,
        ops: 0,
        failures: 0,
        ops_per_sec: 0.0,
        used_schedstat: true,
        metrics: Metrics::default(),
        loop_classes: BTreeMap::new(),
        timing: TimingSnapshot::new(),
        injected: 0,
        artifacts: Vec::new(),
        panicked: 0,
    };
    for report in rx {
        agg.ops += report.ops;
        agg.failures += report.failures;
        agg.ops_per_sec += report.ops as f64 / (report.busy_ns as f64 / 1e9);
        agg.used_schedstat &= report.used_schedstat;
        agg.metrics.merge(&report.metrics);
        for (class, (calls, errors)) in &report.loop_classes {
            let e = agg.loop_classes.entry(class).or_insert((0, 0));
            e.0 += calls;
            e.1 += errors;
        }
        agg.timing.merge(&report.timing);
        agg.injected += report.injected;
        agg.artifacts.extend(report.artifacts);
    }
    for h in handles {
        if h.join().is_err() {
            agg.panicked += 1;
        }
    }
    agg
}

/// What one shared-kernel worker observed over its measured loop. Kernel
/// counters are *not* per-worker here — the kernel is shared — so the
/// driver computes fleet-wide metric deltas itself; workers report only
/// thread-local observations.
struct SharedWorkerReport {
    ops: u64,
    failures: u64,
    busy_ns: u64,
    used_schedstat: bool,
    /// Thread-local span histograms over the measured loop.
    timing: TimingSnapshot,
}

/// Per-worker setup state carried from the warmup phase into the
/// measured phase of a shared-kernel worker.
struct SharedWorkerState {
    sys: System,
    srv: Service,
    client: sim_kernel::Pid,
}

fn shared_worker_setup(mut sys: System, spec: FleetSpec, worker: usize) -> SharedWorkerState {
    let srv = match spec.workload {
        MacroWorkload::Web => workload::start_shared_web_service(&mut sys, worker),
        MacroWorkload::Mail => workload::start_shared_mail_service(&mut sys, worker),
    }
    .expect("shared fleet worker: service start on a clean boot");
    let client = workload::client_session(&mut sys).expect("shared fleet worker: client login");
    for i in 0..spec.warmup {
        run_one_op(&mut sys, spec.workload, client, srv, worker, i, true);
    }
    if spec.workload == MacroWorkload::Mail {
        workload::drain_spool(&mut sys, srv, &workload::worker_rcpt(worker));
    }
    SharedWorkerState { sys, srv, client }
}

fn shared_worker_measure(
    mut st: SharedWorkerState,
    spec: FleetSpec,
    worker: usize,
) -> SharedWorkerReport {
    let SharedWorkerState {
        ref mut sys,
        srv,
        client,
    } = st;
    // Span timing is thread-local, so each worker's histograms cover
    // exactly its own measured loop even on a shared kernel.
    span::reset();
    span::set_enabled(true);
    let wall_start = Instant::now();
    let busy_start = thread_busy_ns();
    let mut failures = 0u64;
    for i in 0..spec.iters {
        if spec.workload == MacroWorkload::Mail && i > 0 && i % 256 == 0 {
            workload::drain_spool(sys, srv, &workload::worker_rcpt(worker));
        }
        if !run_one_op(
            sys,
            spec.workload,
            client,
            srv,
            worker,
            spec.warmup + i,
            true,
        ) {
            failures += 1;
            workload::drain_backlog(sys, srv);
        }
    }
    let wall_ns = (wall_start.elapsed().as_nanos() as u64).max(1);
    let (busy_ns, used_schedstat) = match (busy_start, thread_busy_ns()) {
        (Some(a), Some(b)) if b > a => (b - a, true),
        _ => (wall_ns, false),
    };
    span::set_enabled(false);
    SharedWorkerReport {
        ops: spec.iters,
        failures,
        busy_ns,
        used_schedstat,
        timing: span::snapshot(),
    }
}

/// Runs one *shared-kernel* fleet: boots a single [`userland::System`],
/// hands every worker thread a [`System::worker_view`] onto the same
/// kernel, and drives `spec.workers` concurrent closed loops.
///
/// Three barriers fence the measurement so the driver can compute exact
/// fleet-wide kernel-counter deltas on a kernel it shares with the
/// workers: all warmups finish (`ready`), the driver snapshots metrics,
/// everyone starts the measured loops (`go`), all loops finish (`done`),
/// and the driver snapshots again before any post-loop syscall (the
/// privileged-artifact audit) can pollute the delta. Worker panics are
/// caught around each phase so a dying worker can never strand the
/// barriers; it is counted in [`FleetAggregate::panicked`] instead.
///
/// With a [`FaultSpec`] the storm interceptor is installed once on the
/// shared kernel after warmup: fault *placement* across workers then
/// depends on thread interleaving (unlike the per-kernel fleet), so
/// shared soaks assert safety — zero panics, zero artifacts — not
/// per-seed count equality.
pub fn run_shared_fleet(spec: FleetSpec) -> FleetAggregate {
    let mut base = boot(spec.mode);
    base.attach_meter();
    let ready = Arc::new(Barrier::new(spec.workers + 1));
    let go = Arc::new(Barrier::new(spec.workers + 1));
    let done = Arc::new(Barrier::new(spec.workers + 1));

    let (tx, rx) = mpsc::channel::<SharedWorkerReport>();
    let mut handles = Vec::with_capacity(spec.workers);
    for worker in 0..spec.workers {
        let view = base.worker_view();
        let (tx, ready, go, done) = (tx.clone(), ready.clone(), go.clone(), done.clone());
        handles.push(std::thread::spawn(move || {
            let mut state =
                catch_unwind(AssertUnwindSafe(|| shared_worker_setup(view, spec, worker))).ok();
            ready.wait();
            go.wait();
            let report = state.take().and_then(|st| {
                catch_unwind(AssertUnwindSafe(|| shared_worker_measure(st, spec, worker))).ok()
            });
            done.wait();
            if let Some(r) = report {
                let _ = tx.send(r);
            }
        }));
    }
    drop(tx);

    ready.wait();
    // Every warmup has finished and no measured loop has started: this
    // delta base covers exactly the union of the measured loops.
    let fault_stats = spec.fault.map(|f| {
        let (_slot, stats) = base.attach_fault_injector(FaultConfig::storm(f.seed, f.rate));
        stats
    });
    let before = base.kernel.metrics_snapshot();
    go.wait();
    done.wait();
    let after = base.kernel.metrics_snapshot();

    let mut agg = FleetAggregate {
        workers: spec.workers,
        ops: 0,
        failures: 0,
        ops_per_sec: 0.0,
        used_schedstat: true,
        metrics: after.clone(),
        loop_classes: BTreeMap::new(),
        timing: TimingSnapshot::new(),
        injected: 0,
        artifacts: Vec::new(),
        panicked: 0,
    };
    for (class, a) in &after.classes {
        let prior = before.classes.get(class).copied().unwrap_or_default();
        agg.loop_classes
            .insert(class, (a.calls - prior.calls, a.errors - prior.errors));
    }
    let mut reports = 0usize;
    for report in rx {
        reports += 1;
        agg.ops += report.ops;
        agg.failures += report.failures;
        agg.ops_per_sec += report.ops as f64 / (report.busy_ns as f64 / 1e9);
        agg.used_schedstat &= report.used_schedstat;
        agg.timing.merge(&report.timing);
    }
    for h in handles {
        let _ = h.join();
    }
    agg.panicked = spec.workers - reports;
    agg.injected = fault_stats.map(|s| s.lock().unwrap().injected).unwrap_or(0);
    // One audit suffices: the artifacts live in the single shared kernel.
    agg.artifacts = workload::privileged_artifacts(&mut base);
    agg
}

/// Options for the full `bench-macro` matrix.
#[derive(Clone, Copy, Debug)]
pub struct MacroOptions {
    /// Smoke mode: tiny iteration counts, fleets of 1-2 workers, plus a
    /// per-seed determinism double-run.
    pub smoke: bool,
    /// Base seed for the soak storm (and the determinism assertion).
    pub seed: u64,
    /// Also measure the shared-kernel contention curves (schema v2).
    pub shared: bool,
}

impl MacroOptions {
    /// Fleet sizes measured per workload.
    pub fn worker_counts(self) -> &'static [usize] {
        if self.smoke {
            &[1, 2]
        } else {
            &[1, 2, 4, 8]
        }
    }

    /// Measured iterations per worker.
    pub fn iters(self) -> u64 {
        if self.smoke {
            30
        } else {
            10_000
        }
    }

    /// Warmup iterations per worker.
    pub fn warmup(self) -> u64 {
        if self.smoke {
            3
        } else {
            200
        }
    }

    /// Workers in the soak fleet.
    pub fn soak_workers(self) -> usize {
        if self.smoke {
            2
        } else {
            8
        }
    }

    /// Shared-kernel fleet sizes: the contention curve's x axis.
    pub fn shared_worker_counts(self) -> &'static [usize] {
        if self.smoke {
            &[1, 8]
        } else {
            &[1, 8, 32, 128]
        }
    }

    /// Measured iterations per shared-kernel worker, scaled down with
    /// fleet size so the 128-worker point stays tractable while every
    /// worker still runs a statistically useful loop.
    pub fn shared_iters(self, workers: usize) -> u64 {
        if self.smoke {
            25
        } else {
            (16_000 / workers as u64).clamp(150, 4_000)
        }
    }

    /// Warmup iterations per shared-kernel worker.
    pub fn shared_warmup(self) -> u64 {
        if self.smoke {
            3
        } else {
            50
        }
    }

    /// How many interleaved legacy/protego run pairs each shared point
    /// is measured over (the K of median-of-K).
    pub fn shared_runs(self) -> usize {
        if self.smoke {
            1
        } else {
            3
        }
    }
}

/// One measured point: both modes at one fleet size.
#[derive(Clone, Debug)]
pub struct MacroPoint {
    /// Fleet size.
    pub workers: usize,
    /// Legacy (AppArmor-baseline) aggregate.
    pub legacy: FleetAggregate,
    /// Protego aggregate.
    pub protego: FleetAggregate,
}

impl MacroPoint {
    /// Protego overhead over the legacy baseline, in percent.
    pub fn overhead_pct(&self) -> f64 {
        crate::overhead_pct(
            1.0 / self.legacy.ops_per_sec.max(f64::MIN_POSITIVE),
            1.0 / self.protego.ops_per_sec.max(f64::MIN_POSITIVE),
        )
    }
}

/// One shared-kernel contention point: both modes at one worker count,
/// each the median-of-K of paired interleaved runs.
#[derive(Clone, Debug)]
pub struct SharedPoint {
    /// Concurrent workers on the one kernel.
    pub workers: usize,
    /// How many runs per mode the medians were taken over.
    pub runs: usize,
    /// Median legacy run (by aggregate on-CPU throughput).
    pub legacy: FleetAggregate,
    /// Median Protego run.
    pub protego: FleetAggregate,
    /// Every legacy run's throughput, in run order.
    pub legacy_rates: Vec<f64>,
    /// Every Protego run's throughput, in run order.
    pub protego_rates: Vec<f64>,
}

impl SharedPoint {
    /// Protego overhead over the legacy baseline at this contention
    /// level, in percent, from the median runs.
    pub fn overhead_pct(&self) -> f64 {
        crate::overhead_pct(
            1.0 / self.legacy.ops_per_sec.max(f64::MIN_POSITIVE),
            1.0 / self.protego.ops_per_sec.max(f64::MIN_POSITIVE),
        )
    }
}

/// Selects the run with the median aggregate throughput; returns it plus
/// every run's rate in original order.
fn median_by_rate(mut runs: Vec<FleetAggregate>) -> (FleetAggregate, Vec<f64>) {
    let rates: Vec<f64> = runs.iter().map(|a| a.ops_per_sec).collect();
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| {
        runs[a]
            .ops_per_sec
            .partial_cmp(&runs[b].ops_per_sec)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mid = order[order.len() / 2];
    (runs.swap_remove(mid), rates)
}

/// Measures one shared-kernel point: K interleaved legacy/protego pairs
/// (L, P, L, P, ...), folded to per-mode medians.
pub fn run_shared_point(
    workload: MacroWorkload,
    workers: usize,
    options: MacroOptions,
) -> SharedPoint {
    let spec = |mode| FleetSpec {
        workload,
        mode,
        workers,
        iters: options.shared_iters(workers),
        warmup: options.shared_warmup(),
        fault: None,
    };
    let runs = options.shared_runs();
    let mut legacy_runs = Vec::with_capacity(runs);
    let mut protego_runs = Vec::with_capacity(runs);
    for _ in 0..runs {
        legacy_runs.push(run_shared_fleet(spec(SystemMode::Legacy)));
        protego_runs.push(run_shared_fleet(spec(SystemMode::Protego)));
    }
    let (legacy, legacy_rates) = median_by_rate(legacy_runs);
    let (protego, protego_rates) = median_by_rate(protego_runs);
    SharedPoint {
        workers,
        runs,
        legacy,
        protego,
        legacy_rates,
        protego_rates,
    }
}

/// The whole bench-macro result set.
#[derive(Clone, Debug)]
pub struct MacroResults {
    /// Options the matrix ran with.
    pub options: MacroOptions,
    /// Per-workload scaling curves (thread-per-kernel).
    pub curves: Vec<(MacroWorkload, Vec<MacroPoint>)>,
    /// Shared-kernel contention curves; empty unless
    /// [`MacroOptions::shared`] was set.
    pub shared_curves: Vec<(MacroWorkload, Vec<SharedPoint>)>,
    /// The soak fleet (Protego, all workers, 1% storm).
    pub soak: FleetAggregate,
}

impl MacroResults {
    /// Protego aggregate throughput scaling from 1 worker to the largest
    /// fleet, for `workload`.
    pub fn scaling(&self, workload: MacroWorkload) -> f64 {
        let Some((_, points)) = self.curves.iter().find(|(w, _)| *w == workload) else {
            return 0.0;
        };
        let one = points.iter().find(|p| p.workers == 1);
        let max = points.iter().max_by_key(|p| p.workers);
        match (one, max) {
            (Some(a), Some(b)) if a.protego.ops_per_sec > 0.0 => {
                b.protego.ops_per_sec / a.protego.ops_per_sec
            }
            _ => 0.0,
        }
    }

    /// Shared-kernel Protego throughput scaling from 1 worker to the
    /// 8-worker contention point, for `workload` — the tentpole's gated
    /// criterion (≥ 2.5× on one kernel).
    pub fn shared_scaling_1_to_8(&self, workload: MacroWorkload) -> f64 {
        let Some((_, points)) = self.shared_curves.iter().find(|(w, _)| *w == workload) else {
            return 0.0;
        };
        let one = points.iter().find(|p| p.workers == 1);
        let eight = points.iter().find(|p| p.workers == 8);
        match (one, eight) {
            (Some(a), Some(b)) if a.protego.ops_per_sec > 0.0 => {
                b.protego.ops_per_sec / a.protego.ops_per_sec
            }
            _ => 0.0,
        }
    }

    /// A timing-free digest of the whole matrix, for per-seed
    /// determinism checks: concatenates every fleet's
    /// [`FleetAggregate::fingerprint`]. Shared-kernel points are
    /// included — their fault-free counts are interleaving-independent
    /// (every op performs a fixed syscall mix and totals are sums).
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for (wl, points) in &self.curves {
            for p in points {
                out.push_str(&format!(
                    "{}/legacy {}\n",
                    wl.name(),
                    p.legacy.fingerprint()
                ));
                out.push_str(&format!(
                    "{}/protego {}\n",
                    wl.name(),
                    p.protego.fingerprint()
                ));
            }
        }
        for (wl, points) in &self.shared_curves {
            for p in points {
                out.push_str(&format!(
                    "shared/{}/legacy {}\n",
                    wl.name(),
                    p.legacy.fingerprint()
                ));
                out.push_str(&format!(
                    "shared/{}/protego {}\n",
                    wl.name(),
                    p.protego.fingerprint()
                ));
            }
        }
        out.push_str(&format!("soak {}\n", self.soak.fingerprint()));
        out
    }

    /// Driver-side sanity: every point finite, no failures outside the
    /// soak, soak clean (no panics, no artifacts, faults actually fired).
    pub fn check(&self) -> Result<(), String> {
        for (wl, points) in &self.curves {
            for p in points {
                for (mode, agg) in [("legacy", &p.legacy), ("protego", &p.protego)] {
                    if agg.panicked > 0 {
                        return Err(format!(
                            "{}/{} x{}: {} worker(s) panicked",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.panicked
                        ));
                    }
                    if agg.failures > 0 {
                        return Err(format!(
                            "{}/{} x{}: {} failed ops without fault injection",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.failures
                        ));
                    }
                    if !agg.ops_per_sec.is_finite() || agg.ops_per_sec <= 0.0 {
                        return Err(format!(
                            "{}/{} x{}: non-finite throughput",
                            wl.name(),
                            mode,
                            p.workers
                        ));
                    }
                    if !agg.artifacts.is_empty() {
                        return Err(format!(
                            "{}/{} x{}: privileged artifacts: {:?}",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.artifacts
                        ));
                    }
                }
                if !p.overhead_pct().is_finite() {
                    return Err(format!("{} x{}: non-finite overhead", wl.name(), p.workers));
                }
            }
        }
        for (wl, points) in &self.shared_curves {
            for p in points {
                for (mode, agg) in [("legacy", &p.legacy), ("protego", &p.protego)] {
                    if agg.panicked > 0 {
                        return Err(format!(
                            "shared {}/{} x{}: {} worker(s) panicked",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.panicked
                        ));
                    }
                    if agg.failures > 0 {
                        return Err(format!(
                            "shared {}/{} x{}: {} failed ops without fault injection",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.failures
                        ));
                    }
                    if !agg.ops_per_sec.is_finite() || agg.ops_per_sec <= 0.0 {
                        return Err(format!(
                            "shared {}/{} x{}: non-finite throughput",
                            wl.name(),
                            mode,
                            p.workers
                        ));
                    }
                    if !agg.artifacts.is_empty() {
                        return Err(format!(
                            "shared {}/{} x{}: privileged artifacts: {:?}",
                            wl.name(),
                            mode,
                            p.workers,
                            agg.artifacts
                        ));
                    }
                }
                if !p.overhead_pct().is_finite() {
                    return Err(format!(
                        "shared {} x{}: non-finite overhead",
                        wl.name(),
                        p.workers
                    ));
                }
            }
            if !self.options.smoke {
                let scaling = self.shared_scaling_1_to_8(*wl);
                if scaling < 2.5 {
                    return Err(format!(
                        "shared {}: 8-worker throughput only {:.2}x the 1-worker point (need >= 2.5x)",
                        wl.name(),
                        scaling
                    ));
                }
                if let Some(p8) = points.iter().find(|p| p.workers == 8) {
                    if p8.overhead_pct() > 8.0 {
                        return Err(format!(
                            "shared {}: protego overhead {:.2}% under 8-worker contention (budget <= 8%)",
                            wl.name(),
                            p8.overhead_pct()
                        ));
                    }
                }
            }
        }
        if self.soak.panicked > 0 {
            return Err(format!("soak: {} worker(s) panicked", self.soak.panicked));
        }
        if self.soak.injected == 0 {
            return Err("soak: the 1% storm never fired".into());
        }
        if !self.soak.artifacts.is_empty() {
            return Err(format!(
                "soak: privileged artifacts under storm: {:?}",
                self.soak.artifacts
            ));
        }
        Ok(())
    }
}

/// Runs the full matrix: every workload × fleet size × both modes, then
/// the soak fleet.
pub fn run_macro_matrix(options: MacroOptions) -> MacroResults {
    let mut curves = Vec::new();
    for workload in [MacroWorkload::Web, MacroWorkload::Mail] {
        let mut points = Vec::new();
        for &workers in options.worker_counts() {
            let spec = |mode| FleetSpec {
                workload,
                mode,
                workers,
                iters: options.iters(),
                warmup: options.warmup(),
                fault: None,
            };
            points.push(MacroPoint {
                workers,
                legacy: run_fleet(spec(SystemMode::Legacy)),
                protego: run_fleet(spec(SystemMode::Protego)),
            });
        }
        curves.push((workload, points));
    }
    // Soak: the whole fleet under a seeded 1% errno storm, alternating
    // workloads across workers via two half-fleets.
    let soak_spec = |workload| FleetSpec {
        workload,
        mode: SystemMode::Protego,
        workers: options.soak_workers().div_ceil(2),
        iters: options.iters(),
        warmup: options.warmup(),
        fault: Some(FaultSpec {
            seed: options.seed,
            rate: 100,
        }),
    };
    let mut shared_curves = Vec::new();
    if options.shared {
        for workload in [MacroWorkload::Web, MacroWorkload::Mail] {
            let points = options
                .shared_worker_counts()
                .iter()
                .map(|&workers| run_shared_point(workload, workers, options))
                .collect();
            shared_curves.push((workload, points));
        }
    }
    let web_half = run_fleet(soak_spec(MacroWorkload::Web));
    let mail_half = run_fleet(soak_spec(MacroWorkload::Mail));
    let mut soak = web_half;
    soak.workers += mail_half.workers;
    soak.ops += mail_half.ops;
    soak.failures += mail_half.failures;
    soak.ops_per_sec += mail_half.ops_per_sec;
    soak.used_schedstat &= mail_half.used_schedstat;
    soak.metrics.merge(&mail_half.metrics);
    for (class, (calls, errors)) in &mail_half.loop_classes {
        let e = soak.loop_classes.entry(class).or_insert((0, 0));
        e.0 += calls;
        e.1 += errors;
    }
    soak.timing.merge(&mail_half.timing);
    soak.injected += mail_half.injected;
    soak.artifacts.extend(mail_half.artifacts.clone());
    soak.panicked += mail_half.panicked;
    MacroResults {
        options,
        curves,
        shared_curves,
        soak,
    }
}

fn classes_json(classes: &BTreeMap<&'static str, (u64, u64)>) -> Value {
    Value::Obj(
        classes
            .iter()
            .map(|(class, (calls, errors))| {
                (
                    class.to_string(),
                    Value::Obj(vec![
                        ("calls".into(), Value::Num(*calls as f64)),
                        ("errors".into(), Value::Num(*errors as f64)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Per-syscall-class latency breakdown from the fleet's merged span
/// histograms: one entry per class whose body pathway recorded spans.
/// Timings are additive documentation — they never enter the
/// determinism fingerprint.
fn class_latency_json(timing: &TimingSnapshot) -> Value {
    let mut members = Vec::new();
    for class in SyscallClass::ALL {
        let h = timing.hist(Pathway::for_class(class));
        if h.is_empty() {
            continue;
        }
        members.push((
            class.name().to_string(),
            Value::Obj(vec![
                ("count".into(), Value::Num(h.count as f64)),
                ("p50_ns".into(), Value::Num(h.p50() as f64)),
                ("p95_ns".into(), Value::Num(h.p95() as f64)),
                ("p99_ns".into(), Value::Num(h.p99() as f64)),
                ("max_ns".into(), Value::Num(h.max as f64)),
            ]),
        ));
    }
    Value::Obj(members)
}

fn aggregate_json(agg: &FleetAggregate) -> Value {
    Value::Obj(vec![
        ("ops".into(), Value::Num(agg.ops as f64)),
        ("failures".into(), Value::Num(agg.failures as f64)),
        ("ops_per_sec".into(), Value::Num(agg.ops_per_sec)),
        ("dcache_hit_rate".into(), Value::Num(agg.dcache_hit_rate())),
        ("syscall_classes".into(), classes_json(&agg.loop_classes)),
        ("class_latency".into(), class_latency_json(&agg.timing)),
        ("used_schedstat".into(), Value::Bool(agg.used_schedstat)),
    ])
}

/// Renders the results as the committed `BENCH_macro.json` document.
pub fn macro_json(results: &MacroResults) -> String {
    let mut workloads = Vec::new();
    for (wl, points) in &results.curves {
        let pts = points
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("workers".into(), Value::Num(p.workers as f64)),
                    (
                        "legacy_ops_per_sec".into(),
                        Value::Num(p.legacy.ops_per_sec),
                    ),
                    (
                        "protego_ops_per_sec".into(),
                        Value::Num(p.protego.ops_per_sec),
                    ),
                    ("overhead_pct".into(), Value::Num(p.overhead_pct())),
                    ("legacy".into(), aggregate_json(&p.legacy)),
                    ("protego".into(), aggregate_json(&p.protego)),
                ])
            })
            .collect();
        workloads.push(Value::Obj(vec![
            ("name".into(), Value::Str(wl.name().into())),
            ("points".into(), Value::Arr(pts)),
            (
                "protego_scaling_1_to_max".into(),
                Value::Num(results.scaling(*wl)),
            ),
        ]));
    }
    let soak = Value::Obj(vec![
        ("workers".into(), Value::Num(results.soak.workers as f64)),
        ("fault_rate_pct".into(), Value::Num(1.0)),
        ("injected".into(), Value::Num(results.soak.injected as f64)),
        ("ops".into(), Value::Num(results.soak.ops as f64)),
        ("failures".into(), Value::Num(results.soak.failures as f64)),
        (
            "panicked_workers".into(),
            Value::Num(results.soak.panicked as f64),
        ),
        (
            "privileged_artifacts".into(),
            Value::Num(results.soak.artifacts.len() as f64),
        ),
        ("completed".into(), Value::Bool(true)),
    ]);
    let schema = if results.shared_curves.is_empty() {
        crate::json::MACRO_SCHEMA
    } else {
        crate::json::MACRO_SCHEMA_V2
    };
    let mut doc = vec![
        ("schema".into(), Value::Str(schema.into())),
        ("smoke".into(), Value::Bool(results.options.smoke)),
        (
            "iters_per_worker".into(),
            Value::Num(results.options.iters() as f64),
        ),
        ("workloads".into(), Value::Arr(workloads)),
    ];
    if !results.shared_curves.is_empty() {
        doc.push(("shared".into(), shared_json(results)));
    }
    doc.push(("soak".into(), soak));
    Value::Obj(doc).render()
}

fn rates_json(rates: &[f64]) -> Value {
    Value::Arr(rates.iter().map(|&r| Value::Num(r)).collect())
}

/// The `shared` section of a `bench_macro/v2` document: per-workload
/// contention curves over one kernel, with the per-run throughputs the
/// medians were taken from.
fn shared_json(results: &MacroResults) -> Value {
    let mut workloads = Vec::new();
    for (wl, points) in &results.shared_curves {
        let pts = points
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("workers".into(), Value::Num(p.workers as f64)),
                    ("runs_per_mode".into(), Value::Num(p.runs as f64)),
                    (
                        "legacy_ops_per_sec".into(),
                        Value::Num(p.legacy.ops_per_sec),
                    ),
                    (
                        "protego_ops_per_sec".into(),
                        Value::Num(p.protego.ops_per_sec),
                    ),
                    ("overhead_pct".into(), Value::Num(p.overhead_pct())),
                    ("legacy_run_rates".into(), rates_json(&p.legacy_rates)),
                    ("protego_run_rates".into(), rates_json(&p.protego_rates)),
                    ("legacy".into(), aggregate_json(&p.legacy)),
                    ("protego".into(), aggregate_json(&p.protego)),
                ])
            })
            .collect();
        workloads.push(Value::Obj(vec![
            ("name".into(), Value::Str(wl.name().into())),
            ("points".into(), Value::Arr(pts)),
            (
                "protego_scaling_1_to_8".into(),
                Value::Num(results.shared_scaling_1_to_8(*wl)),
            ),
        ]));
    }
    Value::Obj(vec![("workloads".into(), Value::Arr(workloads))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(mode: SystemMode, workload: MacroWorkload, workers: usize) -> FleetSpec {
        FleetSpec {
            workload,
            mode,
            workers,
            iters: 8,
            warmup: 1,
            fault: None,
        }
    }

    #[test]
    fn fleet_runs_both_workloads_both_modes() {
        for workload in [MacroWorkload::Web, MacroWorkload::Mail] {
            for mode in [SystemMode::Legacy, SystemMode::Protego] {
                let agg = run_fleet(tiny_spec(mode, workload, 2));
                assert_eq!(agg.panicked, 0);
                assert_eq!(agg.ops, 16);
                assert_eq!(agg.failures, 0, "{:?}/{:?}", workload, mode);
                assert!(agg.ops_per_sec > 0.0);
                assert!(agg.artifacts.is_empty());
                // The loop dispatched fs and net syscalls on every op.
                assert!(agg.loop_classes.get("fs").map_or(0, |c| c.0) > 0);
                assert!(agg.loop_classes.get("net").map_or(0, |c| c.0) > 0);
                // ... and each dispatch was timed (span registry merged
                // from every worker thread).
                assert!(agg.timing.hist(Pathway::Dispatch).count > 0);
                assert!(agg.timing.hist(Pathway::SysNet).count > 0);
            }
        }
    }

    #[test]
    fn fleet_counts_are_deterministic_per_seed() {
        let spec = FleetSpec {
            workload: MacroWorkload::Mail,
            mode: SystemMode::Protego,
            workers: 2,
            iters: 10,
            warmup: 1,
            fault: Some(FaultSpec {
                seed: 0xFEED,
                rate: 50,
            }),
        };
        let a = run_fleet(spec);
        let b = run_fleet(spec);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.injected > 0, "a 2% storm over the loop must fire");
        assert_eq!(a.panicked, 0);
        assert!(a.artifacts.is_empty());
    }

    #[test]
    fn shared_fleet_runs_both_workloads_both_modes() {
        for workload in [MacroWorkload::Web, MacroWorkload::Mail] {
            for mode in [SystemMode::Legacy, SystemMode::Protego] {
                let agg = run_shared_fleet(tiny_spec(mode, workload, 4));
                assert_eq!(agg.panicked, 0, "{:?}/{:?}", workload, mode);
                assert_eq!(agg.ops, 32);
                assert_eq!(agg.failures, 0, "{:?}/{:?}", workload, mode);
                assert!(agg.ops_per_sec > 0.0);
                assert!(agg.artifacts.is_empty());
                // The fleet-wide measured-loop delta saw every worker's
                // fs and net traffic.
                assert!(agg.loop_classes.get("fs").map_or(0, |c| c.0) > 0);
                assert!(agg.loop_classes.get("net").map_or(0, |c| c.0) > 0);
                // Per-worker thread-local span histograms merged.
                assert!(agg.timing.hist(Pathway::Dispatch).count > 0);
            }
        }
    }

    #[test]
    fn shared_fleet_counts_are_deterministic() {
        let spec = tiny_spec(SystemMode::Protego, MacroWorkload::Mail, 3);
        let a = run_shared_fleet(spec);
        let b = run_shared_fleet(spec);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "fault-free shared-fleet counts must not depend on interleaving"
        );
    }

    #[test]
    fn shared_fleet_storm_is_tolerated() {
        let agg = run_shared_fleet(FleetSpec {
            workload: MacroWorkload::Web,
            mode: SystemMode::Protego,
            workers: 3,
            iters: 20,
            warmup: 1,
            fault: Some(FaultSpec { seed: 11, rate: 25 }),
        });
        assert_eq!(agg.panicked, 0);
        assert_eq!(agg.ops, 60);
        assert!(
            agg.injected > 0,
            "a 4% storm over 60 concurrent ops must fire"
        );
        assert!(agg.artifacts.is_empty());
    }

    #[test]
    fn soak_storm_tolerated_by_workload_loop() {
        let agg = run_fleet(FleetSpec {
            workload: MacroWorkload::Web,
            mode: SystemMode::Protego,
            workers: 2,
            iters: 20,
            warmup: 1,
            fault: Some(FaultSpec { seed: 7, rate: 25 }),
        });
        assert_eq!(agg.panicked, 0);
        assert_eq!(agg.ops, 40);
        assert!(agg.artifacts.is_empty());
    }
}
