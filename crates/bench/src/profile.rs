//! The `tables profile` overhead-attribution pipeline.
//!
//! Runs the functional battery plus the §6 web and mail workloads under
//! both images (legacy and Protego) with kernel span timing enabled, and
//! attributes the dispatched wall time to named kernel pathways: syscall
//! bodies by class, the interceptor chain, VFS resolution and dcache
//! probes, every `SecurityModule` hook, policy decision caches, and
//! audit emission.
//!
//! Self-time accounting makes the attribution complete by construction
//! (summed self time equals root-span wall time, see
//! [`mod@sim_kernel::trace::span`]), so the pipeline's acceptance gate —
//! ≥95% of dispatched time attributed to named pathways on both modes —
//! checks that the instrumentation actually covers the kernel, not that
//! the arithmetic happens to work out.

use crate::json::Value;
use sim_kernel::trace::span;
use sim_kernel::trace::{Pathway, TimingSnapshot};
use userland::suite::run_functional_suite;
use userland::workload;
use userland::{boot, SystemMode};

/// Attribution floor enforced on every profiled mode: at least this
/// percentage of root-span wall time must land in named pathways.
pub const MIN_ATTRIBUTED_PCT: f64 = 95.0;

/// One profiled mode: its name plus the merged timing snapshot.
#[derive(Clone, Debug)]
pub struct ModeProfile {
    /// `"legacy"` or `"protego"`.
    pub mode: &'static str,
    /// Timing state captured over the profiled workloads.
    pub timing: TimingSnapshot,
    /// Operations the profile drove (battery steps + web + mail ops).
    pub ops: u64,
}

/// The whole profile: both modes, same workload mix.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Whether this was a `--smoke` run (reduced op counts).
    pub smoke: bool,
    /// Per-mode profiles, legacy first.
    pub runs: Vec<ModeProfile>,
}

/// One row of the attribution table.
#[derive(Clone, Copy, Debug)]
pub struct AttributionRow {
    /// The pathway.
    pub pathway: Pathway,
    /// Spans observed (protego run).
    pub count: u64,
    /// Inclusive time, ns (protego run).
    pub total_ns: u64,
    /// Self time, ns (protego run).
    pub self_ns: u64,
    /// Self time as a percentage of the protego root wall time.
    pub pct: f64,
    /// Self time, ns, on the legacy run (0 when the pathway never ran).
    pub legacy_self_ns: u64,
}

fn profile_mode(mode: SystemMode, web_ops: u64, mail_ops: u64) -> ModeProfile {
    let mut sys = boot(mode);
    let web = workload::start_web_service(&mut sys).expect("profile: web service start");
    let mta = workload::start_mail_service(&mut sys).expect("profile: mail service start");
    let client = workload::client_session(&mut sys).expect("profile: client login");

    // Timing brackets exactly the profiled work: boot, service start and
    // logins stay out of the histograms.
    span::reset();
    span::set_enabled(true);
    let battery = run_functional_suite(&mut sys).len() as u64;
    for _ in 0..web_ops {
        let _ = workload::web_request(&mut sys, client, web);
    }
    for i in 0..mail_ops {
        if i > 0 && i % 256 == 0 {
            workload::drain_spools(&mut sys, mta);
        }
        let rcpt = if i % 2 == 0 { "alice" } else { "bob" };
        let _ = workload::mail_delivery(&mut sys, client, mta, rcpt, "profile body");
    }
    span::set_enabled(false);
    let timing = span::snapshot();
    span::reset();

    ModeProfile {
        mode: match mode {
            SystemMode::Legacy => "legacy",
            SystemMode::Protego => "protego",
        },
        timing,
        ops: battery + web_ops + mail_ops,
    }
}

/// Runs the full pipeline: both modes over the identical workload mix.
pub fn run_profile(smoke: bool) -> ProfileReport {
    let (web_ops, mail_ops) = if smoke { (40, 40) } else { (400, 400) };
    ProfileReport {
        smoke,
        runs: vec![
            profile_mode(SystemMode::Legacy, web_ops, mail_ops),
            profile_mode(SystemMode::Protego, web_ops, mail_ops),
        ],
    }
}

impl ProfileReport {
    fn run(&self, mode: &str) -> Option<&ModeProfile> {
        self.runs.iter().find(|r| r.mode == mode)
    }

    /// The attribution table: every pathway touched by either mode,
    /// sorted by protego self time, descending.
    pub fn attribution(&self) -> Vec<AttributionRow> {
        let empty = TimingSnapshot::new();
        let legacy = self.run("legacy").map(|r| &r.timing).unwrap_or(&empty);
        let protego = self.run("protego").map(|r| &r.timing).unwrap_or(&empty);
        let mut rows: Vec<AttributionRow> = Pathway::ALL
            .iter()
            .filter(|&&p| !protego.hist(p).is_empty() || !legacy.hist(p).is_empty())
            .map(|&p| AttributionRow {
                pathway: p,
                count: protego.hist(p).count,
                total_ns: protego.hist(p).total,
                self_ns: protego.self_ns(p),
                pct: if protego.root_ns == 0 {
                    0.0
                } else {
                    protego.self_ns(p) as f64 * 100.0 / protego.root_ns as f64
                },
                legacy_self_ns: legacy.self_ns(p),
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.self_ns));
        rows
    }

    /// The driver-side acceptance gate: both modes present, non-empty,
    /// and ≥[`MIN_ATTRIBUTED_PCT`] of root wall time attributed.
    pub fn check(&self) -> Result<(), String> {
        for mode in ["legacy", "protego"] {
            let run = self
                .run(mode)
                .ok_or_else(|| format!("missing {} run", mode))?;
            if run.timing.root_spans == 0 {
                return Err(format!("{}: no root spans recorded", mode));
            }
            let pct = run.timing.attributed_pct();
            if pct < MIN_ATTRIBUTED_PCT {
                return Err(format!(
                    "{}: only {:.2}% of dispatched time attributed (need >= {:.0}%)",
                    mode, pct, MIN_ATTRIBUTED_PCT
                ));
            }
        }
        Ok(())
    }

    /// Renders the human attribution table: top-`top_n` pathways by
    /// protego self time, with the legacy-vs-protego per-span delta.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<20} {:>9} {:>12} {:>12} {:>7} {:>9} {:>9} {:>10}\n",
            "pathway", "count", "total_ns", "self_ns", "%total", "p50_ns", "p99_ns", "vs_legacy"
        ));
        let empty = TimingSnapshot::new();
        let legacy = self.run("legacy").map(|r| &r.timing).unwrap_or(&empty);
        let protego = self.run("protego").map(|r| &r.timing).unwrap_or(&empty);
        for row in self.attribution().iter().take(top_n) {
            let h = protego.hist(row.pathway);
            // Compare per-span self cost so the delta is meaningful even
            // when the two runs execute different span counts.
            let per = |self_ns: u64, count: u64| {
                if count == 0 {
                    0.0
                } else {
                    self_ns as f64 / count as f64
                }
            };
            let p = per(row.self_ns, h.count);
            let l = per(row.legacy_self_ns, legacy.hist(row.pathway).count);
            let delta = if l == 0.0 && p == 0.0 {
                "     -".to_string()
            } else if l == 0.0 {
                "   new".to_string()
            } else {
                format!("{:+9.1}%", (p - l) * 100.0 / l)
            };
            out.push_str(&format!(
                "  {:<20} {:>9} {:>12} {:>12} {:>6.2}% {:>9} {:>9} {:>10}\n",
                row.pathway.name(),
                row.count,
                row.total_ns,
                row.self_ns,
                row.pct,
                h.p50(),
                h.p99(),
                delta,
            ));
        }
        for run in &self.runs {
            out.push_str(&format!(
                "  {:<8} {} root spans, {} ns dispatched, {:.2}% attributed\n",
                run.mode,
                run.timing.root_spans,
                run.timing.root_ns,
                run.timing.attributed_pct()
            ));
        }
        out
    }

    /// Renders the machine-readable `bench_profile/v1` document.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                let pathways = Pathway::ALL
                    .iter()
                    .filter(|&&p| !run.timing.hist(p).is_empty())
                    .map(|&p| {
                        let h = run.timing.hist(p);
                        Value::Obj(vec![
                            ("name".into(), Value::Str(p.name().into())),
                            ("count".into(), Value::Num(h.count as f64)),
                            ("total_ns".into(), Value::Num(h.total as f64)),
                            ("self_ns".into(), Value::Num(run.timing.self_ns(p) as f64)),
                            (
                                "pct".into(),
                                Value::Num(if run.timing.root_ns == 0 {
                                    0.0
                                } else {
                                    run.timing.self_ns(p) as f64 * 100.0 / run.timing.root_ns as f64
                                }),
                            ),
                            ("min_ns".into(), Value::Num(h.observed_min() as f64)),
                            ("p50_ns".into(), Value::Num(h.p50() as f64)),
                            ("p95_ns".into(), Value::Num(h.p95() as f64)),
                            ("p99_ns".into(), Value::Num(h.p99() as f64)),
                            ("max_ns".into(), Value::Num(h.max as f64)),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("mode".into(), Value::Str(run.mode.into())),
                    ("ops".into(), Value::Num(run.ops as f64)),
                    (
                        "root_spans".into(),
                        Value::Num(run.timing.root_spans as f64),
                    ),
                    (
                        "root_total_ns".into(),
                        Value::Num(run.timing.root_ns as f64),
                    ),
                    (
                        "attributed_self_ns".into(),
                        Value::Num(run.timing.attributed_ns() as f64),
                    ),
                    (
                        "attributed_pct".into(),
                        Value::Num(run.timing.attributed_pct()),
                    ),
                    ("pathways".into(), Value::Arr(pathways)),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "schema".into(),
                Value::Str(crate::json::PROFILE_SCHEMA.into()),
            ),
            ("smoke".into(), Value::Bool(self.smoke)),
            ("runs".into(), Value::Arr(runs)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn smoke_profile_attributes_dispatched_time_on_both_modes() {
        let report = run_profile(true);
        report.check().expect("attribution gate");
        for run in &report.runs {
            // The workload mix exercises fs + net bodies, VFS resolution
            // and audit emission on both images.
            assert!(run.timing.hist(Pathway::Dispatch).count > 0, "{}", run.mode);
            assert!(run.timing.hist(Pathway::SysFs).count > 0, "{}", run.mode);
            assert!(run.timing.hist(Pathway::SysNet).count > 0, "{}", run.mode);
            assert!(
                run.timing.hist(Pathway::VfsResolve).count > 0,
                "{}",
                run.mode
            );
        }
        // Protego runs its LSM hooks; the table must attribute them.
        let protego = report.run("protego").unwrap();
        assert!(protego.timing.hist(Pathway::LsmFileOpen).count > 0);

        let rows = report.attribution();
        assert!(!rows.is_empty());
        // Sorted by self time descending.
        assert!(rows.windows(2).all(|w| w[0].self_ns >= w[1].self_ns));

        let text = report.render(10);
        assert!(text.contains("pathway"));
        assert!(text.contains("% attributed"));

        let doc = report.to_json();
        json::validate_profile(&doc).expect("self-emitted profile validates");
    }
}
