//! The Table 5 generator: measures every micro and macro row on both
//! systems and renders the paper-style table with % overhead.

use crate::micro::all_micro_ops;
use crate::workloads;
use crate::{both, overhead_pct, quick_time_ns};

/// One measured Table 5 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row name.
    pub name: String,
    /// Measured mean on the legacy system (ns/op).
    pub linux_ns: f64,
    /// Measured mean on Protego (ns/op).
    pub protego_ns: f64,
    /// Measured overhead percent.
    pub overhead_pct: f64,
    /// The paper's overhead percent for the same row, when comparable.
    pub paper_overhead_pct: Option<f64>,
}

/// Measures all micro rows with the given iteration budget.
pub fn measure_micro(warmup: u32, iters: u32) -> Vec<Row> {
    let (mut legacy, mut protego) = both();
    let mut rows = Vec::new();
    for op in all_micro_ops() {
        // Interleave the two systems and keep the best of two rounds per
        // system, suppressing cold-cache/allocator artifacts.
        let pl = (op.prepare)(&mut legacy);
        let pp = (op.prepare)(&mut protego);
        let l1 = quick_time_ns(warmup, iters, || (op.run)(&mut legacy, &pl));
        let p1 = quick_time_ns(warmup, iters, || (op.run)(&mut protego, &pp));
        let l2 = quick_time_ns(warmup, iters, || (op.run)(&mut legacy, &pl));
        let p2 = quick_time_ns(warmup, iters, || (op.run)(&mut protego, &pp));
        let linux_ns = l1.min(l2);
        let protego_ns = p1.min(p2);
        let paper = match (op.paper_linux_us, op.paper_protego_us) {
            (Some(a), Some(b)) => Some(overhead_pct(a, b)),
            _ => None,
        };
        rows.push(Row {
            name: op.name.to_string(),
            linux_ns,
            protego_ns,
            overhead_pct: overhead_pct(linux_ns, protego_ns),
            paper_overhead_pct: paper,
        });
    }
    rows
}

/// Measures the macro rows (Postal, kernel compile, ApacheBench sweeps).
pub fn measure_macro(postal_msgs: u64, compile_units: u64, ab_requests: u64) -> Vec<Row> {
    let mut rows = Vec::new();

    // Postal.
    {
        let (mut l, mut p) = both();
        let (ml, fdl) = workloads::start_mta(&mut l);
        let (mp, fdp) = workloads::start_mta(&mut p);
        // Warmup batch, then best-of-two measured rounds per system.
        let _ = workloads::postal(&mut l, ml, fdl, postal_msgs / 4);
        let _ = workloads::postal(&mut p, mp, fdp, postal_msgs / 4);
        let tl1 = workloads::postal(&mut l, ml, fdl, postal_msgs);
        let tp1 = workloads::postal(&mut p, mp, fdp, postal_msgs);
        let tl2 = workloads::postal(&mut l, ml, fdl, postal_msgs);
        let tp2 = workloads::postal(&mut p, mp, fdp, postal_msgs);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        rows.push(Row {
            name: "Postal (msg)".into(),
            linux_ns: tl.ns_per_op(),
            protego_ns: tp.ns_per_op(),
            overhead_pct: overhead_pct(tl.ns_per_op(), tp.ns_per_op()),
            paper_overhead_pct: Some(-0.04), // 258.64 -> 258.75 msgs/min
        });
    }

    // Kernel compile.
    {
        let (mut l, mut p) = both();
        let _ = workloads::compile(&mut l, compile_units / 4);
        let _ = workloads::compile(&mut p, compile_units / 4);
        let tl1 = workloads::compile(&mut l, compile_units);
        let tp1 = workloads::compile(&mut p, compile_units);
        let tl2 = workloads::compile(&mut l, compile_units);
        let tp2 = workloads::compile(&mut p, compile_units);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        rows.push(Row {
            name: "Kernel compile (unit)".into(),
            linux_ns: tl.ns_per_op(),
            protego_ns: tp.ns_per_op(),
            overhead_pct: overhead_pct(tl.ns_per_op(), tp.ns_per_op()),
            paper_overhead_pct: Some(1.44),
        });
    }

    // ApacheBench at the paper's four concurrency levels.
    for (conc, paper) in [(25u64, 3.57), (50, 3.85), (100, 4.00), (200, 2.65)] {
        let (mut l, mut p) = both();
        let (wl, fdl) = workloads::start_httpd(&mut l);
        let (wp, fdp) = workloads::start_httpd(&mut p);
        // Warmup batch, then best-of-two measured rounds per system.
        let _ = workloads::apache_bench(&mut l, wl, fdl, ab_requests / 4, conc);
        let _ = workloads::apache_bench(&mut p, wp, fdp, ab_requests / 4, conc);
        let tl1 = workloads::apache_bench(&mut l, wl, fdl, ab_requests, conc);
        let tp1 = workloads::apache_bench(&mut p, wp, fdp, ab_requests, conc);
        let tl2 = workloads::apache_bench(&mut l, wl, fdl, ab_requests, conc);
        let tp2 = workloads::apache_bench(&mut p, wp, fdp, ab_requests, conc);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        rows.push(Row {
            name: format!("ApacheBench c={}", conc),
            linux_ns: tl.ns_per_op(),
            protego_ns: tp.ns_per_op(),
            overhead_pct: overhead_pct(tl.ns_per_op(), tp.ns_per_op()),
            paper_overhead_pct: Some(paper),
        });
    }
    rows
}

/// Renders rows in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>10}\n",
        "Test", "Linux(ns)", "Protego(ns)", "%OH", "paper %OH"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<24} {:>12.0} {:>12.0} {:>8.2} {:>10}\n",
            r.name,
            r.linux_ns,
            r.protego_ns,
            r.overhead_pct,
            r.paper_overhead_pct
                .map(|p| format!("{:.2}", p))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    s
}

/// The worst-case measured overhead across rows (Table 1's headline).
pub fn max_overhead(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.overhead_pct).fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_micro_measurement_completes() {
        let rows = measure_micro(2, 5);
        assert!(rows.len() >= 20);
        for r in &rows {
            assert!(r.linux_ns > 0.0, "{}", r.name);
            assert!(r.protego_ns > 0.0, "{}", r.name);
        }
        let text = render(&rows);
        assert!(text.contains("mount/umnt"));
    }

    #[test]
    fn quick_macro_measurement_completes() {
        let rows = measure_macro(5, 3, 10);
        assert_eq!(rows.len(), 6);
        assert!(render(&rows).contains("ApacheBench c=200"));
    }
}
